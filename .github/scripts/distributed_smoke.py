"""CI distributed-smoke: real `repro shard-worker` daemons over TCP.

Three legs, all against genuine subprocesses on localhost:

1. serial reference: `repro detect` with a checkpoint;
2. distributed run: two `repro shard-worker` daemons (auto-allocated
   ports parsed from their "listening on HOST:PORT" announcement), the
   same detect scattered to them — stdout event lines and the golden
   checkpoint fingerprint must equal the serial run's exactly;
3. fault injection: a fresh worker pair, kill -9 one of them mid-stream —
   the detect process must fail fast with a readable shard-worker error
   (no hang), and the surviving daemon must still shut down cleanly.

Exits non-zero on any failed assertion.
"""
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = str(REPO / "src")
sys.path.insert(0, SRC)
sys.path.insert(0, str(REPO / "tests"))

import golden  # noqa: E402  (tests/golden.py — the CI parity idiom)

TRACE = "dist-trace.jsonl"
DETECT = [sys.executable, "-u", "-m", "repro", "detect", TRACE,
          "--quantum-size", "80"]
ENV = dict(os.environ, PYTHONPATH=SRC)


def start_worker():
    """One real shard-worker daemon; returns (proc, 'host:port')."""
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "shard-worker"],
        stdout=subprocess.PIPE, env=ENV, text=True,
    )
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        assert line, "shard worker exited before announcing its port"
        if "listening on" in line:
            endpoint = line.rsplit(" ", 1)[-1].strip()
            host, _, port = endpoint.rpartition(":")
            assert host and port.isdigit(), f"bad announcement: {line!r}"
            return proc, endpoint
    raise AssertionError("shard worker never announced its port")


def stop_worker(proc):
    """SIGINT must shut a daemon down cleanly (exit 0)."""
    proc.send_signal(signal.SIGINT)
    assert proc.wait(timeout=30) == 0, "worker did not exit cleanly on SIGINT"
    proc.stdout.close()


def event_lines(stdout):
    return [line for line in stdout.splitlines() if "NEW" in line]


# Leg 1: serial reference.
serial = subprocess.run(
    DETECT + ["--checkpoint", "serial.ckpt"],
    env=ENV, capture_output=True, text=True, timeout=600,
)
assert serial.returncode == 0, serial.stderr
serial_events = event_lines(serial.stdout)
assert serial_events, "serial detect reported no events; trace too quiet"
serial_fp = golden.fingerprint(
    golden.normalized_checkpoint_state("serial.ckpt")
)
print(f"-- leg 1 OK: serial run, {len(serial_events)} event lines, "
      f"fingerprint {serial_fp}")

# Leg 2: the same stream scattered to two real TCP shard workers.
worker_a, endpoint_a = start_worker()
worker_b, endpoint_b = start_worker()
try:
    distributed = subprocess.run(
        DETECT + ["--checkpoint", "dist.ckpt",
                  "--workers", f"{endpoint_a},{endpoint_b}",
                  "--shard-count", "4"],
        env=ENV, capture_output=True, text=True, timeout=600,
    )
    assert distributed.returncode == 0, distributed.stderr
    assert event_lines(distributed.stdout) == serial_events, (
        "distributed event lines diverged from serial"
    )
    dist_fp = golden.fingerprint(
        golden.normalized_checkpoint_state("dist.ckpt")
    )
    assert dist_fp == serial_fp, (serial_fp, dist_fp)
finally:
    stop_worker(worker_a)
    stop_worker(worker_b)
print(f"-- leg 2 OK: distributed run over {endpoint_a},{endpoint_b} "
      f"bit-identical to serial")

# Leg 3: kill -9 one worker mid-stream; detect must fail readably and the
# surviving worker must still tear down cleanly.
worker_a, endpoint_a = start_worker()
worker_b, endpoint_b = start_worker()
victim = None
try:
    detect = subprocess.Popen(
        DETECT + ["--workers", f"{endpoint_a},{endpoint_b}",
                  "--shard-count", "4"],
        env=ENV, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    # The first event line proves the pipeline is mid-stream.
    while True:
        line = detect.stdout.readline()
        assert line, "detect exited before its first event"
        if "NEW" in line:
            break
    victim = worker_b
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    victim.stdout.close()
    stdout, stderr = detect.communicate(timeout=120)
    assert detect.returncode != 0, "detect succeeded despite a dead worker"
    assert "shard worker" in stderr, f"unreadable failure: {stderr!r}"
finally:
    if detect.poll() is None:
        detect.kill()
        detect.wait(timeout=30)
    stop_worker(worker_a)  # the survivor still stops cleanly
    if victim is None:
        stop_worker(worker_b)
print("-- leg 3 OK: kill -9 mid-stream -> readable failure "
      "(exit {}, '{}...'), clean teardown".format(
          detect.returncode, stderr.strip().splitlines()[-1][:80]))
