"""CI serve-smoke: drive a real `repro serve` process end to end.

Start the server as a subprocess, create a tenant, ingest a canned trace
through the stdlib client, assert subscriber events and /metrics sanity,
kill -9 the process, restart it, and resume the tenant from its delta
checkpoint.  Exits non-zero on any failed assertion.
"""
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")
sys.path.insert(0, SRC)

from repro.serve import ServeClient
from repro.stream.sources import read_jsonl_trace

PORT = 8931
CONFIG = {"quantum_size": 80, "high_state_threshold": 3}
ENV = dict(os.environ, PYTHONPATH=SRC)


def start_server():
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(PORT), "--state-dir", "serve-state"],
        env=ENV,
    )
    client = ServeClient(port=PORT)
    for _ in range(100):
        try:
            client.healthz()
            return proc, client
        except OSError:
            assert proc.poll() is None, "server process died during startup"
            time.sleep(0.1)
    raise AssertionError("server never became healthy")


messages = list(read_jsonl_trace("serve-trace.jsonl"))
half = len(messages) // 2
assert half % CONFIG["quantum_size"] == 0, "split must be a quantum boundary"

# Leg 1: create, subscribe, ingest the first half, then SIGKILL.
proc, client = start_server()
created = client.create_tenant("smoke", CONFIG)
assert created["tenant"] == "smoke" and not created["resumed"], created

ws = client.subscribe("smoke")
client.ingest("smoke", messages[:half], wait=True)

stats = client.stats("smoke")
assert stats["messages"] == half, stats["messages"]
assert stats["reports"] > 0, "canned trace produced no cluster reports"
quantum_before = stats["quantum"]
assert quantum_before == half // CONFIG["quantum_size"] - 1, quantum_before

events = []
ws.sock.settimeout(5.0)
try:
    while True:
        record = ws.recv_json()
        if record is None:
            break
        events.append(record)
except OSError:
    pass  # drained: no frame for 5s
assert events, "subscriber received no events"
assert all(e["quantum"] <= quantum_before for e in events), events[-1]
sent = client.stats("smoke")["fanout"]["subscribers"][0]
assert sent["sent"] == len(events) and sent["dropped"] == 0, sent

metrics = client.metrics()
assert metrics["tenants"]["smoke"]["messages"] == half, metrics
assert metrics["baselines"], "committed bench baselines missing from /metrics"

proc.send_signal(signal.SIGKILL)
proc.wait(timeout=30)
print(f"-- leg 1 OK: {half} msgs, {len(events)} events delivered, SIGKILLed")

# Leg 2: restart, resume from the delta log, finish the trace.
proc, client = start_server()
resumed = client.create_tenant("smoke", resume=True)
assert resumed["resumed"] and resumed["quantum"] == quantum_before, resumed

client.ingest("smoke", messages[half:], wait=True)
stats = client.stats("smoke")
assert stats["messages"] == len(messages), stats["messages"]
assert stats["quantum"] == len(messages) // CONFIG["quantum_size"] - 1, stats

proc.send_signal(signal.SIGINT)
assert proc.wait(timeout=60) == 0, "graceful shutdown exited non-zero"
assert os.path.exists("serve-state/smoke/final.ckpt"), \
    "graceful shutdown left no final checkpoint"
print(f"-- leg 2 OK: resumed at quantum {quantum_before}, "
      f"finished {len(messages)} msgs, graceful stop checkpointed")
