"""Serving-layer quickstart: two tenants, live fan-out, resume.

``repro.serve`` turns the library into a long-running service: one process
multiplexes many named detector sessions ("tenants") over a shared worker
pool, fans lifecycle events out to WebSocket subscribers, and checkpoints
every tenant on shutdown.  This example runs the whole loop in-process via
``ServerThread`` (the same object `python -m repro serve` wraps):

1. start a server, create two tenants with different configs,
2. subscribe to one tenant's ``EMERGING`` events over a real WebSocket,
3. ingest two interleaved feeds and watch the events arrive,
4. stop gracefully (every tenant checkpoints), restart, resume a tenant.

Run:  python examples/serve_quickstart.py
"""

import random
import tempfile
from pathlib import Path

from repro.serve import ServeClient, ServerThread
from repro.stream.messages import Message

NEWS_CONFIG = {"quantum_size": 80, "high_state_threshold": 3}
FIREHOSE_CONFIG = {"quantum_size": 160, "high_state_threshold": 3}
FEED_MESSAGES = 8_000


def synthetic_feed(seed: int, n: int = FEED_MESSAGES) -> list:
    """Bursty chatter over a compact topic vocabulary: every few hundred
    messages the crowd pivots to a different topic pair, so clusters keep
    emerging, growing and dying for the subscriber to see."""
    rng = random.Random(seed)
    topics = [
        ("quake", "epicenter", "aftershock"),
        ("fixture", "keeper", "stoppage"),
        ("ballot", "precinct", "turnout"),
        ("outage", "grid", "restore"),
    ]
    feed = []
    for i in range(n):
        if i % 400 == 0:
            hot = rng.sample(topics, 2)
        topic = hot[i % 2]
        tokens = rng.sample(topic, rng.randint(2, 3))
        feed.append(Message(f"u{rng.randrange(50)}", tokens=tuple(tokens)))
    return feed


def event_line(record: dict) -> str:
    keywords = ", ".join(record["keywords"][:5])
    return (
        f"q{record['quantum']:<4} {record['kind'].upper():<12} "
        f"event #{record['event_id']} rank={record['rank']:7.1f}  [{keywords}]"
    )


def main() -> None:
    print("generating workloads ...")
    news = synthetic_feed(seed=3)
    firehose = synthetic_feed(seed=8)

    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "serve-state"

        # --- a server, two tenants, one subscriber ------------------------
        server = ServerThread(state_dir=state_dir, workers=2)
        port = server.start()
        client = ServeClient(port=port)
        print(f"server up on 127.0.0.1:{port}")

        client.create_tenant("newsroom", NEWS_CONFIG)
        client.create_tenant("firehose", FIREHOSE_CONFIG)
        print(f"tenants: {', '.join(sorted(client.tenants()))}")

        with client.subscribe("newsroom", kinds="emerging") as ws:
            # Interleave the two feeds: tenants share the worker pool but
            # never share state — each keeps its own config and quantum clock.
            for lo in range(0, FEED_MESSAGES, 2_000):
                client.ingest("newsroom", news[lo:lo + 2_000])
                client.ingest("firehose", firehose[lo:lo + 2_000])
            client.ingest("newsroom", [], wait=True)
            client.ingest("firehose", [], wait=True)

            stats = {name: client.stats(name) for name in ("newsroom", "firehose")}
            for name, s in sorted(stats.items()):
                print(
                    f"  {name:<9} quantum {s['quantum']:>3}  "
                    f"{s['messages']} msgs  {s['reports']} reports  "
                    f"{s['throughput']:,.0f} msg/s in-detector"
                )

            expected = stats["newsroom"]["fanout"]["subscribers"][0]["sent"]
            events = [ws.recv_json() for _ in range(expected)]
        print("\nfirst EMERGING events pushed to the newsroom subscriber:")
        for record in events[:5]:
            print("  " + event_line(record))

        quantum_before = stats["newsroom"]["quantum"]
        server.stop(graceful=True)  # drains queues, checkpoints every tenant
        print(f"\nserver stopped; {state_dir.name}/newsroom holds the checkpoint")

        # --- a fresh process resumes the tenant ---------------------------
        server = ServerThread(state_dir=state_dir, workers=2)
        client = ServeClient(port=server.start())
        resumed = client.create_tenant("newsroom", resume=True)
        print(
            f"resumed 'newsroom' at quantum {resumed['quantum']} "
            f"(= {quantum_before} before the stop)"
        )
        assert resumed["quantum"] == quantum_before, "resume diverged!"
        server.stop(graceful=True)
        print("done: the service picked up exactly where it left off")


if __name__ == "__main__":
    main()
