"""Persist a synthetic trace to JSONL and replay it from disk.

Demonstrates the trace I/O path a downstream user needs to run the detector
over their own captured microblog data: write once, replay through streaming
sessions under several configurations without regenerating, and feed
raw-text messages (the tokeniser handles stop words, URLs, hashtags and
decimal magnitudes).  The reader is hardened for dirty feeds — malformed
lines are skipped and counted rather than killing the replay — which this
example shows by corrupting the trace in place.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import DetectorConfig, Message, open_session
from repro.datasets.traces import build_es_trace
from repro.stream.sources import (
    TraceReadStats,
    read_jsonl_trace,
    write_jsonl_trace,
)
from repro.text.pos import NounTagger


def main() -> None:
    trace = build_es_trace(total_messages=8_000, n_events=10, seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "es_trace.jsonl"
        count = write_jsonl_trace(path, trace.messages)
        size_kb = path.stat().st_size / 1024
        print(f"wrote {count} messages to {path.name} ({size_kb:.0f} KiB)")

        for gamma in (0.15, 0.25):
            session = open_session(
                DetectorConfig(ec_threshold=gamma),
                noun_tagger=NounTagger(trace.lexicon),
            )
            events = 0
            for report in session.ingest_many(read_jsonl_trace(path), flush=True):
                events += len(report.new_event_ids)
            print(
                f"replay with gamma={gamma}: {events} event births, "
                f"{session.throughput():.0f} msg/s"
            )

        # corrupt a few lines the way a flaky collector would and replay
        lines = path.read_text().splitlines(keepends=True)
        lines[100] = "not json at all\n"
        lines[200] = lines[200][: len(lines[200]) // 2]  # truncated write
        path.write_text("".join(lines))
        stats = TraceReadStats()
        session = open_session(
            DetectorConfig(), noun_tagger=NounTagger(trace.lexicon)
        )
        for _ in session.ingest_many(
            read_jsonl_trace(path, stats=stats), flush=True
        ):
            pass
        print(
            f"dirty replay: {stats.messages} messages kept, "
            f"{stats.malformed} malformed lines skipped "
            f"(first: {stats.errors[0]})"
        )

    print("\nraw-text messages work too:")
    session = open_session(
        DetectorConfig(
            quantum_size=4,
            high_state_threshold=2,
            ec_threshold=0.1,
            use_minhash_filter=False,
        )
    )
    texts = [
        "BREAKING: Earthquake of 5.9 struck Eastern Turkey http://t.co/x",
        "Felt the earthquake here in eastern Turkey, very strong",
        "Earthquake near Turkey - eastern region, magnitude 5.9",
        "Turkey earthquake: 5.9, eastern provinces shaking",
    ]
    report = session.process_quantum(
        [Message(f"user{i}", text=t) for i, t in enumerate(texts)]
    )
    for event in report.reported:
        print(f"  discovered: {sorted(event.keywords)} (rank {event.rank:.1f})")


if __name__ == "__main__":
    main()
