"""Synonym / multi-language pre-processing and story post-correlation.

Section 1.1 of the paper discusses two clusters failing to merge because
users chose synonymous keywords or posted in different languages, and
proposes dictionary pre-processing plus post-hoc temporal correlation.  This
example exercises both extension hooks on the **session API**: the synonym
normaliser rides in as a custom tokenizer (a custom
``KeywordExtractor`` under the hood — the same seam a fully custom
``EntityExtractor`` would use), and the tracked event histories feed the
post-correlation pass.

1. a stream where users split across "earthquake" / "quake" / "terremoto" —
   without the normaliser the synonyms appear as three separate nodes, each
   with a third of the support (diluting the event's rank); with it, one
   canonical keyword carries the full support and the rank doubles;
2. two genuinely disjoint keyword clusters about one unfolding story,
   post-correlated into a single consumable group.

Run:  python examples/multilingual_synonyms.py
"""

from repro import DetectorConfig, Message, open_session
from repro.core.postprocess import CorrelationPolicy, correlate_events
from repro.text.synonyms import SynonymNormalizer
from repro.text.tokenize import tokenize


def demo_config():
    return DetectorConfig(
        quantum_size=12,
        window_quanta=5,
        high_state_threshold=2,
        ec_threshold=0.1,
        use_minhash_filter=False,
    )


def synonym_stream():
    messages = []
    for u in range(4):
        messages.append(Message(f"en{u}", text="earthquake struck turkey"))
    for u in range(4):
        messages.append(Message(f"us{u}", text="quake struck turkey"))
    for u in range(4):
        messages.append(Message(f"it{u}", text="terremoto struck turkey"))
    return messages


def main() -> None:
    print("=== 1. synonym pre-processing ===")
    with open_session(demo_config()) as plain:
        report = plain.process_quantum(synonym_stream())
        print("without normaliser (synonyms are separate, diluted nodes):")
        for event in report.reported:
            print(f"  {sorted(event.keywords)} rank={event.rank:.1f}")

    normalizer = SynonymNormalizer([["earthquake", "quake", "terremoto"]])
    with open_session(
        demo_config(), tokenizer=normalizer.wrap_tokenizer(tokenize)
    ) as merged:
        report = merged.process_quantum(synonym_stream())
        print("with normaliser (one canonical keyword, triple support):")
        for event in report.reported:
            print(f"  {sorted(event.keywords)} rank={event.rank:.1f} "
                  f"support={event.support:.0f}")

    print("\n=== 2. post-correlation of story facets ===")
    with open_session(demo_config()) as session:
        # facet A: the disaster itself; facet B: the relief response —
        # disjoint keyword sets, concurrent in time
        for _ in range(3):
            quantum = []
            for u in range(3):
                quantum.append(
                    Message(f"a{u}", text="earthquake struck turkey")
                )
            for u in range(3):
                quantum.append(
                    Message(f"b{u}", text="rescue teams mobilised ankara")
                )
            for u in range(6, 12):
                quantum.append(Message(f"n{u}", text=f"filler{u} chatter{u}"))
            session.process_quantum(quantum[:12])

        records = session.events()
        print(f"{len(records)} separate clusters tracked:")
        for record in records:
            print(f"  #{record.event_id}: {sorted(record.all_keywords)}")

        groups = correlate_events(
            records,
            CorrelationPolicy(min_interval_overlap=0.5, min_keyword_overlap=0),
        )
        print(f"\n{len(groups)} correlated stories after post-processing:")
        for group in groups:
            print(f"  events {group.event_ids}: {sorted(group.keywords)}")


if __name__ == "__main__":
    main()
