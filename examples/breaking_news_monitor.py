"""Breaking-news monitor: a live event dashboard over a synthetic stream.

Replays the ground-truth workload (headlined events, local events, spurious
bursts) through a streaming session with an ``EMERGING``-only callback sink
(the newsroom alert feed), prints every 25 quanta the current top-5 ranked
events — the consumption pattern the paper's ranking function is designed
for — and at the end compares detection times against the synthetic
headline feed, reproducing the Section 7.1 observation that many events are
detected well before the news headline appears.

Run:  python examples/breaking_news_monitor.py
"""

from repro import DetectorConfig, EventKind, open_session
from repro.datasets.headlines import PAPER_STREAM_RATE, headlines_for_trace
from repro.datasets.traces import build_ground_truth_trace
from repro.eval.matching import match_events
from repro.eval.filtering import reported_records
from repro.text.pos import NounTagger


def main() -> None:
    print("generating ground-truth workload ...")
    trace = build_ground_truth_trace(
        total_messages=30_000,
        n_headline_discoverable=12,
        n_headline_subthreshold=8,
        n_local_events=20,
        n_spurious=3,
        seed=3,
    )
    config = DetectorConfig()
    session = open_session(config, noun_tagger=NounTagger(trace.lexicon))

    alerts = []
    session.subscribe(alerts.append, kinds={EventKind.EMERGING}, top_k=5)

    print(f"streaming {trace.total_messages} messages ...\n")
    for report in session.ingest_many(trace.messages, flush=True):
        if report.quantum % 25 != 24:
            continue
        print(f"--- quantum {report.quantum} | AKG "
              f"{report.akg_stats.akg_nodes} nodes / "
              f"{report.akg_stats.akg_edges} edges ---")
        for event in report.top(5):
            print(
                f"  #{event.event_id:<4} rank={event.rank:7.1f} "
                f"{', '.join(sorted(event.keywords)[:6])}"
            )
    print(
        f"\nalert sink received {len(alerts)} EMERGING notifications "
        f"(top-5 filtered)"
    )

    print("\n=== detection vs headline feed ===")
    reported = reported_records(
        session.events(), config, NounTagger(trace.lexicon)
    )
    match = match_events(
        reported, trace.ground_truth, config.quantum_size, config.window_quanta
    )
    headlines = headlines_for_trace(trace)
    beat, total = 0, 0
    for headline in headlines:
        detected = match.first_detection_message(
            headline.event_id, config.quantum_size
        )
        lead = headline.lead_time_seconds(detected, PAPER_STREAM_RATE)
        if lead is None:
            status = "not detected (likely sub-threshold)"
        else:
            total += 1
            if lead > 0:
                beat += 1
                status = f"detected {lead / 60:.1f} min BEFORE the headline"
            else:
                status = f"detected {-lead / 60:.1f} min after the headline"
        print(f"  {headline.text[:40]:<42} {status}")
    if total:
        print(f"\ndetector beat the headline for {beat}/{total} detected events")

    local_found = sum(
        1 for t in match.matched_truth_ids() if t.startswith("gt-local")
    )
    print(f"local events discovered with no headline at all: {local_found}")


if __name__ == "__main__":
    main()
