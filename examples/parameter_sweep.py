"""Parameter sensitivity in miniature: quantum size and EC threshold.

A reduced-scale rendition of Figures 7–10: sweeps the quantum size and the
edge-correlation threshold over a fixed TW-style trace and prints the
resulting precision/recall grids, plus the Section 7.2.4 quality statistics
(average cluster size and rank).

Each sweep cell replays the trace through a fresh
:class:`~repro.api.session.DetectorSession`
(:func:`repro.eval.runner.run_detector` wraps ``open_session`` +
``ingest_many``) — the trace is generated once in message-index space and
re-quantised per cell, exactly how the paper sweeps quantum size over fixed
Twitter captures.

Run:  python examples/parameter_sweep.py
"""

from repro import DetectorConfig
from repro.datasets.traces import build_tw_trace
from repro.eval.reporting import render_grid, render_table
from repro.eval.runner import evaluate_run, run_detector

QUANTA = [80, 120, 160, 200, 240]
GAMMAS = [0.10, 0.15, 0.20, 0.25]


def main() -> None:
    print("generating TW trace ...")
    trace = build_tw_trace(total_messages=20_000, n_events=10, seed=7)

    recall_grid, precision_grid, quality_rows = [], [], []
    for gamma in GAMMAS:
        recall_row, precision_row = [], []
        for quantum in QUANTA:
            config = DetectorConfig(quantum_size=quantum, ec_threshold=gamma)
            summary = evaluate_run(run_detector(trace, config), trace)
            recall_row.append(summary.pr.recall)
            precision_row.append(summary.pr.precision)
            if quantum == 160:
                quality_rows.append(
                    [
                        gamma,
                        summary.quality.avg_cluster_size,
                        summary.quality.avg_rank,
                        summary.pr.n_reported,
                    ]
                )
        recall_grid.append(recall_row)
        precision_grid.append(precision_row)

    print()
    print(render_grid("gamma", GAMMAS, "quantum", QUANTA, recall_grid,
                      title="Recall (cf. Figure 7)"))
    print()
    print(render_grid("gamma", GAMMAS, "quantum", QUANTA, precision_grid,
                      title="Precision (cf. Figure 9)"))
    print()
    print(render_table(
        ["gamma", "avg cluster size", "avg rank", "events"],
        quality_rows,
        title="Event quality at quantum=160 (cf. Section 7.2.4)",
    ))
    print("\nExpected shapes: recall rises with the quantum size and falls "
          "with gamma; cluster size inflates at gamma=0.1.")


if __name__ == "__main__":
    main()
