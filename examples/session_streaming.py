"""Streaming session lifecycle: subscribe, checkpoint, resume, verify.

The scenario a production deployment cares about: a long-lived detector
session consumes a feed while pushing ``EMERGING`` / ``GROWING`` / ``DYING``
notifications to a queue sink, the process is stopped mid-stream (here:
``snapshot()`` to disk), a fresh process resumes from the checkpoint — and
the resumed session's reports and notifications are **bit-identical** to a
session that never stopped, which this example verifies at the end.

Run:  python examples/session_streaming.py
"""

from pathlib import Path
import tempfile

from repro import DetectorConfig, EventKind, QueueSink, open_session
from repro.datasets.traces import build_ground_truth_trace

CONFIG = DetectorConfig()
SPLIT = 9_777  # deliberately mid-quantum: the partial quantum is checkpointed


def notification_line(note) -> str:
    keywords = ", ".join(sorted(note.keywords)[:5])
    return (
        f"q{note.quantum:<4} {note.kind.value.upper():<12} "
        f"event #{note.event_id} rank={note.rank:7.1f}  [{keywords}]"
    )


def main() -> None:
    print("generating workload ...")
    trace = build_ground_truth_trace(total_messages=20_000, seed=3)
    messages = list(trace.messages)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "detector.ckpt"

        # --- phase 1: a session consumes the first part of the feed -------
        session = open_session(CONFIG)
        inbox = QueueSink()
        session.subscribe(
            inbox, kinds={EventKind.EMERGING, EventKind.GROWING, EventKind.DYING}
        )
        for _ in session.ingest_many(messages[:SPLIT]):
            pass
        first_notes = inbox.drain()
        print(
            f"phase 1: {SPLIT} messages, quantum {session.current_quantum}, "
            f"{len(first_notes)} notifications, "
            f"{session.batcher.pending} messages buffered mid-quantum"
        )
        session.snapshot(checkpoint)
        size_kb = checkpoint.stat().st_size / 1024
        print(f"checkpoint written: {checkpoint.name} ({size_kb:.0f} KiB)")

        # --- phase 2: a new session resumes and finishes the feed ---------
        resumed = open_session(resume=checkpoint)
        inbox2 = QueueSink()
        resumed.subscribe(
            inbox2, kinds={EventKind.EMERGING, EventKind.GROWING, EventKind.DYING}
        )
        for _ in resumed.ingest_many(messages[SPLIT:], flush=True):
            pass
        second_notes = inbox2.drain()
        print(
            f"phase 2: resumed at quantum {SPLIT // CONFIG.quantum_size}, "
            f"finished at quantum {resumed.current_quantum}, "
            f"{len(second_notes)} notifications"
        )
        print("\nlast notifications of the resumed stream:")
        for note in second_notes[-5:]:
            print("  " + notification_line(note))

        # --- verification: identical to a never-stopped session -----------
        whole = open_session(CONFIG)
        inbox_whole = QueueSink()
        whole.subscribe(
            inbox_whole,
            kinds={EventKind.EMERGING, EventKind.GROWING, EventKind.DYING},
        )
        for _ in whole.ingest_many(messages, flush=True):
            pass
        whole_notes = inbox_whole.drain()

        def key(note):
            return (note.kind, note.quantum, note.event_id, note.rank,
                    note.size, note.keywords)

        resumed_stream = [key(n) for n in first_notes + second_notes]
        uninterrupted = [key(n) for n in whole_notes]
        assert resumed_stream == uninterrupted, "resume diverged!"
        print(
            f"\nverified: {len(uninterrupted)} notifications identical "
            f"between the stop/resume run and the uninterrupted run"
        )
        print(
            f"events tracked: {len(resumed.events())} "
            f"(= {len(whole.events())} uninterrupted)"
        )


if __name__ == "__main__":
    main()
