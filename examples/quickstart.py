"""Quickstart: discover the Figure 1 earthquake event and watch it evolve.

Runs the paper's six-tweet example through the detector, prints the
discovered cluster, then replays the follow-up messages and shows the
magnitude keyword "5.9" joining the same event — the evolution behaviour
SCP clusters exist to support.

Run:  python examples/quickstart.py
"""

from repro import DetectorConfig, EventDetector
from repro.datasets.figure1 import figure1_messages


def main() -> None:
    config = DetectorConfig(
        quantum_size=6,           # one quantum per six-message batch
        window_quanta=5,
        high_state_threshold=2,   # tiny stream: two users make a burst
        ec_threshold=0.1,
        use_minhash_filter=False,  # exact EC for a deterministic demo
    )
    detector = EventDetector(config)

    initial, update = figure1_messages()

    print("=== quantum 0: the first six tweets ===")
    report = detector.process_quantum(initial)
    for event in report.reported:
        print(
            f"event #{event.event_id}: {sorted(event.keywords)}  "
            f"rank={event.rank:.1f} support={event.support:.0f}"
        )

    print("\n=== quantum 1: the window slides, new tweets mention 5.9 ===")
    report = detector.process_quantum(update)
    for event in report.reported:
        marker = " <- '5.9' joined" if "5.9" in event.keywords else ""
        print(
            f"event #{event.event_id}: {sorted(event.keywords)}  "
            f"rank={event.rank:.1f}{marker}"
        )

    print("\n=== event history ===")
    for record in detector.tracker.all_events():
        keyword_path = " -> ".join(
            "{" + ", ".join(sorted(s.keywords)) + "}" for s in record.snapshots
        )
        print(f"event #{record.event_id}: {keyword_path}")
        print(f"  evolved: {record.evolved()}  peak rank: {record.peak_rank:.1f}")


if __name__ == "__main__":
    main()
