"""Quickstart: discover the Figure 1 earthquake event and watch it evolve.

Opens a streaming session (the ``repro.api`` surface), subscribes a callback
sink to cluster lifecycle notifications, runs the paper's six-tweet example,
then replays the follow-up messages and shows the magnitude keyword "5.9"
joining the same event — the evolution behaviour SCP clusters exist to
support, delivered as a ``GROWING`` notification instead of a report scan.

Run:  python examples/quickstart.py
"""

from repro import DetectorConfig, EventKind, open_session
from repro.datasets.figure1 import figure1_messages


def main() -> None:
    config = DetectorConfig(
        quantum_size=6,           # one quantum per six-message batch
        window_quanta=5,
        high_state_threshold=2,   # tiny stream: two users make a burst
        ec_threshold=0.1,
        use_minhash_filter=False,  # exact EC for a deterministic demo
    )
    session = open_session(config)

    def on_lifecycle(note) -> None:
        label = {
            EventKind.EMERGING: "EMERGING",
            EventKind.GROWING: "GROWING ",
            EventKind.DYING: "DYING   ",
            EventKind.RANK_CHANGED: "RANKED  ",
        }[note.kind]
        print(
            f"  [{label}] event #{note.event_id}: {sorted(note.keywords)}  "
            f"rank={note.rank:.1f}"
        )

    session.subscribe(
        on_lifecycle, kinds={EventKind.EMERGING, EventKind.GROWING}
    )

    initial, update = figure1_messages()

    print("=== quantum 0: the first six tweets ===")
    report = session.process_quantum(initial)
    for event in report.reported:
        print(
            f"event #{event.event_id}: {sorted(event.keywords)}  "
            f"rank={event.rank:.1f} support={event.support:.0f}"
        )

    print("\n=== quantum 1: the window slides, new tweets mention 5.9 ===")
    report = session.process_quantum(update)
    for event in report.reported:
        marker = " <- '5.9' joined" if "5.9" in event.keywords else ""
        print(
            f"event #{event.event_id}: {sorted(event.keywords)}  "
            f"rank={event.rank:.1f}{marker}"
        )

    print("\n=== event history ===")
    for record in session.events():
        keyword_path = " -> ".join(
            "{" + ", ".join(sorted(s.keywords)) + "}" for s in record.snapshots
        )
        print(f"event #{record.event_id}: {keyword_path}")
        print(f"  evolved: {record.evolved()}  peak rank: {record.peak_rank:.1f}")


if __name__ == "__main__":
    main()
