"""A non-text workload end to end: dense clusters in a co-purchase stream.

The engine is entity-agnostic (DESIGN.md Section 8): this example runs the
*identical* detection pipeline the microblog examples use — windowed actor
id sets, burstiness, MinHash-filtered edge correlation, SCP cluster
maintenance, incremental ranking — over a stream of raw actor–entity
interaction records ("buyer X purchased {A, B, C}").  The
``edges`` extractor passes each record's entity list straight through; no
tokenisation, no stop words, and the noun filter stands down automatically
(product ids have no part of speech).

The script:

1. generates a co-purchase stream with planted "bundle" events — fresh
   product sets a cohort of buyers co-purchases over a bounded interval —
   on top of Zipf-popular catalog background traffic;
2. streams it through a session with a queue subscription, printing bundle
   clusters as they EMERGE and DIE;
3. snapshots mid-stream, resumes from the checkpoint (the extractor
   identity rides in the checkpoint) and finishes the stream;
4. scores discovered clusters against the planted ground truth.

Run:  python examples/entity_stream.py
"""

import os
import tempfile

from repro import DetectorConfig, EventKind, QueueSink, open_session
from repro.datasets.entity_streams import build_edge_stream_trace

CONFIG = DetectorConfig(
    quantum_size=80,
    window_quanta=10,
    high_state_threshold=3,
    extractor="edges",          # fields={"entities": [...]} pass-through
    require_noun=False,         # noun filter is meaningless off text
)


def main() -> None:
    print("generating co-purchase workload ...")
    trace = build_edge_stream_trace(
        total_messages=12_000, n_events=6, seed=21
    )
    sample = trace.messages[0]
    print(f"  e.g. actor {sample.user_id!r} -> {sample.fields}")

    print("\nstreaming first half through the session ...")
    inbox = QueueSink()
    split = len(trace.messages) // 2
    session = open_session(CONFIG)
    session.subscribe(inbox, kinds={EventKind.EMERGING, EventKind.DYING})
    for _ in session.ingest_many(trace.messages[:split]):
        for note in inbox.drain():
            print(f"  q{note.quantum:<4} {note.kind.value:>8}  "
                  f"{sorted(note.keywords)} (rank {note.rank:.1f})")
    ckpt = os.path.join(tempfile.mkdtemp(), "entity_stream.ckpt")
    session.snapshot(ckpt)
    print(f"-- checkpoint at quantum {session.current_quantum} "
          f"({session.batcher.pending} records buffered)")

    print("\nresuming from the checkpoint for the second half ...")
    resumed = open_session(resume=ckpt)
    assert resumed.extractor.name == "edges"  # identity rode the checkpoint
    resumed.subscribe(inbox, kinds={EventKind.EMERGING, EventKind.DYING})
    for _ in resumed.ingest_many(trace.messages[split:], flush=True):
        for note in inbox.drain():
            print(f"  q{note.quantum:<4} {note.kind.value:>8}  "
                  f"{sorted(note.keywords)} (rank {note.rank:.1f})")

    discovered = set()
    for record in resumed.events():
        discovered |= set(record.all_keywords)
    hits = [
        truth.event_id
        for truth in trace.ground_truth
        if len(set(truth.keywords) & discovered) >= 3
    ]
    print(f"\n{len(hits)}/{len(trace.ground_truth)} planted bundles "
          f"discovered: {', '.join(hits)}")
    print(f"throughput: {resumed.throughput():.0f} records/s "
          f"({resumed.total_messages} records)")


if __name__ == "__main__":
    main()
