"""SCP clusters vs the offline biconnected baseline (Section 7.3 in small).

Runs both methods over the identical AKG and prints the Table 3 comparison:
events discovered, precision, recall, average rank and cluster size — plus
the offline method's extra clusters and the clustering-time comparison.

The detection pass rides the session API end to end:
:func:`repro.eval.comparison.compare_schemes` opens a
:class:`~repro.api.session.DetectorSession` via the eval runner, attaches
the offline observer to the session's live AKG after every quantum, and
evaluates all three schemes from the session's tracked event histories
(``session.events()``) — no ``EventDetector`` facade involved.

Run:  python examples/offline_vs_online.py
"""

from repro import DetectorConfig
from repro.datasets.traces import build_ground_truth_trace
from repro.eval.comparison import compare_schemes
from repro.eval.reporting import render_table


def main() -> None:
    print("generating workload ...")
    trace = build_ground_truth_trace(
        total_messages=25_000,
        n_headline_discoverable=12,
        n_headline_subthreshold=8,
        n_local_events=20,
        n_spurious=3,
        seed=3,
    )
    print("running SCP detector with offline observer on the same AKG ...")
    comparison = compare_schemes(trace, DetectorConfig())

    print()
    print(render_table(
        ["Scheme", "Events", "Precision", "Recall", "Avg Rank", "Avg Size"],
        [
            [r.scheme, r.events_discovered, r.precision, r.recall,
             r.avg_rank, r.avg_cluster_size]
            for r in comparison.rows
        ],
        title="Performance of different clustering schemes (cf. Table 3)",
    ))
    print()
    print(f"additional offline clusters (+edges):  {comparison.additional_clusters_pct:+.1f}%")
    print(f"additional offline events (+edges):    {comparison.additional_events_pct:+.1f}%")
    print(f"BC event clusters == SCP clusters:     {comparison.exact_overlap_pct:.1f}%")
    print(f"BC clusters containing a short cycle:  "
          f"{comparison.bc_event_clusters_with_short_cycle_pct:.1f}%")
    print(f"SCP clustering time:                   {comparison.scp_clustering_seconds:.3f}s")
    print(f"offline clustering time:               {comparison.bc_clustering_seconds:.3f}s")
    print(f"SCP speedup:                           {comparison.scp_speedup_pct:+.1f}%")


if __name__ == "__main__":
    main()
