"""CI perf gate: compare fresh bench JSON against the committed baselines.

Usage::

    python benchmarks/check_regression.py \\
        --baseline /tmp/perf-baseline --current benchmarks/results \\
        --tolerance 0.25 hot_path parallel_akg incremental_akg \\
        incremental_ranking

For every named bench the script loads ``<dir>/<name>.json`` (schema of
``_results.py``) from both directories and fails (exit 1) when the current
``speedup`` ratio has regressed by more than ``--tolerance`` relative to the
baseline.  Ratios — not wall seconds — are compared because they transfer
across machines; wall times are printed for context only.

Comparisons are skipped (with a notice, not a failure) when:

* the baseline records no ``speedup`` (ratio-free benches);
* either side's ``config.cores`` is below the bench's declared
  ``config.speedup_cores_required`` — a single-core container cannot
  produce a meaningful parallel-speedup baseline, so such baselines gate
  nothing until regenerated on capable hardware (the in-bench asserts
  still enforce the absolute floors there).

A missing or unparseable baseline file is a FAILURE with regeneration
instructions, never a traceback: a silently absent baseline would turn the
whole gate into a no-op.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


class MissingBaseline(Exception):
    """A named bench has no JSON on one side of the comparison."""


def load(directory: Path, name: str) -> dict:
    path = directory / f"{name}.json"
    if not path.exists():
        raise MissingBaseline(
            f"{name}: no result file at {path}.\n"
            f"  Regenerate it with\n"
            f"      PYTHONPATH=src python benchmarks/bench_{name}.py\n"
            f"  and commit benchmarks/results/{name}.json if this bench "
            f"was newly added to the gate list."
        )
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except json.JSONDecodeError as exc:
        raise MissingBaseline(
            f"{name}: {path} is not valid JSON ({exc}); regenerate it "
            f"with PYTHONPATH=src python benchmarks/bench_{name}.py"
        ) from exc


def comparable(entry: dict) -> bool:
    config = entry.get("config", {})
    required = config.get("speedup_cores_required")
    if required is None:
        return True
    return config.get("cores", 0) >= required


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup drop (default 0.25)")
    parser.add_argument("benches", nargs="+")
    args = parser.parse_args(argv)

    failures = []
    for name in args.benches:
        try:
            base = load(args.baseline, name)
            cur = load(args.current, name)
        except MissingBaseline as exc:
            print(f"FAIL {exc}")
            failures.append(str(exc).splitlines()[0])
            continue
        base_speedup = base.get("speedup")
        cur_speedup = cur.get("speedup")
        context = (
            f"wall {base.get('wall_s')}s -> {cur.get('wall_s')}s, "
            f"quanta {base.get('quanta')} -> {cur.get('quanta')}"
        )
        if base_speedup is None:
            print(f"SKIP {name}: baseline records no speedup ({context})")
            continue
        if not (comparable(base) and comparable(cur)):
            print(
                f"SKIP {name}: core count below the bench's requirement on "
                f"one side (baseline cores="
                f"{base.get('config', {}).get('cores')}, current cores="
                f"{cur.get('config', {}).get('cores')}); the in-bench "
                f"asserts keep gating the absolute floors"
            )
            if comparable(cur) and not comparable(base):
                print(
                    f"NOTE {name}: this machine CAN produce a comparable "
                    f"baseline — commit the fresh "
                    f"benchmarks/results/{name}.json to arm the "
                    f"regression gate for future runs"
                )
            continue
        if cur_speedup is None:
            failures.append(f"{name}: current run recorded no speedup")
            continue
        floor = base_speedup * (1.0 - args.tolerance)
        verdict = "OK" if cur_speedup >= floor else "REGRESSION"
        print(
            f"{verdict} {name}: speedup {base_speedup:.2f} -> "
            f"{cur_speedup:.2f} (floor {floor:.2f}; {context})"
        )
        if cur_speedup < floor:
            failures.append(
                f"{name}: speedup {cur_speedup:.2f} fell below "
                f"{floor:.2f} (baseline {base_speedup:.2f}, tolerance "
                f"{args.tolerance:.0%})"
            )
    if failures:
        print("\nperf-smoke gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf-smoke gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
