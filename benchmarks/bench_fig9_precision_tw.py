"""Figure 9 — precision vs quantum size for each EC threshold, TW trace.

Paper shape: precision stays high (~0.85–0.95) and improves mildly with
relaxed parameters, because spurious events burst regardless of tuning while
additional discovered events are mostly real.
"""

import time

from _sweeps import (
    assert_precision_band,
    render_metric,
    run_sweep,
    write_sweep_json,
)
from conftest import emit


def bench_fig9_precision_tw(benchmark, tw_trace):
    started = time.perf_counter()
    sweep = benchmark.pedantic(run_sweep, args=(tw_trace,), rounds=1, iterations=1)
    emit(
        "fig9_precision_tw",
        render_metric(
            sweep, "precision", "Figure 9 — Precision for Time Window Based Trace"
        ),
    )
    write_sweep_json(
        "fig9_precision_tw", sweep, tw_trace, "precision",
        time.perf_counter() - started,
    )
    assert_precision_band(sweep, floor=0.55)
