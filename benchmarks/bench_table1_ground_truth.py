"""Table 1 / Section 7.1 — evaluation against ground truth.

Paper: of 60 headline events, 27 were sub-threshold (too few tweets); of the
33 discoverable ones the method found 31; it additionally discovered ~6x
more real events with no headline at all; real-time events (weather
warnings) were detected hours before their headlines.

This bench replays the synthetic headline workload and regenerates the same
rows: discoverable vs found counts, extra local events, and headline lead
times.
"""

from repro.config import DetectorConfig
from repro.datasets.headlines import PAPER_STREAM_RATE, headlines_for_trace
from repro.eval.reporting import render_table
from repro.eval.runner import evaluate_run, run_detector

from _results import write_json_result
from conftest import emit


def bench_table1_ground_truth(benchmark, ground_truth_trace):
    trace = ground_truth_trace
    # the Section 7.1 run used the permissive EC threshold gamma = 0.1
    config = DetectorConfig(ec_threshold=0.1)

    result = benchmark.pedantic(
        run_detector, args=(trace, config), rounds=1, iterations=1
    )
    summary = evaluate_run(result, trace)

    headlined = [e for e in trace.ground_truth if e.headlined]
    discoverable = [
        e
        for e in headlined
        if e.discoverable(config.quantum_size, config.high_state_threshold)
    ]
    sub_threshold = [e for e in headlined if e not in discoverable]
    matched = summary.match.matched_truth_ids()
    found_headline = [e for e in discoverable if e.event_id in matched]
    local_found = sorted(t for t in matched if t.startswith("gt-local"))

    headlines = headlines_for_trace(trace)
    leads = []
    for headline in headlines:
        detected = summary.match.first_detection_message(
            headline.event_id, config.quantum_size
        )
        lead = headline.lead_time_seconds(detected, PAPER_STREAM_RATE)
        if lead is not None:
            leads.append((headline.event_id, lead / 60.0))
    leads.sort(key=lambda t: -t[1])

    rows = [
        ["headline events in feed", len(headlined), 60],
        ["  sub-threshold (excluded)", len(sub_threshold), 27],
        ["  discoverable", len(discoverable), 33],
        ["  discovered by SCP", len(found_headline), 31],
        ["non-headline (local) events found", len(local_found), "~6x headline"],
        ["events beating their headline", sum(1 for _, m in leads if m > 0), "most"],
        ["best headline lead (minutes)", round(max((m for _, m in leads), default=0), 1), "up to 6h"],
    ]
    emit(
        "table1_ground_truth",
        render_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Table 1 / Section 7.1 — SCP technique w.r.t. ground truth",
        ),
    )

    write_json_result(
        "table1_ground_truth",
        config={
            "discoverable": len(discoverable),
            "found_headline": len(found_headline),
            "local_found": len(local_found),
            "recall": round(summary.pr.recall, 4),
            "precision": round(summary.pr.precision, 4),
        },
        wall_s=result.detector_seconds,
        speedup=None,
        quanta=len(trace.messages) // config.quantum_size,
    )
    # shape assertions: most discoverable headline events found; extra
    # local events discovered; no sub-threshold event counted as a miss
    assert len(found_headline) >= 0.8 * len(discoverable)
    assert len(local_found) >= len(found_headline)
    assert summary.pr.recall >= 0.75
