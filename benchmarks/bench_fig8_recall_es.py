"""Figure 8 — recall vs quantum size for each EC threshold, ES trace.

Paper shape: same monotonic trends as Figure 7 on the event-dense trace;
with relaxed parameters recall reaches ~0.95.
"""

import time

from _sweeps import (
    GAMMAS,
    QUANTA,
    assert_recall_shape,
    grid_of,
    render_metric,
    run_sweep,
    write_sweep_json,
)
from conftest import emit


def bench_fig8_recall_es(benchmark, es_trace):
    started = time.perf_counter()
    sweep = benchmark.pedantic(run_sweep, args=(es_trace,), rounds=1, iterations=1)
    emit(
        "fig8_recall_es",
        render_metric(
            sweep, "recall", "Figure 8 — Recall for Event Specific Trace"
        ),
    )
    write_sweep_json(
        "fig8_recall_es", sweep, es_trace, "recall",
        time.perf_counter() - started,
    )
    assert_recall_shape(sweep)
    # relaxed corner (small gamma, large quantum) reaches high recall
    grid = grid_of(sweep, "recall")
    assert grid[0][-1] >= 0.8
