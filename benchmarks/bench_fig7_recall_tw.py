"""Figure 7 — recall vs quantum size for each EC threshold, TW trace.

Paper shape: recall increases with the quantum size (more keywords clear the
burstiness threshold) and decreases with gamma (fewer edges survive); TW
recall spans roughly 0.5–0.85 across the grid.
"""

import time

from _sweeps import assert_recall_shape, render_metric, run_sweep, write_sweep_json
from conftest import emit


def bench_fig7_recall_tw(benchmark, tw_trace):
    started = time.perf_counter()
    sweep = benchmark.pedantic(run_sweep, args=(tw_trace,), rounds=1, iterations=1)
    emit(
        "fig7_recall_tw",
        render_metric(
            sweep, "recall", "Figure 7 — Recall for Time Window Based Trace"
        ),
    )
    write_sweep_json(
        "fig7_recall_tw", sweep, tw_trace, "recall",
        time.perf_counter() - started,
    )
    assert_recall_shape(sweep)
