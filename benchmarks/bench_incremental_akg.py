"""Delta-driven vs. from-scratch AKG stage throughput across churn rates.

The AKG stage used to sweep state proportional to the window vocabulary each
quantum (full dead-node scans, O(window) sketch merges); the delta-driven
:class:`~repro.akg.builder.AkgBuilder` touches only the quantum's delta sets.
This bench builds a world of stable keyword-group clusters, lets a controlled
fraction of groups emit per quantum (the churn), and times one AKG-stage pass
in each mode over the identical stream.  Per-round equivalence of the two
graphs, decompositions and change-event multisets is asserted, so the speedup
is measured against a provably identical result — the same differential
contract as ``tests/test_akg_incremental_properties.py``.

Expected shape: the fast path's cost scales with the churned fraction while
the oracle recomputes the window every quantum, so the speedup is largest at
low churn (the paper's operating regime) and shrinks as churn approaches
100%.

Run under pytest with the bench options, or standalone:

    PYTHONPATH=src python benchmarks/bench_incremental_akg.py
"""

from __future__ import annotations

import sys
import time
from collections import Counter
from pathlib import Path
from typing import Dict, List, Set, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from _results import write_json_result  # noqa: E402

from repro.akg.builder import AkgBuilder
from repro.config import DetectorConfig
from repro.core.maintenance import ClusterMaintainer
from repro.eval.reporting import render_table
from repro.graph.dynamic_graph import edge_key

N_GROUPS = 60
GROUP_SIZE = 4
USERS_PER_GROUP = 6
NOISE_PER_QUANTUM = 60
CHURN_RATES = [0.05, 0.10, 0.50]
ROUNDS = 30
WINDOW = 60
THETA = 3

CONFIG = DetectorConfig(
    quantum_size=8,
    window_quanta=WINDOW,
    high_state_threshold=THETA,
    ec_threshold=0.3,
    node_grace_quanta=1,
)


def group_keywords(group: int) -> List[str]:
    return [f"g{group}_k{i}" for i in range(GROUP_SIZE)]


def group_quantum(group: int, round_no: int) -> Dict[str, Set[int]]:
    """One group's burst: all keywords share one user cohort.  The cohort
    rotates by one user per round so every appearance produces genuine
    support deltas (the window slide's weight-change feed)."""
    base = group * 100 + round_no % 3
    users = {base + u for u in range(USERS_PER_GROUP)}
    return {kw: set(users) for kw in group_keywords(group)}


def stream_quanta(churn: float, rounds: int, start: int = 0) -> List[Dict[str, Set[int]]]:
    """Round-robin schedule: ``churn * N_GROUPS`` groups emit per quantum,
    so each group re-appears every 1/churn quanta — inside the window, which
    keeps the non-churning majority alive but untouched.  Every quantum also
    carries ``NOISE_PER_QUANTUM`` fresh single-user keywords: the long-tail
    vocabulary that dominates real microblog quanta (the Section 7.4
    CKG-vs-AKG gap).  The delta path pays for each noise keyword twice —
    entry and expiry — while a from-scratch window rebuild re-pays the whole
    retained tail every quantum."""
    per_round = max(1, round(churn * N_GROUPS))
    quanta = []
    cursor = 0
    for r in range(start, start + rounds):
        content: Dict[str, Set[int]] = {}
        for _ in range(per_round):
            content.update(group_quantum(cursor % N_GROUPS, r))
            cursor += 1
        for i in range(NOISE_PER_QUANTUM):
            content[f"noise_{r}_{i}"] = {1_000_000 + r * 64 + i}
        quanta.append(content)
    return quanta


def snapshot(maintainer: ClusterMaintainer):
    graph = maintainer.graph
    return (
        frozenset(graph.nodes()),
        {edge_key(u, v): w for u, v, w in graph.edges()},
        {
            c.cluster_id: (frozenset(c.nodes), frozenset(c.edges))
            for c in maintainer.registry
        },
    )


def measure_churn_rate(churn: float, rounds: int = ROUNDS) -> Tuple[float, float, int]:
    """(fast_seconds, oracle_seconds, touched_keywords_per_round)."""
    fast_m, oracle_m = ClusterMaintainer(), ClusterMaintainer()
    fast = AkgBuilder(CONFIG, fast_m)
    oracle = AkgBuilder(CONFIG, oracle_m, oracle=True)

    # one full rotation so every group's cluster exists before timing
    per_round = max(1, round(churn * N_GROUPS))
    warmup_rounds = -(-N_GROUPS // per_round)
    warmup = stream_quanta(churn, rounds=warmup_rounds)
    measured = stream_quanta(churn, rounds=rounds, start=warmup_rounds)
    quantum = 0
    for content in warmup:
        fast.process_quantum(quantum, content)
        oracle.process_quantum(quantum, content)
        fast_m.drain_changes(), oracle_m.drain_changes()
        quantum += 1

    fast_seconds = 0.0
    oracle_seconds = 0.0
    touched = 0
    for content in measured:
        touched += len(content)
        t = time.perf_counter()
        fast.process_quantum(quantum, content)
        fast_seconds += time.perf_counter() - t

        t = time.perf_counter()
        oracle.process_quantum(quantum, content)
        oracle_seconds += time.perf_counter() - t

        assert snapshot(fast_m) == snapshot(oracle_m), (
            f"fast/oracle AKG divergence at churn={churn}, quantum={quantum}"
        )
        fast_events = Counter(fast_m.drain_changes().events)
        oracle_events = Counter(oracle_m.drain_changes().events)
        assert fast_events == oracle_events, (
            f"fast/oracle event divergence at churn={churn}, quantum={quantum}"
        )
        quantum += 1
    return fast_seconds, oracle_seconds, touched // rounds


def run_bench() -> Tuple[str, Dict[float, float]]:
    rows: List[List[object]] = []
    speedups: Dict[float, float] = {}
    fast_walls: Dict[float, float] = {}
    vocabulary = N_GROUPS * GROUP_SIZE + WINDOW * NOISE_PER_QUANTUM
    for churn in CHURN_RATES:
        fast_s, oracle_s, touched = measure_churn_rate(churn)
        speedup = oracle_s / fast_s if fast_s else float("inf")
        speedups[churn] = speedup
        fast_walls[churn] = fast_s
        rows.append(
            [
                f"{churn:.0%}",
                f"{touched}/{vocabulary}",
                round(1e6 * fast_s / ROUNDS, 1),
                round(1e6 * oracle_s / ROUNDS, 1),
                f"{speedup:.1f}x",
            ]
        )
    table = render_table(
        [
            "churn",
            "touched keywords",
            "delta-driven us/quantum",
            "from-scratch us/quantum",
            "speedup",
        ],
        rows,
        title=(
            f"AKG stage: delta-driven vs from-scratch "
            f"({N_GROUPS} keyword groups of {GROUP_SIZE}, window {WINDOW})"
        ),
    )
    write_json_result(
        "incremental_akg",
        config={
            "churn_rates": CHURN_RATES,
            "rounds": ROUNDS,
            "window": WINDOW,
            "speedups": {f"{c:.2f}": round(s, 2) for c, s in speedups.items()},
        },
        wall_s=sum(fast_walls.values()),
        speedup=speedups[0.10],
        quanta=ROUNDS * len(CHURN_RATES),
    )
    return table, speedups


def bench_incremental_akg():
    """Acceptance gate: >= 3x at <= 10% churn, with exact AKG parity."""
    table, speedups = run_bench()
    try:
        from conftest import emit
    except ImportError:  # standalone run
        print(table)
    else:
        emit("incremental_akg", table)
    assert speedups[0.05] >= 3.0, (
        f"expected >= 3x AKG speedup at 5% churn, got {speedups[0.05]:.1f}x"
    )
    assert speedups[0.10] >= 3.0, (
        f"expected >= 3x AKG speedup at 10% churn, got {speedups[0.10]:.1f}x"
    )


if __name__ == "__main__":
    bench_incremental_akg()
