"""Shared sweep driver for the Figure 7–10 benches."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.config import DetectorConfig
from repro.datasets.synthetic import Trace
from repro.eval.quality import QualityStats
from repro.eval.reporting import render_grid
from repro.eval.runner import evaluate_run, run_detector

QUANTA = [80, 120, 160, 200, 240]
GAMMAS = [0.10, 0.15, 0.20, 0.25]

SweepResult = Dict[Tuple[float, int], "object"]


_SWEEP_CACHE: Dict[str, SweepResult] = {}


def run_sweep(trace: Trace) -> SweepResult:
    """Evaluate the full (gamma, quantum) grid on one trace.

    Cached per trace name: the recall and precision figures of each trace
    share one sweep, exactly as in the paper's experiments.
    """
    cached = _SWEEP_CACHE.get(trace.name)
    if cached is not None:
        return cached
    out: SweepResult = {}
    for gamma in GAMMAS:
        for quantum in QUANTA:
            config = DetectorConfig(quantum_size=quantum, ec_threshold=gamma)
            summary = evaluate_run(
                run_detector(trace, config),
                trace,
                # the paper fixes one recall denominator across all runs of
                # a sweep (Section 7.2.2) — anchor it at the most permissive
                # quantum size so weak events count as misses at small ones
                reference_quantum_size=max(QUANTA),
            )
            out[(gamma, quantum)] = summary
    _SWEEP_CACHE[trace.name] = out
    return out


def grid_of(sweep: SweepResult, metric: str) -> List[List[float]]:
    grid = []
    for gamma in GAMMAS:
        row = []
        for quantum in QUANTA:
            summary = sweep[(gamma, quantum)]
            if metric in ("precision", "recall"):
                row.append(getattr(summary.pr, metric))
            else:
                row.append(getattr(summary.quality, metric))
        grid.append(row)
    return grid


def render_metric(sweep: SweepResult, metric: str, title: str) -> str:
    return render_grid(
        "gamma", GAMMAS, "quantum", QUANTA, grid_of(sweep, metric), title=title
    )


def write_sweep_json(
    name: str, sweep: SweepResult, trace: Trace, metric: str, wall_s: float
) -> None:
    """Emit one figure bench's machine-readable result (see _results.py)."""
    from _results import write_json_result

    write_json_result(
        name,
        config={
            "trace": trace.name,
            "metric": metric,
            "gammas": GAMMAS,
            "quantum_sizes": QUANTA,
            "grid": [[round(v, 4) for v in row] for row in grid_of(sweep, metric)],
        },
        wall_s=wall_s,
        speedup=None,
        quanta=len(trace.messages) // 160,
    )


def assert_recall_shape(sweep: SweepResult) -> None:
    """Recall rises with the quantum size and falls with gamma (allowing
    small non-monotonic jitter on a finite trace)."""
    grid = grid_of(sweep, "recall")
    for row in grid:  # larger quantum -> more bursty keywords
        assert row[-1] >= row[0] - 0.05
    for j in range(len(QUANTA)):  # larger gamma -> fewer edges
        assert grid[0][j] >= grid[-1][j] - 0.05


def assert_precision_band(sweep: SweepResult, floor: float = 0.5) -> None:
    grid = grid_of(sweep, "precision")
    for row in grid:
        for value in row:
            assert value >= floor
