"""Multi-core tokenize+AKG front-end: sharded workers vs the serial stage.

Replays one long-tailed *raw-text* stream (tokenisation is a first-class
cost here, exactly as in production microblog feeds) through four sessions:

* ``serial``  — the plain unsharded pipeline (the PR 3 baseline);
* ``W=1``     — the sharded front-end with one in-process worker (measures
  the partition/merge overhead the sharding machinery adds);
* ``W=2``/``W=4`` — forked process workers over keyword-range shards.

Measured: the wall time of exactly the stages the front-end parallelises —
``tokenize + akg_update`` (post-accounting, i.e. excluding the inline
cluster-maintenance share, which is serial in every mode).  Every run's
reports are asserted bit-identical to the serial session's, so the speedup
is measured against a provably identical result (the shard-invariance
contract of DESIGN.md Section 7).

Gates:

* the W=1 sharded front-end must stay within 10% of the serial stage
  (always asserted);
* >= 2x tokenize+AKG speedup at 4 workers vs 1 — asserted when the machine
  actually has >= 4 usable cores (a 1-core container cannot demonstrate
  parallel speedup; the CI perf-smoke job runs this on a multi-core
  runner, and the JSON result records the core count either way).

Run standalone:  PYTHONPATH=src python benchmarks/bench_parallel_akg.py
"""

from __future__ import annotations

import os
import random
import sys
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from _results import smoke_scale, write_json_result  # noqa: E402

from repro.api import open_session  # noqa: E402
from repro.config import DetectorConfig  # noqa: E402
from repro.eval.reporting import render_table  # noqa: E402
from repro.stream.messages import Message  # noqa: E402

QUANTUM = 1500
WINDOW = 10
N_GROUPS = 24
GROUP_SIZE = 4
USERS_PER_GROUP = 16
FILLER_VOCAB = 4000
USER_POOL = 20_000
WORKER_COUNTS = [1, 2, 4]

CONFIG = DetectorConfig(
    quantum_size=QUANTUM,
    window_quanta=WINDOW,
    high_state_threshold=8,
    ec_threshold=0.25,
    node_grace_quanta=1,
    require_noun=False,
)

# A large sub-threshold tail vocabulary: realistic mid-frequency words that
# never burst (the Section 7.4 CKG-vs-AKG gap), so the AKG stays event-sized
# while tokenize/hash volume stays high.
FILLER = [f"word{i:04d}" for i in range(FILLER_VOCAB)]


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity
        return os.cpu_count() or 1


def build_stream(n_quanta: int, seed: int = 13) -> List[Message]:
    """Long-tailed raw-text stream: rotating event-group bursts riding a
    dominant sub-threshold filler vocabulary, authored by a recurring user
    population (plus fresh drive-by users), as in a real microblog feed."""
    rng = random.Random(seed)
    messages: List[Message] = []
    for quantum in range(n_quanta):
        batch: List[Message] = []
        # ~1/3 of the groups burst per quantum, rotating user cohorts
        for slot in range(N_GROUPS // 3):
            group = (quantum + slot * 3) % N_GROUPS
            words = " ".join(f"g{group}kw{k}" for k in range(GROUP_SIZE))
            base = group * 100 + (quantum % 3) * USERS_PER_GROUP
            for user in range(USERS_PER_GROUP):
                filler = " ".join(rng.sample(FILLER, 6))
                batch.append(
                    Message(
                        f"fan{base + user}",
                        text=f"{filler} {words} {rng.choice(FILLER)}",
                    )
                )
        # the tail: recurring users posting filler chatter, occasionally a
        # one-shot keyword from a drive-by author
        noise_id = 0
        while len(batch) < QUANTUM:
            filler = " ".join(rng.sample(FILLER, 8))
            if noise_id % 4 == 0:
                author = f"drive{quantum}_{noise_id}"
                text = f"{filler} zz{quantum}x{noise_id}"
            else:
                author = f"user{rng.randrange(USER_POOL)}"
                text = filler
            batch.append(Message(author, text=text))
            noise_id += 1
        rng.shuffle(batch)
        messages.extend(batch[:QUANTUM])
    return messages


def report_fingerprint(reports) -> list:
    return [
        (
            r.quantum,
            sorted(
                (e.event_id, tuple(sorted(e.keywords)), e.rank, e.support)
                for e in r.reported
            ),
            sorted(r.new_event_ids),
            sorted(r.dead_event_ids),
        )
        for r in reports
    ]


def run_mode(stream, **session_kwargs) -> Tuple[float, float, list, Dict]:
    """Returns (extract+akg seconds, total seconds, fingerprint, timings)."""
    session = open_session(CONFIG, **session_kwargs)
    reports = list(session.ingest_many(stream))
    timings = session.total_timings.as_dict()
    front = timings["extract"] + timings["akg_update"]
    total = session.total_seconds
    fingerprint = report_fingerprint(reports)
    session.close()
    return front, total, fingerprint, timings


def run_bench(n_quanta: int) -> Tuple[str, Dict[str, float], int, Dict]:
    stream = build_stream(n_quanta)
    cores = usable_cores()
    walls: Dict[str, float] = {}
    stage_timings: Dict[str, Dict[str, float]] = {}
    rows: List[List[object]] = []

    # Warm caches (imports, code objects, allocator) before any timing.
    run_mode(stream[: 2 * QUANTUM])

    # The overhead gate compares two near-equal walls, so the two
    # gate-critical modes are measured *alternately* three times and take
    # their minima — single runs on shared runners are ~10% noisy.
    serial_fp = None
    serial_front = serial_total = float("inf")
    w1_front = w1_total = float("inf")
    for _ in range(3):
        front, total, fingerprint, timings = run_mode(stream)
        if serial_fp is None:
            serial_fp = fingerprint
        assert fingerprint == serial_fp
        if front < serial_front:
            stage_timings["serial"] = timings
        serial_front = min(serial_front, front)
        serial_total = min(serial_total, total)
        # workers=1 must still exercise the sharded machinery (that is
        # what the overhead gate measures), so force a shard count.
        front, total, fingerprint, timings = run_mode(
            stream, workers=1, shard_count=1
        )
        assert fingerprint == serial_fp, (
            "sharded W=1 reports diverged from the serial session"
        )
        if front < w1_front:
            stage_timings["w1"] = timings
        w1_front = min(w1_front, front)
        w1_total = min(w1_total, total)
    walls["serial"] = serial_front
    walls["w1"] = w1_front
    rows.append(
        ["serial (PR 3)", f"{serial_front:.2f}", f"{serial_total:.2f}", "-"]
    )
    rows.append(["sharded W=1", f"{w1_front:.2f}", f"{w1_total:.2f}", "1.00x"])
    for workers in WORKER_COUNTS:
        if workers == 1:
            continue
        front, total, fingerprint, timings = run_mode(
            stream, workers=workers
        )
        assert fingerprint == serial_fp, (
            f"sharded W={workers} reports diverged from the serial session"
        )
        walls[f"w{workers}"] = front
        stage_timings[f"w{workers}"] = timings
        rows.append(
            [
                f"sharded W={workers}",
                f"{front:.2f}",
                f"{total:.2f}",
                f"{walls['w1'] / front:.2f}x",
            ]
        )
    table = render_table(
        ["mode", "tokenize+akg s", "total s", "speedup vs W=1"],
        rows,
        title=(
            f"tokenize+AKG front-end, {n_quanta} quanta x {QUANTUM} raw-text "
            f"messages ({cores} usable cores) — all reports bit-identical"
        ),
    )
    return table, walls, cores, stage_timings


SPEEDUP_CORES_REQUIRED = 4


def bench_parallel_akg():
    """Acceptance gates: W=1 overhead <= 10%; >= 2x at W=4 on >= 4 cores."""
    n_quanta = smoke_scale(default=24, smoke=8)
    table, walls, cores, stage_timings = run_bench(n_quanta)
    try:
        from conftest import emit
    except ImportError:  # standalone run
        print(table)
    else:
        emit("parallel_akg", table)

    overhead = walls["w1"] / walls["serial"]
    # A host below the core requirement cannot demonstrate parallel
    # speedup; record None (a documented skip) rather than shipping a
    # sub-1x "speedup" that a regression check would treat as the
    # machine's capability.
    measured = walls["w1"] / walls["w4"]
    speedup = measured if cores >= SPEEDUP_CORES_REQUIRED else None
    write_json_result(
        "parallel_akg",
        config={
            "quanta": n_quanta,
            "quantum_size": QUANTUM,
            "window_quanta": WINDOW,
            "cores": cores,
            "wall_serial_s": round(walls["serial"], 4),
            "wall_w1_s": round(walls["w1"], 4),
            "wall_w2_s": round(walls["w2"], 4),
            "wall_w4_s": round(walls["w4"], 4),
            "w1_overhead": round(overhead, 4),
            "speedup_cores_required": SPEEDUP_CORES_REQUIRED,
            "stage_timings_s": {
                mode: {k: round(v, 4) for k, v in timings.items()}
                for mode, timings in sorted(stage_timings.items())
            },
        },
        wall_s=walls["w4"],
        speedup=speedup,
        quanta=n_quanta,
    )
    assert overhead <= 1.10, (
        f"sharded W=1 overhead vs the serial stage is {overhead:.2f}x "
        f"(gate: <= 1.10x)"
    )
    if speedup is not None:
        assert speedup >= 2.0, (
            f"expected >= 2x tokenize+AKG speedup at 4 workers, got "
            f"{speedup:.2f}x on {cores} cores"
        )
    else:
        print(
            f"-- speedup gate skipped: {cores} usable core(s) < "
            f"{SPEEDUP_CORES_REQUIRED} (measured {measured:.2f}x; "
            f"enforced on multi-core CI)"
        )


if __name__ == "__main__":
    bench_parallel_akg()
