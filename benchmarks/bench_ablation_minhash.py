"""Ablation — MinHash candidate filtering vs exact all-pairs EC.

DESIGN.md calls out the Section 3.2.2 sketch filter as a design choice worth
quantifying: it must cut the number of EC computations substantially while
losing almost no events (the paper accepts "a very small probability of
false negatives").
"""

from repro.config import DetectorConfig
from repro.eval.reporting import render_table
from repro.eval.runner import evaluate_run, run_detector

from _results import write_json_result
from conftest import emit

_results = {}


def _run(trace, use_filter):
    config = DetectorConfig(use_minhash_filter=use_filter)
    result = run_detector(trace, config)
    summary = evaluate_run(result, trace)
    return result, summary


def bench_ablation_minhash(benchmark, tw_trace):
    def both():
        return _run(tw_trace, True), _run(tw_trace, False)

    (mh_result, mh_summary), (ex_result, ex_summary) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )

    rows = [
        [
            "minhash filter",
            mh_summary.pr.recall,
            mh_summary.pr.precision,
            round(mh_result.throughput),
        ],
        [
            "exact all-pairs",
            ex_summary.pr.recall,
            ex_summary.pr.precision,
            round(ex_result.throughput),
        ],
    ]
    emit(
        "ablation_minhash",
        render_table(
            ["EC candidate strategy", "recall", "precision", "msg/s"],
            rows,
            title="Ablation — MinHash candidate filter (Section 3.2.2)",
        ),
    )

    write_json_result(
        "ablation_minhash",
        config={
            "recall_minhash": round(mh_summary.pr.recall, 4),
            "recall_exact": round(ex_summary.pr.recall, 4),
            "throughput_minhash": round(mh_result.throughput),
            "throughput_exact": round(ex_result.throughput),
        },
        wall_s=mh_result.detector_seconds,
        speedup=(
            mh_result.throughput / ex_result.throughput
            if ex_result.throughput
            else None
        ),
        quanta=len(tw_trace.messages) // 160,
    )
    # the filter may cost a little recall (false negatives) but not much
    assert mh_summary.pr.recall >= ex_summary.pr.recall - 0.15
    assert mh_summary.pr.precision >= ex_summary.pr.precision - 0.1
