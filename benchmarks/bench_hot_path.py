"""Batched hot path: single-core msg/s of the batched vs reference backend.

The PR 6 tentpole gate.  One pre-tokenized TW-style trace is replayed
through three sessions over the identical hot-path configuration:

* ``reference`` — the object-path pipeline (per-message dicts, per-user
  salted hashing, Counter-backed window sets);
* ``batched``   — the array-backed backend (quantum columns, interned ids,
  vectorized sketch minima, sorted packed-key window slides);
* ``batched / pure-python`` — the same backend with numpy force-disabled
  (``REPRO_PURE_PYTHON``), i.e. the dict fallback engine.

Every run's reports must be *bit-identical* (reported events, ranks,
supports, lifecycle ids, AKG mutation counters) — the speedup is measured
against a provably equal result, the DESIGN.md Section 9 contract.

Gates:

* the batched backend must sustain >= ``GATE_MULTIPLE`` x the committed
  table-4 single-core baseline (the mean of the TW/ES q=160 msg/s figures
  in ``results/table4_throughput.json`` — the rate the repo shipped before
  this backend existed);
* batched must beat reference on the *same* configuration (sanity: the
  backend can never be a pessimisation).

Run standalone:  PYTHONPATH=src python benchmarks/bench_hot_path.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import List, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from _results import RESULTS_DIR, smoke_scale, write_json_result  # noqa: E402

import repro.arrays as arrays  # noqa: E402
from repro.api import open_session  # noqa: E402
from repro.config import DetectorConfig  # noqa: E402
from repro.datasets.traces import build_tw_trace  # noqa: E402
from repro.eval.reporting import render_table  # noqa: E402

# Large quanta are the batched backend's design point: per-quantum work is
# one vectorized slide, so the quantum is sized for array efficiency while
# theta keeps the burst threshold at the same fraction of quantum size the
# table-4 runs use.
QUANTUM = 3_200
WINDOW = 6
THETA = 80
ROUNDS = 3

# The committed pre-backend baseline this PR's headline multiplies: the
# table-4 single-core msg/s (mean of the TW and ES q=160 figures).
BASELINE_RESULT = RESULTS_DIR / "table4_throughput.json"
BASELINE_KEYS = ("TW_q160_msg_s", "ES_q160_msg_s")
GATE_MULTIPLE = 5.0


def hot_path_config(backend: str) -> DetectorConfig:
    return DetectorConfig(
        quantum_size=QUANTUM,
        window_quanta=WINDOW,
        high_state_threshold=THETA,
        ec_threshold=0.2,
        node_grace_quanta=2,
        backend=backend,
    )


def report_fingerprint(reports) -> list:
    """Everything consumer-visible per report, canonically ordered."""
    out = []
    for r in reports:
        stats = r.akg_stats
        out.append(
            (
                r.quantum,
                sorted(
                    (e.event_id, tuple(sorted(e.keywords)), e.rank, e.support)
                    for e in r.reported
                ),
                sorted(r.new_event_ids),
                sorted(r.dead_event_ids),
                r.changes,
                None
                if stats is None
                else (
                    stats.bursty_keywords,
                    stats.nodes_added,
                    stats.edges_added,
                    stats.candidate_pairs,
                    stats.ec_computations,
                    stats.akg_nodes,
                    stats.akg_edges,
                ),
            )
        )
    return out


def run_backend(
    messages, backend: str, rounds: int = ROUNDS
) -> Tuple[float, list]:
    """Best-of-``rounds`` msg/s plus the (round-invariant) fingerprint."""
    best = 0.0
    fingerprint = None
    for _ in range(rounds):
        session = open_session(hot_path_config(backend))
        start = time.perf_counter()
        reports = list(session.ingest_many(iter(messages)))
        wall = time.perf_counter() - start
        fp = report_fingerprint(reports)
        session.close()
        if fingerprint is None:
            fingerprint = fp
        else:
            assert fp == fingerprint, f"{backend} reports varied across rounds"
        best = max(best, len(messages) / wall)
    return best, fingerprint


def committed_baseline_msg_s() -> float:
    with open(BASELINE_RESULT, encoding="utf-8") as fh:
        config = json.load(fh)["config"]
    return sum(config[key] for key in BASELINE_KEYS) / len(BASELINE_KEYS)


def bench_hot_path():
    total = smoke_scale(default=24_000, smoke=9_600)
    messages = build_tw_trace(
        total_messages=total, n_events=12, seed=7
    ).messages
    baseline = committed_baseline_msg_s()

    ref_rate, ref_fp = run_backend(messages, "reference")
    bat_rate, bat_fp = run_backend(messages, "batched")
    arrays.FORCE_PURE = True
    try:
        pure_rate, pure_fp = run_backend(messages, "batched", rounds=1)
    finally:
        arrays.FORCE_PURE = False

    assert bat_fp == ref_fp, (
        "batched backend reports diverged from the reference backend"
    )
    assert pure_fp == ref_fp, (
        "pure-python batched engine reports diverged from the reference "
        "backend"
    )

    rows: List[List[object]] = [
        ["reference", round(ref_rate), f"{ref_rate / baseline:.2f}x"],
        ["batched", round(bat_rate), f"{bat_rate / baseline:.2f}x"],
        ["batched (pure python)", round(pure_rate),
         f"{pure_rate / baseline:.2f}x"],
    ]
    table = render_table(
        ["backend", "msg/s", "vs committed table-4 baseline"],
        rows,
        title=(
            f"Batched hot path — {len(messages)} pre-tokenized TW messages, "
            f"q={QUANTUM}, w={WINDOW}, theta={THETA} (all reports "
            f"bit-identical; baseline {baseline:.0f} msg/s)"
        ),
    )
    try:
        from conftest import emit
    except ImportError:  # standalone run
        print(table)
    else:
        emit("hot_path", table)

    write_json_result(
        "hot_path",
        config={
            "quantum_size": QUANTUM,
            "window_quanta": WINDOW,
            "high_state_threshold": THETA,
            "messages": len(messages),
            "msg_s_reference": round(ref_rate),
            "msg_s_batched": round(bat_rate),
            "msg_s_batched_pure": round(pure_rate),
            "table4_baseline_msg_s": round(baseline),
            "gate_multiple": GATE_MULTIPLE,
            "batched_vs_baseline": round(bat_rate / baseline, 4),
        },
        wall_s=len(messages) / bat_rate,
        speedup=bat_rate / ref_rate,
        quanta=len(messages) // QUANTUM,
    )
    assert bat_rate >= GATE_MULTIPLE * baseline, (
        f"batched backend sustained {bat_rate:.0f} msg/s, below the "
        f"{GATE_MULTIPLE}x gate over the committed table-4 baseline "
        f"({baseline:.0f} msg/s -> gate {GATE_MULTIPLE * baseline:.0f})"
    )
    assert bat_rate > ref_rate, (
        f"batched backend ({bat_rate:.0f} msg/s) must not be slower than "
        f"reference ({ref_rate:.0f} msg/s) on the same configuration"
    )


if __name__ == "__main__":
    bench_hot_path()
