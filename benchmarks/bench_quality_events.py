"""Section 7.2.4 — quality of discovered events across the parameter grid.

Paper shape: average cluster size is stable (6.16–6.88 keywords/event)
except at gamma = 0.1 where it inflates ~50% (9.23 TW / 9.88 ES); average
rank falls 20–30% from its peak as parameters are relaxed, because the extra
events found are mostly low-rank.
"""

import time

from _results import write_json_result
from _sweeps import GAMMAS, QUANTA, render_metric, run_sweep
from conftest import emit
from repro.eval.reporting import render_table


def bench_quality_events(benchmark, tw_trace, es_trace):
    def both():
        return run_sweep(tw_trace), run_sweep(es_trace)

    started = time.perf_counter()
    tw_sweep, es_sweep = benchmark.pedantic(both, rounds=1, iterations=1)
    wall_s = time.perf_counter() - started

    sections = []
    for name, sweep in (("TW", tw_sweep), ("ES", es_sweep)):
        sections.append(
            render_metric(
                sweep,
                "avg_cluster_size",
                f"Avg cluster size, {name} trace (paper: ~6.2-6.9; ~+50% at gamma=0.1)",
            )
        )
        sections.append(
            render_metric(
                sweep,
                "avg_rank",
                f"Avg cluster rank, {name} trace (paper: falls 20-30% when relaxed)",
            )
        )

    size_rows = []
    for name, sweep in (("TW", tw_sweep), ("ES", es_sweep)):
        tight = sweep[(0.25, 160)].quality.avg_cluster_size
        loose = sweep[(0.10, 160)].quality.avg_cluster_size
        size_rows.append(
            [name, round(tight, 2), round(loose, 2),
             round(100 * (loose / tight - 1), 1) if tight else 0.0]
        )
    sections.append(
        render_table(
            ["trace", "size@gamma=.25", "size@gamma=.10", "inflation %"],
            size_rows,
            title="Cluster-size inflation at the loosest EC threshold",
        )
    )
    emit("quality_events_7_2_4", "\n\n".join(sections))
    write_json_result(
        "quality_events_7_2_4",
        config={
            "size_inflation_pct": {row[0]: row[3] for row in size_rows},
            "gammas": GAMMAS,
            "quantum_sizes": QUANTA,
        },
        wall_s=wall_s,
        speedup=None,
        quanta=(len(tw_trace.messages) + len(es_trace.messages)) // 160,
    )

    # shape: clusters are bigger at the loosest gamma than the tightest
    for sweep in (tw_sweep, es_sweep):
        loose = sweep[(0.10, 240)].quality.avg_cluster_size
        tight = sweep[(0.25, 120)].quality.avg_cluster_size
        assert loose >= tight
    # absolute band: focused clusters of a few keywords, not giant blobs
    for sweep in (tw_sweep, es_sweep):
        for summary in sweep.values():
            if summary.quality.n_events:
                assert 2.0 <= summary.quality.avg_cluster_size <= 14.0
