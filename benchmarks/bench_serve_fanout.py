"""Serving-layer fan-out and overhead: the PR 8 tentpole gate.

Two phases over churny synthetic streams (every quantum reshuffles cluster
ranks, so lifecycle events keep flowing):

* **fan-out phase** — 2 tenants x 100 WebSocket subscribers each in one
  ``repro.serve`` process, all 200 draining concurrently while both
  tenants ingest.  Asserted (the ISSUE acceptance): zero event loss for
  keep-up consumers — every subscriber receives its tenant's library-run
  note sequence exactly, in order, and the hub counts zero drops.
  Delivery throughput is reported in ``config``.
* **overhead phase** — one tenant, no subscribers, a longer stream.  The
  headline ``speedup`` is the *serving efficiency*: in-executor detection
  seconds (``/stats`` throughput) divided by end-to-end serve wall from
  first ingest POST to idle.  Both sides come from the same run, so
  machine noise cancels; the ratio drops — and ``check_regression.py``
  fires — exactly when the front door, wire codec, queueing, or executor
  plumbing get slower relative to the detection work they carry.

Run standalone:  PYTHONPATH=src python benchmarks/bench_serve_fanout.py
"""

from __future__ import annotations

import os
import random
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _results import smoke_scale, write_json_result  # noqa: E402

from repro.api import QueueSink, open_session  # noqa: E402
from repro.config import DetectorConfig  # noqa: E402
from repro.serve import ServeClient, ServerThread  # noqa: E402
from repro.stream.messages import Message  # noqa: E402

TENANTS = 2
SUBSCRIBERS = 100  # per tenant — the ISSUE's scale point
FANOUT_MESSAGES = smoke_scale(9600, 4800)
OVERHEAD_MESSAGES = smoke_scale(48_000, 24_000)
SEED = 61

# The efficiency floor asserted in-bench (the committed baseline re-gates
# the measured value at 25% tolerance; this absolute floor also holds on
# boxes where the ratio gate is skipped).
EFFICIENCY_FLOOR = 0.20

CONFIG = dict(
    quantum_size=24,
    window_quanta=5,
    high_state_threshold=2,
    ec_threshold=0.1,
    use_minhash_filter=False,
)


def churny_stream(seed: int, n: int):
    """Bursty keyword traffic over a small vocabulary: clusters form,
    reshuffle and dissolve every few quanta, so events keep flowing."""
    rng = random.Random(seed)
    keywords = [f"k{i}" for i in range(6)]
    return [
        Message(
            f"u{rng.randrange(20)}",
            tokens=tuple(rng.sample(keywords, rng.randint(2, 4))),
        )
        for _ in range(n)
    ]


def note(event_or_record) -> list:
    """One comparable shape for both legs (library event / wire record)."""
    if isinstance(event_or_record, dict):
        r = event_or_record
        return [r["kind"], r["quantum"], r["event_id"], r["keywords"],
                r["rank"], r["size"]]
    e = event_or_record
    return [e.kind.value, e.quantum, e.event_id, sorted(e.keywords),
            e.rank, e.size]


def library_notes(messages):
    """The delivery oracle: the library run's note sequence."""
    session = open_session(DetectorConfig(**CONFIG))
    inbox = QueueSink()
    session.subscribe(inbox)
    for _ in session.ingest_many(list(messages)):
        pass
    notes = [note(e) for e in inbox.drain()]
    session.close()
    return notes


def fanout_phase():
    """2 tenants x 100 subscribers: full delivery, zero loss, in order."""
    streams = {
        f"tenant-{i}": churny_stream(SEED + i, FANOUT_MESSAGES)
        for i in range(TENANTS)
    }
    expected = {name: library_notes(msgs) for name, msgs in streams.items()}

    server = ServerThread(workers=2)
    server.start()
    try:
        client = ServeClient(port=server.port)
        sockets = {}
        for name in streams:
            client.create_tenant(name, CONFIG)
            sockets[name] = [
                client.subscribe(name) for _ in range(SUBSCRIBERS)
            ]
        received = {name: [None] * SUBSCRIBERS for name in streams}

        def drain(name, idx, ws, count):
            got = []
            ws.sock.settimeout(120.0)
            while len(got) < count:
                record = ws.recv_json()
                if record is None:
                    break
                got.append(note(record))
            received[name][idx] = got

        threads = [
            threading.Thread(
                target=drain,
                args=(name, idx, ws, len(expected[name])),
                daemon=True,
            )
            for name, subs in sockets.items()
            for idx, ws in enumerate(subs)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        # Interleave the tenants' ingest so they genuinely contend for the
        # shared worker budget.
        chunk = 1200
        for lo in range(0, FANOUT_MESSAGES, chunk):
            for name, messages in streams.items():
                client.ingest(name, messages[lo:lo + chunk])
        for name in streams:
            client.ingest(name, [], wait=True)
        for thread in threads:
            thread.join(timeout=300)
            assert not thread.is_alive(), "a subscriber never finished"
        wall = time.perf_counter() - started

        mismatches = []
        drop_counts = {}
        for name in streams:
            drop_counts[name] = (
                client.stats(name)["fanout"]["total_dropped"]
            )
            for idx, got in enumerate(received[name]):
                if got != expected[name]:
                    mismatches.append(
                        (name, idx, len(got or []), len(expected[name]))
                    )
        for subs in sockets.values():
            for ws in subs:
                ws.close()
    finally:
        server.stop(graceful=True)

    events_total = sum(len(v) for v in expected.values())
    delivered = events_total * SUBSCRIBERS
    assert not mismatches, (
        f"{len(mismatches)} subscriber(s) diverged from the library "
        f"sequence: {mismatches[:5]}"
    )
    assert sum(drop_counts.values()) == 0, (
        f"keep-up consumers must lose nothing, counted {drop_counts}"
    )
    return {
        "wall_s": wall,
        "events_total": events_total,
        "deliveries": delivered,
        "deliveries_per_s": delivered / wall,
    }


def overhead_phase():
    """One tenant, no subscribers: serving efficiency, same-run ratio."""
    messages = churny_stream(SEED, OVERHEAD_MESSAGES)
    server = ServerThread(workers=2)
    server.start()
    try:
        client = ServeClient(port=server.port)
        client.create_tenant("solo", CONFIG)
        started = time.perf_counter()
        chunk = 6000
        for lo in range(0, OVERHEAD_MESSAGES, chunk):
            client.ingest("solo", messages[lo:lo + chunk])
        client.ingest("solo", [], wait=True)
        wall = time.perf_counter() - started
        stats = client.stats("solo")
    finally:
        server.stop(graceful=True)
    detect_s = stats["messages"] / stats["throughput"]
    return {
        "wall_s": wall,
        "detect_s": detect_s,
        "efficiency": detect_s / wall,
        "quanta": stats["quantum"] + 1,
    }


def main() -> int:
    fanout = fanout_phase()
    overhead = overhead_phase()
    efficiency = overhead["efficiency"]

    print(f"serve fan-out bench  ({TENANTS} tenants x {SUBSCRIBERS} "
          f"subscribers, {FANOUT_MESSAGES} msgs/tenant, quantum "
          f"{CONFIG['quantum_size']})")
    print(f"  fan-out delivery       {fanout['wall_s']:8.2f} s for "
          f"{fanout['deliveries']:,} deliveries "
          f"({fanout['deliveries_per_s']:,.0f}/s to "
          f"{TENANTS * SUBSCRIBERS} sockets)")
    print(f"  delivery parity        OK (every subscriber == library "
          f"sequence, zero drops)")
    print(f"  overhead run           {overhead['wall_s']:8.2f} s wall for "
          f"{overhead['detect_s']:.2f} s of detection "
          f"({OVERHEAD_MESSAGES} msgs, no subscribers)")
    print(f"  serving efficiency     {efficiency:8.2f} "
          f"(detection seconds / serve wall; floor "
          f"{EFFICIENCY_FLOOR:.2f})")

    assert efficiency >= EFFICIENCY_FLOOR, (
        f"serving efficiency {efficiency:.2f} fell below the absolute "
        f"floor {EFFICIENCY_FLOOR:.2f}: the front door is eating the "
        f"detector's lunch"
    )

    write_json_result(
        "serve_fanout",
        config={
            "tenants": TENANTS,
            "subscribers": SUBSCRIBERS,
            "fanout_messages_per_tenant": FANOUT_MESSAGES,
            "overhead_messages": OVERHEAD_MESSAGES,
            "quantum_size": CONFIG["quantum_size"],
            "seed": SEED,
            "events_total": fanout["events_total"],
            "deliveries": fanout["deliveries"],
            "deliveries_per_s": round(fanout["deliveries_per_s"], 1),
            "fanout_wall_s": round(fanout["wall_s"], 4),
            "detect_s": round(overhead["detect_s"], 4),
            "cores": os.cpu_count(),
            "smoke": bool(os.environ.get("PERF_SMOKE")),
        },
        wall_s=overhead["wall_s"],
        speedup=efficiency,
        quanta=overhead["quanta"],
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
