"""Figure 10 — precision vs quantum size for each EC threshold, ES trace.

Paper shape: like Figure 9 on the event-dense trace; precision remains high
across the whole grid because the spurious population is roughly constant.
"""

import time

from _sweeps import (
    assert_precision_band,
    render_metric,
    run_sweep,
    write_sweep_json,
)
from conftest import emit


def bench_fig10_precision_es(benchmark, es_trace):
    started = time.perf_counter()
    sweep = benchmark.pedantic(run_sweep, args=(es_trace,), rounds=1, iterations=1)
    emit(
        "fig10_precision_es",
        render_metric(
            sweep, "precision", "Figure 10 — Precision for Event Specific Trace"
        ),
    )
    write_sweep_json(
        "fig10_precision_es", sweep, es_trace, "precision",
        time.perf_counter() - started,
    )
    assert_precision_band(sweep, floor=0.55)
