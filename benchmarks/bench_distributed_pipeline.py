"""Pipelined maintenance overlap + socket shard transport throughput.

Two questions about the cluster-scale front-end (DESIGN.md Section 12):

1. **Overlap** — with ``overlap=True`` the serial tail of quantum *q*
   (exchange-merge, maintain, propagate, rank, report) runs on a
   background thread while quantum *q+1*'s scatter+extract is already in
   flight.  Measured at 4 local workers on a *tail-heavy* raw-text
   stream — hundreds of live clusters re-bursting every quantum, so
   maintenance and ranking have real weight: how much of the
   maintain+propagate+rank+report tail does the pipeline actually hide
   (``overlap_saved`` / tail wall; the saving can exceed the tail sum
   because the background thread also carries the exchange-merge), and
   what does that do to end-to-end wall time?
2. **Remote transport** — the same session against two ``repro
   shard-worker`` daemons over loopback TCP: end-to-end throughput with
   every window operation crossing a socket, reports asserted
   bit-identical to the local run.

Gates:

* every mode's reports are bit-identical to overlap-off (always);
* the overlap must hide >= ``HIDE_GATE`` (50%) of the
  maintain+propagate+rank+report tail at 4 workers — asserted when the
  host has >= 4 usable cores; below that the JSON records
  ``speedup: null`` (the documented skip, as in ``bench_parallel_akg``).

Run standalone:  PYTHONPATH=src python benchmarks/bench_distributed_pipeline.py
"""

from __future__ import annotations

import random
import sys
import threading
import time
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).parent))

from _results import smoke_scale, write_json_result  # noqa: E402
from bench_parallel_akg import report_fingerprint, usable_cores  # noqa: E402

from repro.api import open_session  # noqa: E402
from repro.config import DetectorConfig  # noqa: E402
from repro.eval.reporting import render_table  # noqa: E402
from repro.parallel import ShardWorkerServer  # noqa: E402
from repro.stream.messages import Message  # noqa: E402

QUANTUM = 1800
WORKERS = 4
REMOTE_WORKERS = 2
REPEATS = 3
HIDE_GATE = 0.50
SPEEDUP_CORES_REQUIRED = 4

# Tail-heavy regime: N_GROUPS clusters stay alive the whole stream and
# every one of them re-bursts each quantum with a rotating user cohort,
# so every cluster is dirty every quantum — maintenance, ranking, and
# report-index work all scale with the live-event count.
N_GROUPS = 300
GROUP_SIZE = 6
COHORT = 5
FILLER_VOCAB = 1500

CONFIG = DetectorConfig(
    quantum_size=QUANTUM,
    window_quanta=6,
    high_state_threshold=4,
    ec_threshold=0.15,
    node_grace_quanta=1,
    require_noun=False,
)

FILLER = [f"w{i:04d}" for i in range(FILLER_VOCAB)]

TAIL_STAGES = ("maintain", "propagate", "rank", "report")


def build_stream(n_quanta: int, seed: int = 29) -> List[Message]:
    rng = random.Random(seed)
    messages: List[Message] = []
    for quantum in range(n_quanta):
        batch: List[Message] = []
        for group in range(N_GROUPS):
            words = " ".join(f"g{group}kw{k}" for k in range(GROUP_SIZE))
            base = group * 20 + (quantum % 4) * COHORT
            for user in range(COHORT):
                batch.append(
                    Message(
                        f"fan{base + user}",
                        text=f"{words} {rng.choice(FILLER)}",
                    )
                )
        while len(batch) < QUANTUM:
            batch.append(
                Message(
                    f"user{rng.randrange(5000)}",
                    text=" ".join(rng.sample(FILLER, 6)),
                )
            )
        rng.shuffle(batch)
        messages.extend(batch[:QUANTUM])
    return messages


def run_mode(stream, **session_kwargs):
    """Returns (total wall s, fingerprint, total timings dict)."""
    session = open_session(CONFIG, **session_kwargs)
    started = time.perf_counter()
    reports = list(session.ingest_many(stream))
    wall = time.perf_counter() - started
    timings = session.total_timings.as_dict()
    fingerprint = report_fingerprint(reports)
    session.close()
    return wall, fingerprint, timings


def run_remote(stream, reference_fingerprint):
    """The whole session against loopback TCP shard workers."""
    servers, threads = [], []
    try:
        for _ in range(REMOTE_WORKERS):
            server = ShardWorkerServer()
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            servers.append(server)
            threads.append(thread)
        endpoints = ",".join(server.endpoint for server in servers)
        wall, fingerprint, _ = run_mode(stream, workers=endpoints)
        assert fingerprint == reference_fingerprint, (
            "remote-transport reports diverged from the local session"
        )
        return wall
    finally:
        for server in servers:
            server.stop()
        for thread in threads:
            thread.join(timeout=10)


def main() -> int:
    n_quanta = smoke_scale(default=16, smoke=6)
    stream = build_stream(n_quanta)
    cores = usable_cores()

    run_mode(stream[: 2 * QUANTUM], workers=WORKERS)  # warm-up

    # Alternate the two gate-critical modes and keep each one's best run
    # (shared runners are noisy; minima compare like against like).
    best_off = best_on = None
    for _ in range(REPEATS):
        off = run_mode(stream, workers=WORKERS)
        if best_off is None or off[0] < best_off[0]:
            best_off = off
        on = run_mode(stream, workers=WORKERS, overlap=True)
        assert on[1] == off[1], (
            "overlap=True reports diverged from overlap=False"
        )
        if best_on is None or on[0] < best_on[0]:
            best_on = on
    wall_off, fingerprint, timings_off = best_off
    wall_on, _, timings_on = best_on

    tail_s = sum(timings_on[stage] for stage in TAIL_STAGES)
    saved_s = timings_on["overlap_saved"]
    # saved can exceed the maintain+propagate+rank+report sum (the tail
    # thread also carries the exchange-merge); cap the *fraction* at 1.0
    # so "how much of the tail was hidden" stays interpretable.
    hidden = min(1.0, saved_s / tail_s) if tail_s > 0 else 0.0
    wall_speedup = wall_off / wall_on

    remote_wall = run_remote(stream, fingerprint)
    remote_msgs = len(stream) / remote_wall

    table = render_table(
        ["mode", "wall s", "note"],
        [
            [f"W={WORKERS} overlap=off", f"{wall_off:.2f}", "-"],
            [
                f"W={WORKERS} overlap=on",
                f"{wall_on:.2f}",
                f"{wall_speedup:.2f}x wall, tail {100 * hidden:.0f}% hidden",
            ],
            [
                f"remote W={REMOTE_WORKERS} (loopback TCP)",
                f"{remote_wall:.2f}",
                f"{remote_msgs:,.0f} msg/s",
            ],
        ],
        title=(
            f"distributed pipeline, {n_quanta} quanta x {QUANTUM} raw-text "
            f"messages ({cores} usable cores) — all reports bit-identical"
        ),
    )
    print(table)
    print(f"  overlap hides          {saved_s:.2f}s of the {tail_s:.2f}s "
          f"maintain+propagate+rank+report tail "
          f"({100 * hidden:.0f}%, gate >= {100 * HIDE_GATE:.0f}% "
          f"on >= {SPEEDUP_CORES_REQUIRED} cores)")

    gated = cores >= SPEEDUP_CORES_REQUIRED
    write_json_result(
        "distributed_pipeline",
        config={
            "quanta": n_quanta,
            "quantum_size": QUANTUM,
            "workers": WORKERS,
            "cores": cores,
            "speedup_cores_required": SPEEDUP_CORES_REQUIRED,
            "wall_overlap_off_s": round(wall_off, 4),
            "wall_overlap_on_s": round(wall_on, 4),
            "tail_s": round(tail_s, 4),
            "overlap_saved_s": round(saved_s, 4),
            "tail_hidden_fraction": round(hidden, 4),
            "remote_workers": REMOTE_WORKERS,
            "remote_wall_s": round(remote_wall, 4),
            "remote_messages_per_s": round(remote_msgs, 1),
            "stage_timings_s": {
                "overlap_off": {
                    k: round(v, 4) for k, v in timings_off.items()
                },
                "overlap_on": {
                    k: round(v, 4) for k, v in timings_on.items()
                },
            },
        },
        wall_s=wall_on,
        speedup=wall_speedup if gated else None,
        quanta=n_quanta,
    )
    if gated:
        assert hidden >= HIDE_GATE, (
            f"overlap hides only {100 * hidden:.0f}% of the serial tail at "
            f"{WORKERS} workers (gate >= {100 * HIDE_GATE:.0f}%)"
        )
    else:
        print(
            f"-- overlap gate skipped: {cores} usable core(s) < "
            f"{SPEEDUP_CORES_REQUIRED} (measured {100 * hidden:.0f}% "
            f"hidden; enforced on multi-core CI)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
