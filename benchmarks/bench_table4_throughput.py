"""Table 4 / Section 7.4 — message processing rate per quantum size.

Paper (messages/second on a modest 2012 machine):

    trace  q=120   q=160   q=200
    TW     5185    4420    4160
    ES     1410    1400    1160

The paper's TW >> ES gap comes from cluster processing dominating their
runtime on the event-dense trace ("the system ends up processing many
clusters which are discarded later").  In this implementation the per-message
stream bookkeeping dominates and is identical for both traces, so at this
scale the end-to-end rates are close; the *clustering component* of the cost
does reproduce the direction (ES pays several times more cluster-maintenance
time than TW), which the bench asserts.  See EXPERIMENTS.md.
"""

import pytest

from repro.config import DetectorConfig
from repro.eval.reporting import render_table
from repro.eval.runner import run_detector

from _results import write_json_result
from conftest import emit

PAPER_RATES = {
    ("TW", 120): 5185, ("TW", 160): 4420, ("TW", 200): 4160,
    ("ES", 120): 1410, ("ES", 160): 1400, ("ES", 200): 1160,
}

_results = {}


@pytest.mark.parametrize("quantum", [120, 160, 200])
@pytest.mark.parametrize("trace_name", ["TW", "ES"])
def bench_table4_throughput(benchmark, trace_name, quantum, tw_trace, es_trace):
    trace = tw_trace if trace_name == "TW" else es_trace
    config = DetectorConfig(quantum_size=quantum)

    result = benchmark.pedantic(
        run_detector, args=(trace, config), rounds=1, iterations=1
    )
    _results[(trace_name, quantum)] = result

    if len(_results) == 6:
        rows = []
        for name in ("TW", "ES"):
            rows.append(
                [name]
                + [round(_results[(name, q)].throughput) for q in (120, 160, 200)]
                + [f"{PAPER_RATES[(name, 120)]}/{PAPER_RATES[(name, 160)]}/"
                   f"{PAPER_RATES[(name, 200)]}"]
            )
        cluster_rows = [
            [
                name,
                round(
                    1000 * _results[(name, 160)].clustering_seconds, 1
                ),
                round(
                    100
                    * _results[(name, 160)].clustering_seconds
                    / _results[(name, 160)].detector_seconds,
                    1,
                ),
            ]
            for name in ("TW", "ES")
        ]
        emit(
            "table4_throughput",
            render_table(
                ["trace", "q=120 msg/s", "q=160 msg/s", "q=200 msg/s", "paper"],
                rows,
                title="Table 4 — Message processing rate for given quantum sizes",
            )
            + "\n\n"
            + render_table(
                ["trace", "clustering ms (q=160)", "% of detector time"],
                cluster_rows,
                title="Cluster-maintenance share (the paper's TW-vs-ES cost driver)",
            ),
        )
        # At this scale stream-side bookkeeping dominates both traces and
        # the TW/ES rate gap is within noise (see EXPERIMENTS.md); the
        # bench asserts only that neither trace collapses.
        tw_rate = _results[("TW", 160)].throughput
        es_rate = _results[("ES", 160)].throughput
        write_json_result(
            "table4_throughput",
            config={
                f"{name}_q{q}_msg_s": round(_results[(name, q)].throughput)
                for name in ("TW", "ES")
                for q in (120, 160, 200)
            },
            wall_s=_results[("TW", 160)].detector_seconds,
            speedup=None,
            quanta=len(tw_trace.messages) // 160,
        )
        assert min(tw_rate, es_rate) > 0.3 * max(tw_rate, es_rate)

    # real-time headroom: the paper needs ~2300 msg/s (Twitter's 2012 rate)
    assert result.throughput > 2300
