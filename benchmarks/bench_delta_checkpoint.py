"""Delta checkpoints: bytes/quantum and latency vs full snapshots.

The PR 7 tentpole gate.  A TW-style trace runs through a session with the
incremental checkpoint enabled (compaction disabled so every quantum's
record is measured), and the same session is snapshotted monolithically at
the end.  Measured per steady-state quantum (a full window behind it):

* ``delta bytes/quantum``  — the framed edit-script record size;
* ``snapshot bytes``       — the full v3 checkpoint at end of stream;
* ``append latency``       — diff + frame + fsync per quantum
  (``DeltaCheckpointWriter.append_seconds``), against the wall cost of a
  monolithic ``snapshot()`` at the same position.

Gates (asserted here, ratio re-gated by ``check_regression.py``):

* mean steady-state delta <= ``GATE_RATIO`` (10%) of the full snapshot at
  the 20k-message window of the paper's Table 2 scale — the headline
  ``speedup`` is ``snapshot_bytes / mean_delta_bytes``, so the gate floor
  is ``1 / GATE_RATIO`` = 10x;
* replaying base+deltas reproduces the monolithic snapshot's state tree
  byte-for-byte (the v4 reader parity contract, DESIGN.md Section 10);
* huge-vocabulary append cost: the memoized diff profile (writer default
  since the socket-shard PR) must beat the exhaustive PR 7/8 profile by
  >= ``MEMOIZE_GATE`` on a wide mostly-unchanged state — the regime where
  the old profile paid a full-state serialization per quantum.

Run standalone:  PYTHONPATH=src python benchmarks/bench_delta_checkpoint.py
"""

from __future__ import annotations

import copy
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _results import smoke_scale, write_json_result  # noqa: E402

from repro.api import open_session  # noqa: E402
from repro.api.checkpoint import encode_state, load_checkpoint  # noqa: E402
from repro.api.deltalog import (  # noqa: E402
    DeltaCheckpointWriter,
    read_delta_checkpoint,
)
from repro.config import DetectorConfig  # noqa: E402
from repro.datasets.traces import build_tw_trace  # noqa: E402

# Table-2 scale: 20k-message windows (the ISSUE's gate point).  The smoke
# run shrinks the quantum, keeping the window at 40 quanta so the
# steady-state structure is the same shape.
QUANTUM = smoke_scale(500, 200)
WINDOW_QUANTA = 40
N_QUANTA = smoke_scale(60, 48)
SEED = 7
GATE_RATIO = 0.10

# Huge-vocabulary regime: a wide window index (tens of thousands of
# keywords) where ~1% changes per quantum.  The exhaustive diff profile
# pays O(state) per append here; the memoized one pays O(churn).
HUGE_VOCAB = smoke_scale(20_000, 4_000)
HUGE_CHURN = max(1, HUGE_VOCAB // 100)
HUGE_APPENDS = 5
MEMOIZE_GATE = 2.0


def _huge_vocab_states() -> list:
    """Deterministic state sequence shaped like a wide window index."""
    rng = random.Random(SEED)
    state = {
        "quantum": 0,
        "idsets": {
            f"kw{i:06d}": [
                [q, sorted(rng.sample(range(5000), rng.randint(3, 10)))]
                for q in range(3)
            ]
            for i in range(HUGE_VOCAB)
        },
        "clusters": [[i, f"kw{i:06d}", rng.random()] for i in range(500)],
    }
    states = [state]
    for q in range(1, HUGE_APPENDS + 1):
        state = copy.deepcopy(state)
        state["quantum"] = q
        for i in rng.sample(range(HUGE_VOCAB), HUGE_CHURN):
            entries = state["idsets"][f"kw{i:06d}"]
            entries.append([q + 2, sorted(rng.sample(range(5000), 6))])
            del entries[0]
        for j in rng.sample(range(500), 20):
            state["clusters"][j][2] = rng.random()
        states.append(state)
    return states


def bench_huge_vocab() -> dict:
    """Append the same state sequence through both diff profiles."""
    states = _huge_vocab_states()
    timing = {}
    for memoize in (False, True):
        with tempfile.TemporaryDirectory() as scratch:
            writer = DeltaCheckpointWriter(
                Path(scratch) / "ckpt", memoize=memoize
            )
            writer.start(states[0])
            for state in states[1:]:
                writer.append(state)
            writer.close()
            replayed = read_delta_checkpoint(Path(scratch) / "ckpt")
            assert replayed == states[-1], (
                f"huge-vocab replay diverged (memoize={memoize})"
            )
            timing[memoize] = (
                1000.0 * writer.append_seconds / writer.records_written
            )
    return {
        "vocabulary": HUGE_VOCAB,
        "churn_per_quantum": HUGE_CHURN,
        "appends": HUGE_APPENDS,
        "exhaustive_append_ms": round(timing[False], 2),
        "memoized_append_ms": round(timing[True], 2),
        "memoize_speedup": round(timing[False] / timing[True], 2),
    }


def main() -> int:
    config = DetectorConfig(
        quantum_size=QUANTUM,
        window_quanta=WINDOW_QUANTA,
        high_state_threshold=max(2, QUANTUM // 40),
        ec_threshold=0.2,
    )
    total = QUANTUM * N_QUANTA
    trace = build_tw_trace(total_messages=total, seed=SEED)
    tmp = Path("benchmarks") / "_delta_bench_scratch"
    delta_dir = tmp / "delta"
    mono_path = tmp / "mono.ckpt"
    tmp.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    # compaction disabled: every quantum's record stays on disk so the
    # steady-state byte sizes can be read back frame by frame
    session = open_session(
        config, delta_log=delta_dir, delta_compact_ratio=1e12
    )
    sizes = []
    writer = session.delta_writer
    logged_before = writer.log_bytes
    for report in session.ingest_many(trace.messages):
        sizes.append(writer.log_bytes - logged_before)
        logged_before = writer.log_bytes
    snap_started = time.perf_counter()
    session.snapshot(mono_path)
    snapshot_seconds = time.perf_counter() - snap_started
    session.close()
    wall_s = time.perf_counter() - started

    snapshot_bytes = mono_path.stat().st_size
    steady = sizes[WINDOW_QUANTA:]
    assert steady, "stream too short: no steady-state quanta measured"
    mean_delta = sum(steady) / len(steady)
    ratio = mean_delta / snapshot_bytes
    speedup = snapshot_bytes / mean_delta
    append_ms = 1000.0 * writer.append_seconds / max(writer.records_written, 1)

    print(f"delta checkpoint bench  (quantum={QUANTUM}, "
          f"window={WINDOW_QUANTA} quanta = {QUANTUM * WINDOW_QUANTA} msgs)")
    print(f"  full snapshot          {snapshot_bytes:>12,} bytes, "
          f"{snapshot_seconds * 1000:.1f} ms")
    print(f"  steady-state delta     {mean_delta:>12,.0f} bytes/quantum "
          f"(max {max(steady):,}, min {min(steady):,})")
    print(f"  size ratio             {100.0 * ratio:.2f}% of a full "
          f"snapshot (gate <= {100.0 * GATE_RATIO:.0f}%)")
    print(f"  append latency         {append_ms:.2f} ms/quantum "
          f"(diff + frame + fsync)")
    print(f"  snapshot-vs-delta      {snapshot_seconds * 1000 / max(append_ms, 1e-9):.1f}x "
          f"slower to snapshot monolithically")

    # parity: replaying base+deltas equals the monolithic snapshot exactly
    canon = lambda t: json.dumps(
        encode_state(t), sort_keys=True, separators=(",", ":")
    )
    assert canon(load_checkpoint(delta_dir)) == canon(
        load_checkpoint(mono_path)
    ), "replayed delta checkpoint diverged from the monolithic snapshot"
    print("  replay parity          OK (base+deltas == monolithic, bytes)")

    assert ratio <= GATE_RATIO, (
        f"steady-state delta is {100.0 * ratio:.2f}% of a full snapshot, "
        f"above the {100.0 * GATE_RATIO:.0f}% gate"
    )

    huge = bench_huge_vocab()
    print(f"huge-vocabulary append  (vocab={huge['vocabulary']:,}, "
          f"churn={huge['churn_per_quantum']:,}/quantum)")
    print(f"  exhaustive profile     {huge['exhaustive_append_ms']:.1f} "
          f"ms/append (the PR 7/8 writer)")
    print(f"  memoized profile       {huge['memoized_append_ms']:.1f} "
          f"ms/append")
    print(f"  memoize speedup        {huge['memoize_speedup']:.1f}x "
          f"(gate >= {MEMOIZE_GATE:.0f}x)")
    assert huge["memoize_speedup"] >= MEMOIZE_GATE, (
        f"memoized append is only {huge['memoize_speedup']:.2f}x faster "
        f"than the exhaustive profile on the huge-vocabulary regime, "
        f"below the {MEMOIZE_GATE:.0f}x gate"
    )

    write_json_result(
        "delta_checkpoint",
        config={
            "huge_vocab": huge,
            "quantum_size": QUANTUM,
            "window_quanta": WINDOW_QUANTA,
            "window_messages": QUANTUM * WINDOW_QUANTA,
            "n_quanta": N_QUANTA,
            "seed": SEED,
            "snapshot_bytes": snapshot_bytes,
            "mean_delta_bytes": round(mean_delta, 1),
            "max_delta_bytes": max(steady),
            "delta_ratio": round(ratio, 5),
            "append_ms_per_quantum": round(append_ms, 3),
            "snapshot_ms": round(snapshot_seconds * 1000, 2),
            "records_written": writer.records_written,
            "smoke": bool(os.environ.get("PERF_SMOKE")),
        },
        wall_s=wall_s,
        speedup=speedup,
        quanta=N_QUANTA,
    )

    # scratch cleanup: the results JSON is the artifact, not the log
    for p in sorted(tmp.rglob("*"), reverse=True):
        p.unlink() if p.is_file() else p.rmdir()
    tmp.rmdir() if tmp.exists() else None
    return 0


if __name__ == "__main__":
    sys.exit(main())
