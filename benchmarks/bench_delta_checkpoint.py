"""Delta checkpoints: bytes/quantum and latency vs full snapshots.

The PR 7 tentpole gate.  A TW-style trace runs through a session with the
incremental checkpoint enabled (compaction disabled so every quantum's
record is measured), and the same session is snapshotted monolithically at
the end.  Measured per steady-state quantum (a full window behind it):

* ``delta bytes/quantum``  — the framed edit-script record size;
* ``snapshot bytes``       — the full v3 checkpoint at end of stream;
* ``append latency``       — diff + frame + fsync per quantum
  (``DeltaCheckpointWriter.append_seconds``), against the wall cost of a
  monolithic ``snapshot()`` at the same position.

Gates (asserted here, ratio re-gated by ``check_regression.py``):

* mean steady-state delta <= ``GATE_RATIO`` (10%) of the full snapshot at
  the 20k-message window of the paper's Table 2 scale — the headline
  ``speedup`` is ``snapshot_bytes / mean_delta_bytes``, so the gate floor
  is ``1 / GATE_RATIO`` = 10x;
* replaying base+deltas reproduces the monolithic snapshot's state tree
  byte-for-byte (the v4 reader parity contract, DESIGN.md Section 10).

Run standalone:  PYTHONPATH=src python benchmarks/bench_delta_checkpoint.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from _results import smoke_scale, write_json_result  # noqa: E402

from repro.api import open_session  # noqa: E402
from repro.api.checkpoint import encode_state, load_checkpoint  # noqa: E402
from repro.config import DetectorConfig  # noqa: E402
from repro.datasets.traces import build_tw_trace  # noqa: E402

# Table-2 scale: 20k-message windows (the ISSUE's gate point).  The smoke
# run shrinks the quantum, keeping the window at 40 quanta so the
# steady-state structure is the same shape.
QUANTUM = smoke_scale(500, 200)
WINDOW_QUANTA = 40
N_QUANTA = smoke_scale(60, 48)
SEED = 7
GATE_RATIO = 0.10


def main() -> int:
    config = DetectorConfig(
        quantum_size=QUANTUM,
        window_quanta=WINDOW_QUANTA,
        high_state_threshold=max(2, QUANTUM // 40),
        ec_threshold=0.2,
    )
    total = QUANTUM * N_QUANTA
    trace = build_tw_trace(total_messages=total, seed=SEED)
    tmp = Path("benchmarks") / "_delta_bench_scratch"
    delta_dir = tmp / "delta"
    mono_path = tmp / "mono.ckpt"
    tmp.mkdir(parents=True, exist_ok=True)

    started = time.perf_counter()
    # compaction disabled: every quantum's record stays on disk so the
    # steady-state byte sizes can be read back frame by frame
    session = open_session(
        config, delta_log=delta_dir, delta_compact_ratio=1e12
    )
    sizes = []
    writer = session.delta_writer
    logged_before = writer.log_bytes
    for report in session.ingest_many(trace.messages):
        sizes.append(writer.log_bytes - logged_before)
        logged_before = writer.log_bytes
    snap_started = time.perf_counter()
    session.snapshot(mono_path)
    snapshot_seconds = time.perf_counter() - snap_started
    session.close()
    wall_s = time.perf_counter() - started

    snapshot_bytes = mono_path.stat().st_size
    steady = sizes[WINDOW_QUANTA:]
    assert steady, "stream too short: no steady-state quanta measured"
    mean_delta = sum(steady) / len(steady)
    ratio = mean_delta / snapshot_bytes
    speedup = snapshot_bytes / mean_delta
    append_ms = 1000.0 * writer.append_seconds / max(writer.records_written, 1)

    print(f"delta checkpoint bench  (quantum={QUANTUM}, "
          f"window={WINDOW_QUANTA} quanta = {QUANTUM * WINDOW_QUANTA} msgs)")
    print(f"  full snapshot          {snapshot_bytes:>12,} bytes, "
          f"{snapshot_seconds * 1000:.1f} ms")
    print(f"  steady-state delta     {mean_delta:>12,.0f} bytes/quantum "
          f"(max {max(steady):,}, min {min(steady):,})")
    print(f"  size ratio             {100.0 * ratio:.2f}% of a full "
          f"snapshot (gate <= {100.0 * GATE_RATIO:.0f}%)")
    print(f"  append latency         {append_ms:.2f} ms/quantum "
          f"(diff + frame + fsync)")
    print(f"  snapshot-vs-delta      {snapshot_seconds * 1000 / max(append_ms, 1e-9):.1f}x "
          f"slower to snapshot monolithically")

    # parity: replaying base+deltas equals the monolithic snapshot exactly
    canon = lambda t: json.dumps(
        encode_state(t), sort_keys=True, separators=(",", ":")
    )
    assert canon(load_checkpoint(delta_dir)) == canon(
        load_checkpoint(mono_path)
    ), "replayed delta checkpoint diverged from the monolithic snapshot"
    print("  replay parity          OK (base+deltas == monolithic, bytes)")

    assert ratio <= GATE_RATIO, (
        f"steady-state delta is {100.0 * ratio:.2f}% of a full snapshot, "
        f"above the {100.0 * GATE_RATIO:.0f}% gate"
    )

    write_json_result(
        "delta_checkpoint",
        config={
            "quantum_size": QUANTUM,
            "window_quanta": WINDOW_QUANTA,
            "window_messages": QUANTUM * WINDOW_QUANTA,
            "n_quanta": N_QUANTA,
            "seed": SEED,
            "snapshot_bytes": snapshot_bytes,
            "mean_delta_bytes": round(mean_delta, 1),
            "max_delta_bytes": max(steady),
            "delta_ratio": round(ratio, 5),
            "append_ms_per_quantum": round(append_ms, 3),
            "snapshot_ms": round(snapshot_seconds * 1000, 2),
            "records_written": writer.records_written,
            "smoke": bool(os.environ.get("PERF_SMOKE")),
        },
        wall_s=wall_s,
        speedup=speedup,
        quanta=N_QUANTA,
    )

    # scratch cleanup: the results JSON is the artifact, not the log
    for p in sorted(tmp.rglob("*"), reverse=True):
        p.unlink() if p.is_file() else p.rmdir()
    tmp.rmdir() if tmp.exists() else None
    return 0


if __name__ == "__main__":
    sys.exit(main())
