"""Machine-readable benchmark results: one JSON file per bench.

Every ``bench_*.py`` writes ``benchmarks/results/<bench>.json`` with the
fixed schema::

    {
      "bench":   "<name>",           # bench identifier
      "config":  {...},              # workload knobs + environment facts
      "wall_s":  <float>,            # primary wall-clock cost, seconds
      "speedup": <float | null>,     # primary ratio metric, null if n/a
      "quanta":  <int>               # stream quanta the measurement covered
    }

The files are committed, so the perf trajectory is tracked PR over PR, and
``check_regression.py`` gates CI on the ``speedup`` ratios — ratios, not
wall seconds, because ratios transfer across machines while absolute
timings do not.  Extra measurements go inside ``config`` (the schema's
fixed keys stay comparable forever).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

RESULTS_DIR = Path(__file__).parent / "results"


def write_json_result(
    bench: str,
    config: Dict[str, Any],
    wall_s: float,
    speedup: Optional[float],
    quanta: int,
) -> Path:
    """Write one bench's result JSON (schema above); returns the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{bench}.json"
    document = {
        "bench": bench,
        "config": dict(config),
        "wall_s": round(float(wall_s), 6),
        "speedup": None if speedup is None else round(float(speedup), 4),
        "quanta": int(quanta),
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path


def smoke_scale(default: int, smoke: int) -> int:
    """Workload size helper: the CI perf-smoke job sets ``PERF_SMOKE=1`` to
    run a reduced stream; local/full runs use the default."""
    return smoke if os.environ.get("PERF_SMOKE") else default


__all__ = ["RESULTS_DIR", "smoke_scale", "write_json_result"]
