"""Ablation — local incremental maintenance vs global recomputation.

The paper's central systems claim: SCP clusters are maintainable with local
processing only, so per-update cost stays flat as the graph grows, while any
snapshot method pays the whole graph on every step.  This bench replays the
same random edit script through (a) the incremental ClusterMaintainer and
(b) a from-scratch `decompose_graph` after every step, across growing graph
sizes, and reports the widening gap.
"""

import random
import time

from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.eval.reporting import render_table
from repro.graph.dynamic_graph import DynamicGraph

from _results import write_json_result
from conftest import emit


def edit_script(n_nodes, n_steps, seed):
    """A reproducible mixed add/remove edge script on n_nodes nodes."""
    rng = random.Random(seed)
    present = set()
    script = []
    for _ in range(n_steps):
        u, v = rng.sample(range(n_nodes), 2)
        key = (min(u, v), max(u, v))
        if key in present and rng.random() < 0.35:
            script.append(("remove", *key))
            present.discard(key)
        elif key not in present:
            script.append(("add", *key))
            present.add(key)
    return script


def replay_incremental(n_nodes, script):
    maintainer = ClusterMaintainer()
    for node in range(n_nodes):
        maintainer.graph.ensure_node(node)
    start = time.perf_counter()
    for op, u, v in script:
        if op == "add":
            maintainer.add_edge(u, v)
        else:
            maintainer.remove_edge(u, v)
    return time.perf_counter() - start, maintainer.registry.decomposition()


def replay_global(n_nodes, script):
    graph = DynamicGraph()
    for node in range(n_nodes):
        graph.ensure_node(node)
    start = time.perf_counter()
    decomposition = None
    for op, u, v in script:
        if op == "add":
            graph.add_edge(u, v)
        else:
            graph.remove_edge(u, v)
        decomposition = decompose_graph(graph)
    elapsed = time.perf_counter() - start
    return elapsed, {frozenset(edges) for _, edges in decomposition}


def bench_ablation_local_vs_global(benchmark):
    sizes = [40, 80, 160, 320]
    steps = 400

    def run():
        rows = []
        for n in sizes:
            script = edit_script(n, steps, seed=n)
            t_inc, clusters_inc = replay_incremental(n, script)
            t_glob, clusters_glob = replay_global(n, script)
            assert clusters_inc == clusters_glob  # Theorem 3, again
            rows.append(
                [n, len(script), round(1000 * t_inc, 1),
                 round(1000 * t_glob, 1), round(t_glob / t_inc, 1)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_local_vs_global",
        render_table(
            ["nodes", "edits", "incremental ms", "global ms", "speedup x"],
            rows,
            title="Ablation — local SCP maintenance vs per-step global recompute",
        ),
    )
    write_json_result(
        "ablation_local_vs_global",
        config={
            "sizes": sizes,
            "steps": steps,
            "speedup_by_size": {str(row[0]): row[4] for row in rows},
        },
        wall_s=sum(row[2] for row in rows) / 1000.0,
        speedup=rows[-1][4],
        quanta=steps,
    )
    # the gap must widen with graph size (the point of local processing)
    speedups = [row[4] for row in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 5.0
