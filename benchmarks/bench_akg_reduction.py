"""Section 7.4 — impact of using the AKG instead of the full CKG.

Paper: AKG edges < 2% of CKG edges; < 5% of CKG nodes show burstiness;
average AKG degree < 6; average cluster < 7 nodes.  This bench runs the
detector with full-CKG tracking enabled and regenerates those ratios.
"""

import time
from statistics import mean

from _results import write_json_result

from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.datasets.traces import build_tw_trace
from repro.eval.reporting import render_table
from repro.text.pos import NounTagger

from conftest import emit


def bench_akg_reduction(benchmark):
    # dedicated smaller trace: CKG pair tracking is exactly the cost the
    # AKG avoids, so the measurement run is scaled down
    trace = build_tw_trace(total_messages=12_000, n_events=8, seed=7)
    config = DetectorConfig(track_ckg_stats=True)

    def run():
        detector = EventDetector(config, noun_tagger=NounTagger(trace.lexicon))
        node_ratios, edge_ratios, degrees, sizes = [], [], [], []
        for report in detector.process_stream(trace.messages):
            stats = report.akg_stats
            if report.ckg_nodes:
                node_ratios.append(stats.akg_nodes / report.ckg_nodes)
            if report.ckg_edges:
                edge_ratios.append(stats.akg_edges / max(1, report.ckg_edges))
            if stats.akg_nodes:
                degrees.append(2 * stats.akg_edges / stats.akg_nodes)
            for event in report.reported:
                sizes.append(event.size)
        return node_ratios, edge_ratios, degrees, sizes

    started = time.perf_counter()
    node_ratios, edge_ratios, degrees, sizes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    wall_s = time.perf_counter() - started

    rows = [
        ["AKG nodes / CKG nodes %", round(100 * mean(node_ratios), 2), "< 5"],
        ["AKG edges / CKG edges %", round(100 * mean(edge_ratios), 2), "< 2"],
        ["average AKG degree", round(mean(degrees), 2), "< 6"],
        ["average reported cluster size", round(mean(sizes), 2), "< 7"],
    ]
    emit(
        "akg_reduction_7_4",
        render_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Section 7.4 — Impact of using AKG",
        ),
    )

    write_json_result(
        "akg_reduction_7_4",
        config={
            "node_ratio_pct": round(100 * mean(node_ratios), 2),
            "edge_ratio_pct": round(100 * mean(edge_ratios), 2),
            "avg_degree": round(mean(degrees), 2),
        },
        wall_s=wall_s,
        speedup=None,
        quanta=len(trace.messages) // config.quantum_size,
    )
    assert mean(node_ratios) < 0.10
    assert mean(edge_ratios) < 0.05
    assert mean(degrees) < 8.0
    assert mean(sizes) < 9.0
