"""Table 3 / Section 7.3 — SCP clusters vs offline biconnected clusters.

Paper numbers (shape to reproduce, not absolute values):

    scheme            events  precision  recall  avg rank  avg size
    SCP               216     0.911      0.935   186.4     5.07
    BC                179     0.795      0.775   150.9     6.31
    BC + edges        192     0.216      0.831    92.1     3.14

plus: +276% offline cluster instances (with edge clusters), 74.5% of offline
event clusters exactly equal to SCP clusters, every offline event cluster
contains a short cycle, SCP clustering ~46% faster than the per-quantum
global recomputation.
"""

import time

from repro.config import DetectorConfig
from repro.eval.comparison import compare_schemes
from repro.eval.reporting import render_table

from _results import write_json_result
from conftest import emit

PAPER = {
    "SCP Clusters": (216, 0.911, 0.935, 186.4, 5.07),
    "Bi-connected Clusters": (179, 0.795, 0.775, 150.9, 6.31),
    "Bi-connected clusters +Edges": (192, 0.216, 0.831, 92.1, 3.14),
}


def bench_table3_schemes(benchmark, ground_truth_trace):
    trace = ground_truth_trace
    started = time.perf_counter()
    comparison = benchmark.pedantic(
        compare_schemes, args=(trace, DetectorConfig()), rounds=1, iterations=1
    )
    wall_s = time.perf_counter() - started

    rows = []
    for row in comparison.rows:
        paper = PAPER[row.scheme]
        rows.append(
            [
                row.scheme,
                row.events_discovered,
                round(row.precision, 3),
                round(row.recall, 3),
                round(row.avg_rank, 1),
                round(row.avg_cluster_size, 2),
                f"({paper[0]}, {paper[1]}, {paper[2]})",
            ]
        )
    extra = [
        ["additional offline clusters (+edges) %", round(comparison.additional_clusters_pct, 1), 276.0],
        ["additional offline events (+edges) %", round(comparison.additional_events_pct, 1), -11.1],
        ["exact overlap of BC clusters with SCP %", round(comparison.exact_overlap_pct, 1), 74.5],
        ["BC clusters containing a short cycle %", round(comparison.bc_event_clusters_with_short_cycle_pct, 1), 100.0],
        ["avg size of exactly-overlapping clusters", round(comparison.avg_size_exact_overlap, 2), 4.53],
        ["avg size of all SCP cluster instances", round(comparison.avg_size_scp_all, 2), 5.07],
        ["SCP clustering seconds", round(comparison.scp_clustering_seconds, 3), "-"],
        ["offline clustering seconds", round(comparison.bc_clustering_seconds, 3), "-"],
        ["SCP speedup %", round(comparison.scp_speedup_pct, 1), 46.0],
    ]
    text = render_table(
        ["Scheme", "Events", "Precision", "Recall", "AvgRank", "AvgSize", "paper(E,P,R)"],
        rows,
        title="Table 3 — Performance of different clustering schemes",
    ) + "\n\n" + render_table(["statistic", "measured", "paper"], extra)
    emit("table3_schemes", text)

    write_json_result(
        "table3_schemes",
        config={
            "scp_clustering_s": round(comparison.scp_clustering_seconds, 4),
            "bc_clustering_s": round(comparison.bc_clustering_seconds, 4),
            "scp_speedup_pct": round(comparison.scp_speedup_pct, 2),
        },
        wall_s=wall_s,
        speedup=(
            comparison.bc_clustering_seconds
            / comparison.scp_clustering_seconds
            if comparison.scp_clustering_seconds
            else None
        ),
        quanta=len(trace.messages) // 160,
    )
    scp = comparison.row("SCP Clusters")
    bc = comparison.row("Bi-connected Clusters")
    bc_edges = comparison.row("Bi-connected clusters +Edges")
    # the orderings the paper reports
    assert scp.precision >= bc.precision - 0.02
    assert scp.recall >= bc.recall
    assert bc_edges.precision < scp.precision - 0.15
    assert bc_edges.avg_cluster_size < scp.avg_cluster_size
    assert comparison.additional_clusters_pct > 50.0
    assert comparison.exact_overlap_pct >= 60.0
    assert comparison.bc_event_clusters_with_short_cycle_pct >= 95.0
