"""Shared benchmark fixtures: traces are generated once per session.

Scale note: the paper's traces hold 1.3M–10M tweets; these benches replay
scaled-down equivalents (tens of thousands of messages) so the whole harness
runs in minutes.  The *shapes* the paper reports — who wins, directions of
parameter sensitivities, reduction ratios — are what the benches check and
emit; absolute throughput numbers are hardware-bound either way.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.datasets.traces import (  # noqa: E402
    build_es_trace,
    build_ground_truth_trace,
    build_tw_trace,
)

RESULTS_DIR = Path(__file__).parent / "results"

_emitted: list = []


def emit(name: str, text: str) -> None:
    """Record a result table: saved under results/ immediately and printed
    by ``pytest_terminal_summary`` once output capture has ended."""
    _emitted.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    """Print every emitted paper table after the pytest summary."""
    for name, text in _emitted:
        terminalreporter.write_line("")
        terminalreporter.write_line("=" * 72)
        terminalreporter.write_line(name)
        terminalreporter.write_line("=" * 72)
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def tw_trace():
    """Time-Window trace: general stream, low event density."""
    return build_tw_trace(total_messages=24_000, n_events=12, seed=7)


@pytest.fixture(scope="session")
def es_trace():
    """Event-Specific trace: ~3x the TW event density."""
    return build_es_trace(total_messages=24_000, n_events=36, seed=11)


@pytest.fixture(scope="session")
def ground_truth_trace():
    """The Section 7.1 workload: headlined + sub-threshold + local events."""
    return build_ground_truth_trace(
        total_messages=40_000,
        n_headline_discoverable=20,
        n_headline_subthreshold=14,
        n_local_events=30,
        n_spurious=5,
        seed=3,
    )
