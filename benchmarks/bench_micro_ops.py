"""Micro-benchmarks of the hot maintenance operations.

These use pytest-benchmark's statistical timing (many rounds) since each
operation is microseconds — the numbers behind the Section 4.1 claim that
per-update work is O(k^2 * N * C) with small constants.
"""

import random

from _results import write_json_result

from repro.core.maintenance import ClusterMaintainer
from repro.graph.generators import gnp_random_graph


def _emit_micro(benchmark, name):
    """Record the statistical mean as the micro-op's wall_s (quanta=0: the
    measurement is per-operation, not stream-based)."""
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return
    write_json_result(
        name,
        config={"kind": "micro-op", "mean_us": round(1e6 * stats.stats.mean, 3)},
        wall_s=stats.stats.mean,
        speedup=None,
        quanta=0,
    )


def build_maintainer(n=120, p=0.05, seed=3):
    graph = gnp_random_graph(n, p, seed=seed)
    maintainer = ClusterMaintainer()
    for node in graph.nodes():
        maintainer.graph.ensure_node(node)
    for u, v, _ in graph.edges():
        maintainer.add_edge(u, v)
    return maintainer


def bench_edge_addition_removal_cycle(benchmark):
    """Add + remove one edge in a mid-size AKG (steady-state churn)."""
    maintainer = build_maintainer()
    rng = random.Random(7)
    nodes = list(maintainer.graph.nodes())

    def churn():
        u, v = rng.sample(nodes, 2)
        if maintainer.graph.has_edge(u, v):
            maintainer.remove_edge(u, v)
            maintainer.add_edge(u, v)
        else:
            maintainer.add_edge(u, v)
            maintainer.remove_edge(u, v)

    benchmark(churn)
    _emit_micro(benchmark, "micro_edge_cycle")


def bench_node_addition_with_edges(benchmark):
    """NodeAddition with k=4 correlated neighbours, then removal."""
    maintainer = build_maintainer()
    rng = random.Random(11)
    nodes = list(maintainer.graph.nodes())
    counter = [0]

    def add_remove():
        counter[0] += 1
        name = f"fresh{counter[0]}"
        neighbours = {n: 0.5 for n in rng.sample(nodes, 4)}
        maintainer.add_node_with_edges(name, neighbours)
        maintainer.remove_node(name)

    benchmark(add_remove)
    _emit_micro(benchmark, "micro_node_addition")


def bench_oracle_decomposition(benchmark):
    """From-scratch global decomposition of the same graph (the cost the
    incremental maintenance avoids paying per quantum)."""
    from repro.core.maintenance import decompose_graph

    maintainer = build_maintainer()
    benchmark(decompose_graph, maintainer.graph)
    _emit_micro(benchmark, "micro_oracle_decomposition")
