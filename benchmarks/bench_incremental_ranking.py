"""Incremental vs. from-scratch ranking throughput across churn rates.

The rank stage used to recompute every live cluster each quantum; the
:class:`~repro.core.incremental.IncrementalRanker` recomputes only clusters
dirtied by the typed change log.  This bench builds a world of many stable
clusters, perturbs a controlled fraction of them per round (node-weight
bumps, exactly what a window slide produces), and times one rank-stage pass
in each mode.  Per-round parity between the two modes is asserted, so the
speedup is measured against a provably identical result.

Expected shape: the incremental path's cost scales with churn while the
oracle's is flat, so the speedup is largest at low churn (the paper's
operating regime — a quantum touches a small fraction of the graph) and
fades toward 1x as churn approaches 100%.

Run under pytest with the bench options, or standalone:

    PYTHONPATH=src python benchmarks/bench_incremental_ranking.py
"""

from __future__ import annotations

import random
import sys
import time
from pathlib import Path
from typing import Dict, List, Tuple

sys.path.insert(0, str(Path(__file__).parent))

from _results import write_json_result  # noqa: E402

from repro.core.changelog import NodeWeightChanged
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer
from repro.eval.reporting import render_table

N_CLUSTERS = 150
CLUSTER_SIZE = 6
CHURN_RATES = [0.01, 0.10, 0.50]
ROUNDS = 40


def build_world() -> Tuple[ClusterMaintainer, Dict[str, float]]:
    """``N_CLUSTERS`` disjoint cliques of ``CLUSTER_SIZE`` keywords."""
    maintainer = ClusterMaintainer()
    weights: Dict[str, float] = {}
    for c in range(N_CLUSTERS):
        nodes = [f"k{c}_{i}" for i in range(CLUSTER_SIZE)]
        for n in nodes:
            maintainer.graph.ensure_node(n)
            weights[n] = 4.0
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                maintainer.add_edge(nodes[i], nodes[j], 0.5)
    return maintainer, weights


def measure_churn_rate(
    churn: float, rounds: int = ROUNDS, seed: int = 7
) -> Tuple[float, float, int]:
    """(incremental_seconds, oracle_seconds, dirtied_per_round) for one rate."""
    maintainer, weights = build_world()

    def weight_fn(nodes):
        return {n: weights[n] for n in nodes}

    incremental = IncrementalRanker(
        maintainer.registry, maintainer.graph, weight_fn
    )
    oracle = IncrementalRanker(
        maintainer.registry, maintainer.graph, weight_fn, oracle=True
    )
    incremental.apply(maintainer.drain_changes())
    incremental.rank_all()  # warm the cache: steady state, not cold start

    rng = random.Random(seed)
    cluster_ids = maintainer.registry.cluster_ids()
    k = max(1, round(churn * len(cluster_ids)))
    inc_seconds = 0.0
    ora_seconds = 0.0
    for _ in range(rounds):
        for cid in rng.sample(cluster_ids, k):
            node = next(iter(maintainer.registry.get(cid).nodes))
            old = weights[node]
            weights[node] = old + 1.0
            maintainer.changelog.record(NodeWeightChanged(node, old, old + 1.0))
        batch = maintainer.drain_changes()

        t = time.perf_counter()
        incremental.apply(batch)
        inc_ranked = incremental.rank_all()
        inc_seconds += time.perf_counter() - t

        t = time.perf_counter()
        ora_ranked = oracle.rank_all()
        ora_seconds += time.perf_counter() - t

        assert incremental.stats.recomputed <= k
        assert {c.cluster_id: (r, s) for c, r, s in inc_ranked} == {
            c.cluster_id: (r, s) for c, r, s in ora_ranked
        }, f"incremental/oracle divergence at churn={churn}"
    return inc_seconds, ora_seconds, k


def run_bench() -> Tuple[str, Dict[float, float]]:
    rows: List[List[object]] = []
    speedups: Dict[float, float] = {}
    inc_walls: Dict[float, float] = {}
    for churn in CHURN_RATES:
        inc_s, ora_s, k = measure_churn_rate(churn)
        speedup = ora_s / inc_s if inc_s else float("inf")
        speedups[churn] = speedup
        inc_walls[churn] = inc_s
        rows.append(
            [
                f"{churn:.0%}",
                k,
                round(1e6 * inc_s / ROUNDS, 1),
                round(1e6 * ora_s / ROUNDS, 1),
                f"{speedup:.1f}x",
            ]
        )
    table = render_table(
        [
            "churn",
            "dirty clusters",
            "incremental us/quantum",
            "from-scratch us/quantum",
            "speedup",
        ],
        rows,
        title=(
            f"Rank stage: incremental vs from-scratch "
            f"({N_CLUSTERS} clusters of {CLUSTER_SIZE} keywords)"
        ),
    )
    write_json_result(
        "incremental_ranking",
        config={
            "churn_rates": CHURN_RATES,
            "rounds": ROUNDS,
            "clusters": N_CLUSTERS,
            "speedups": {f"{c:.2f}": round(s, 2) for c, s in speedups.items()},
        },
        wall_s=sum(inc_walls.values()),
        speedup=speedups[0.10],
        quanta=ROUNDS * len(CHURN_RATES),
    )
    return table, speedups


def bench_incremental_ranking():
    """Acceptance gate: >= 3x at <= 10% churn, with exact rank parity."""
    table, speedups = run_bench()
    try:
        from conftest import emit
    except ImportError:  # standalone run
        print(table)
    else:
        emit("incremental_ranking", table)
    assert speedups[0.01] >= 3.0, (
        f"expected >= 3x speedup at 1% churn, got {speedups[0.01]:.1f}x"
    )
    assert speedups[0.10] >= 3.0, (
        f"expected >= 3x speedup at 10% churn, got {speedups[0.10]:.1f}x"
    )


if __name__ == "__main__":
    bench_incremental_ranking()
