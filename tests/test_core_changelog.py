"""Typed change-log events, the log itself, and batch interpretation."""

import pytest

from repro.core.changelog import (
    ChangeBatch,
    ChangeLog,
    ClusterCreated,
    ClusterDissolved,
    ClusterMerged,
    ClusterSplit,
    ClusterUpdated,
    EdgeWeightChanged,
    NodeWeightChanged,
)
from repro.core.clusters import ClusterRegistry


@pytest.fixture
def registry():
    """Two live clusters: a triangle {a,b,c} and a triangle {c,d,e}."""
    registry = ClusterRegistry()
    registry.new_cluster(
        {"a", "b", "c"}, {("a", "b"), ("b", "c"), ("a", "c")}
    )
    registry.new_cluster(
        {"c", "d", "e"}, {("c", "d"), ("d", "e"), ("c", "e")}
    )
    return registry


class TestChangeLog:
    def test_record_and_drain(self):
        log = ChangeLog()
        log.record(ClusterCreated(1))
        log.record(ClusterUpdated(1))
        assert len(log) == 2
        assert bool(log)
        batch = log.drain()
        assert isinstance(batch, ChangeBatch)
        assert [e.kind for e in batch] == ["created", "updated"]
        assert len(log) == 0
        assert not log
        assert len(log.drain()) == 0

    def test_peek_does_not_clear(self):
        log = ChangeLog()
        log.record(ClusterDissolved(3))
        assert log.peek() == (ClusterDissolved(3),)
        assert len(log) == 1

    def test_subscribe_sees_every_event(self):
        log = ChangeLog()
        seen = []
        log.subscribe(seen.append)
        log.record(ClusterCreated(1))
        log.record(NodeWeightChanged("a", 1, 2))
        assert [e.kind for e in seen] == ["created", "node-weight"]

    def test_events_are_hashable_and_comparable(self):
        assert ClusterMerged(1, (2, 3)) == ClusterMerged(1, (2, 3))
        assert len({ClusterCreated(1), ClusterCreated(1)}) == 1


class TestChangeBatch:
    def test_absorbed_into(self):
        batch = ChangeBatch(
            (ClusterMerged(1, (2, 3)), ClusterMerged(5, (4,)))
        )
        assert batch.absorbed_into() == {2: 1, 3: 1, 4: 5}

    def test_retired_ids(self):
        batch = ChangeBatch(
            (ClusterDissolved(7), ClusterMerged(1, (2,)), ClusterUpdated(1))
        )
        assert batch.retired_ids() == {7, 2}

    def test_structural_dirty_resolution(self, registry):
        batch = ChangeBatch(
            (
                ClusterCreated(1),
                ClusterMerged(2, (9,)),
                ClusterSplit(1, (10,)),
            )
        )
        # ids not in the registry (9, 10) are dropped
        assert batch.dirty_clusters(registry) == {1, 2}

    def test_node_delta_resolves_to_containing_clusters(self, registry):
        batch = ChangeBatch((NodeWeightChanged("c", 4, 6),))
        assert batch.dirty_clusters(registry) == {1, 2}  # shared node
        batch = ChangeBatch((NodeWeightChanged("a", 4, 6),))
        assert batch.dirty_clusters(registry) == {1}
        batch = ChangeBatch((NodeWeightChanged("zzz", 0, 6),))
        assert batch.dirty_clusters(registry) == set()

    def test_edge_delta_resolves_to_owner(self, registry):
        batch = ChangeBatch((EdgeWeightChanged(("d", "e"), 0.5, 0.9),))
        assert batch.dirty_clusters(registry) == {2}
        # an edge deleted later in the quantum resolves to nothing
        batch = ChangeBatch((EdgeWeightChanged(("a", "zz"), 0.5, 0.9),))
        assert batch.dirty_clusters(registry) == set()

    def test_dissolved_is_not_dirty(self, registry):
        batch = ChangeBatch((ClusterDissolved(1),))
        assert batch.dirty_clusters(registry) == set()
        assert batch.retired_ids() == {1}
