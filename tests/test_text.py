"""Tokenisation, stop words, and the noun tagger."""

import pytest

from repro.text.pos import NounTagger
from repro.text.stopwords import STOP_WORDS, is_stop_word
from repro.text.tokenize import tokenize


class TestTokenize:
    def test_figure1_example(self):
        tokens = tokenize("Earthquake of 5.9 struck Eastern Turkey! http://t.co/x")
        assert tokens == ["earthquake", "5.9", "struck", "eastern", "turkey"]

    def test_stop_words_removed(self):
        assert tokenize("the quick and the dead") == ["quick", "dead"]

    def test_urls_removed(self):
        assert tokenize("see https://example.com/page now") == ["see"]
        assert tokenize("see www.example.com now") == ["see"]

    def test_hashtags_preserved(self):
        assert "#jobs" in tokenize("new #jobs alert")

    def test_mentions_preserved(self):
        assert "@nasa" in tokenize("via @NASA tonight")

    def test_decimal_numbers_survive(self):
        assert "5.9" in tokenize("magnitude 5.9 quake")
        assert "150" in tokenize("plane crash kills 150 passengers")

    def test_single_characters_dropped(self):
        assert tokenize("a b c word") == ["word"]

    def test_case_folding(self):
        assert tokenize("TURKEY Turkey turkey") == ["turkey"] * 3

    def test_apostrophes_trimmed(self):
        assert tokenize("'quoted' word") == ["quoted", "word"]

    def test_empty_text(self):
        assert tokenize("") == []


class TestStopWords:
    def test_common_words_included(self):
        for word in ("the", "and", "is", "rt", "via"):
            assert is_stop_word(word)

    def test_content_words_excluded(self):
        for word in ("earthquake", "turkey", "storm"):
            assert not is_stop_word(word)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            STOP_WORDS.add("new")


class TestNounTagger:
    def test_lexicon_takes_priority(self):
        tagger = NounTagger({"running": "noun", "storm": "verb"})
        assert tagger.is_noun("running")
        assert not tagger.is_noun("storm")

    def test_lexicon_tag_variants(self):
        tagger = NounTagger({"a": "NN", "b": "NNP", "c": "Noun", "d": "VB"})
        assert tagger.is_noun("a") and tagger.is_noun("b") and tagger.is_noun("c")
        assert not tagger.is_noun("d")

    def test_heuristic_suffixes(self):
        tagger = NounTagger()
        assert not tagger.is_noun("quickly")
        assert not tagger.is_noun("running")
        assert not tagger.is_noun("wonderful")
        assert tagger.is_noun("earthquake")
        assert tagger.is_noun("tornado")

    def test_numerals_not_nouns(self):
        tagger = NounTagger()
        assert not tagger.is_noun("5.9")
        assert not tagger.is_noun("150")

    def test_hashtag_stripped(self):
        tagger = NounTagger({"jobs": "noun"})
        assert tagger.is_noun("#jobs")

    def test_has_noun(self):
        tagger = NounTagger()
        assert tagger.has_noun(["quickly", "earthquake"])
        assert not tagger.has_noun(["quickly", "running"])
        assert not tagger.has_noun([])

    def test_extend_lexicon(self):
        tagger = NounTagger()
        tagger.extend_lexicon({"zorgly": "noun"})
        assert tagger.is_noun("zorgly")

    def test_closed_class_words(self):
        tagger = NounTagger()
        assert not tagger.is_noun("massive")
        assert not tagger.is_noun("tonight")
