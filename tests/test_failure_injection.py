"""Failure injection: hostile and degenerate inputs must not corrupt state.

After every abuse scenario the cluster registry's internal indexes and the
incremental/global equivalence (Theorem 3) are re-verified.
"""

import pytest

from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.errors import EdgeNotFoundError, NodeNotFoundError, StreamError
from repro.core.maintenance import ClusterMaintainer
from repro.stream.messages import Message


def exact_config(**overrides):
    base = dict(
        quantum_size=8,
        window_quanta=3,
        high_state_threshold=2,
        ec_threshold=0.1,
        use_minhash_filter=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


class TestHostileStreams:
    def test_single_user_flood_never_clusters(self):
        """One user flooding identical messages must not create an event:
        correlation is computed over user ids, not message ids (Section 3.2)."""
        detector = EventDetector(exact_config())
        flood = [
            Message("flooder", tokens=("scam", "link", "click"))
            for _ in range(64)
        ]
        for start in range(0, 64, 8):
            report = detector.process_quantum(flood[start : start + 8])
            assert report.reported == []
        assert len(detector.registry) == 0

    def test_empty_token_messages(self):
        detector = EventDetector(exact_config())
        report = detector.process_quantum(
            [Message(f"u{i}", tokens=()) for i in range(8)]
        )
        assert report.reported == []
        assert detector.graph.num_nodes == 0

    def test_pathologically_long_message_truncated(self):
        """A 400-keyword message would inject ~80k correlated pairs into the
        graph; the message-length cap (microblog posts are short) bounds the
        damage to max_tokens_per_message keywords."""
        detector = EventDetector(exact_config(max_tokens_per_message=16))
        huge = tuple(f"word{i}" for i in range(400))
        report = detector.process_quantum(
            [Message(f"u{i}", tokens=huge) for i in range(8)]
        )
        detector.registry.check_integrity()
        assert report is not None
        assert detector.graph.num_nodes <= 16

    def test_unicode_and_odd_tokens(self):
        detector = EventDetector(exact_config())
        tokens = ("зе́мля", "ná Ísland", "🌍quake", "5.9")
        report = detector.process_quantum(
            [Message(f"u{i}", tokens=tokens) for i in range(8)]
        )
        detector.registry.check_integrity()
        assert report is not None

    def test_duplicate_tokens_in_message(self):
        detector = EventDetector(exact_config())
        report = detector.process_quantum(
            [Message(f"u{i}", tokens=("echo", "echo", "chamber")) for i in range(8)]
        )
        detector.registry.check_integrity()
        # duplicates collapse into one node occurrence
        assert detector.graph.num_nodes <= 2

    def test_alternating_burst_silence(self):
        """Keywords flapping in and out of burstiness must keep state exact."""
        detector = EventDetector(exact_config(window_quanta=2))
        loud = [Message(f"u{i}", tokens=("flap", "per", "node")) for i in range(8)]
        quiet = [Message(f"q{i}", tokens=(f"noise{i}",)) for i in range(8)]
        for round_no in range(6):
            detector.process_quantum(loud if round_no % 2 == 0 else quiet)
            detector.maintainer.check_against_oracle()
            detector.registry.check_integrity()

    def test_user_id_type_mixture(self):
        detector = EventDetector(exact_config())
        messages = [
            Message(1, tokens=("mix", "types")),
            Message("1", tokens=("mix", "types")),
            Message((2, 3), tokens=("mix", "types")),
        ]
        report = detector.process_quantum(messages)
        assert report is not None
        # int 1 and str "1" must count as distinct users
        assert detector.builder.idsets.support("mix") == 3


class TestMaintainerMisuse:
    def test_remove_unknown_node(self):
        maintainer = ClusterMaintainer()
        with pytest.raises(NodeNotFoundError):
            maintainer.remove_node("ghost")

    def test_remove_unknown_edge(self):
        maintainer = ClusterMaintainer()
        maintainer.add_node("a")
        maintainer.add_node("b")
        with pytest.raises(EdgeNotFoundError):
            maintainer.remove_edge("a", "b")

    def test_failed_operation_leaves_state_consistent(self):
        maintainer = ClusterMaintainer()
        for n in "abc":
            maintainer.add_node(n)
        maintainer.add_edge("a", "b")
        maintainer.add_edge("b", "c")
        maintainer.add_edge("a", "c")
        with pytest.raises(EdgeNotFoundError):
            maintainer.remove_edge("a", "zzz")
        maintainer.check_against_oracle()
        maintainer.registry.check_integrity()


class TestMessageValidation:
    def test_tokenless_textless_rejected(self):
        with pytest.raises(StreamError):
            Message(user_id="u1")
