"""Command-line interface behaviour."""

import json

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_prints_cluster(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "earthquake" in out
        assert "5.9" in out


class TestGenerateAndDetect:
    def test_round_trip(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        assert main([
            "generate", "tw", trace_path, "--messages", "4000", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 4000 messages" in out

        truth = json.loads((tmp_path / "trace.jsonl.truth.json").read_text())
        assert any(not e["spurious"] for e in truth)

        assert main(["detect", trace_path, "--gamma", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "msg/s" in out

    def test_generate_all_presets(self, tmp_path, capsys):
        for preset in ("tw", "es", "ground-truth"):
            path = str(tmp_path / f"{preset}.jsonl")
            assert main(
                ["generate", preset, path, "--messages", "3000"]
            ) == 0

    def test_detect_custom_parameters(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path,
            "--quantum-size", "80",
            "--theta", "3",
            "--exact-ec",
        ]) == 0

    def test_detect_timing_breakdown(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main(["detect", trace_path, "--timing"]) == 0
        out = capsys.readouterr().out
        assert "per-stage timing" in out
        for stage in ("tokenize", "akg_update", "maintain",
                      "propagate", "rank", "report"):
            assert stage in out
        assert "rank cache" in out

    def test_detect_oracle_ranking(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--oracle-ranking", "--timing",
        ]) == 0
        out = capsys.readouterr().out
        assert "0/" in out or "rank cache" not in out  # no cache hits

    def test_detect_oracle_akg_matches_fast_path(self, tmp_path, capsys):
        """--oracle-akg runs the from-scratch AKG baseline and reports the
        same events as the delta-driven default."""
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main(["detect", trace_path, "--gamma", "0.15"]) == 0
        fast_out = capsys.readouterr().out
        assert main([
            "detect", trace_path, "--gamma", "0.15", "--oracle-akg",
        ]) == 0
        oracle_out = capsys.readouterr().out
        fast_events = [l for l in fast_out.splitlines() if "NEW event" in l]
        oracle_events = [l for l in oracle_out.splitlines() if "NEW event" in l]
        assert fast_events == oracle_events


class TestSweep:
    def test_sweep_prints_grids(self, capsys):
        assert main(["sweep", "tw", "--messages", "4000"]) == 0
        out = capsys.readouterr().out
        assert "Recall, TW trace" in out
        assert "Precision, TW trace" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate"])
