"""Command-line interface behaviour."""

import json

import pytest

from repro.cli import main


class TestDemo:
    def test_demo_prints_cluster(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "earthquake" in out
        assert "5.9" in out


class TestGenerateAndDetect:
    def test_round_trip(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        assert main([
            "generate", "tw", trace_path, "--messages", "4000", "--seed", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "wrote 4000 messages" in out

        truth = json.loads((tmp_path / "trace.jsonl.truth.json").read_text())
        assert any(not e["spurious"] for e in truth)

        assert main(["detect", trace_path, "--gamma", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "msg/s" in out

    def test_generate_all_presets(self, tmp_path, capsys):
        for preset in ("tw", "es", "ground-truth"):
            path = str(tmp_path / f"{preset}.jsonl")
            assert main(
                ["generate", preset, path, "--messages", "3000"]
            ) == 0

    def test_detect_custom_parameters(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path,
            "--quantum-size", "80",
            "--theta", "3",
            "--exact-ec",
        ]) == 0

    def test_detect_timing_breakdown(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main(["detect", trace_path, "--timing"]) == 0
        out = capsys.readouterr().out
        assert "per-stage timing" in out
        for stage in ("extract", "akg_update", "maintain",
                      "propagate", "rank", "report"):
            assert stage in out
        assert "rank cache" in out

    def test_detect_oracle_ranking(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--oracle-ranking", "--timing",
        ]) == 0
        out = capsys.readouterr().out
        assert "0/" in out or "rank cache" not in out  # no cache hits

    def test_detect_oracle_akg_matches_fast_path(self, tmp_path, capsys):
        """--oracle-akg runs the from-scratch AKG baseline and reports the
        same events as the delta-driven default."""
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main(["detect", trace_path, "--gamma", "0.15"]) == 0
        fast_out = capsys.readouterr().out
        assert main([
            "detect", trace_path, "--gamma", "0.15", "--oracle-akg",
        ]) == 0
        oracle_out = capsys.readouterr().out
        fast_events = [l for l in fast_out.splitlines() if "NEW event" in l]
        oracle_events = [l for l in oracle_out.splitlines() if "NEW event" in l]
        assert fast_events == oracle_events


class TestExtractorFlags:
    def test_edge_stream_detect_and_resume_cycle(self, tmp_path, capsys):
        """generate edge -> detect --extractor edges --checkpoint -> resume:
        the CLI face of the non-text workload matrix."""
        trace_path = str(tmp_path / "edges.jsonl")
        ckpt_path = str(tmp_path / "edges.ckpt")
        assert main(
            ["generate", "edge", trace_path, "--messages", "4000"]
        ) == 0
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--extractor", "edges",
            "--quantum-size", "80", "--theta", "3",
            "--checkpoint", ckpt_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "bundle" in out  # planted co-purchase bundles reported
        assert main([
            "detect", trace_path, "--resume-from", ckpt_path,
        ]) == 0
        assert "resumed from" in capsys.readouterr().out

    def test_fields_extractor_with_options(self, tmp_path, capsys):
        trace_path = str(tmp_path / "fields.jsonl")
        assert main(
            ["generate", "fields", trace_path, "--messages", "4000"]
        ) == 0
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--extractor", "fields",
            "--extractor-options", '{"fields": ["tags"]}',
            "--quantum-size", "80", "--theta", "3",
        ]) == 0
        assert "tags:" in capsys.readouterr().out

    def test_malformed_extractor_options_rejected(self, tmp_path):
        from repro.errors import ConfigError

        trace_path = str(tmp_path / "t.jsonl")
        trace_path_obj = tmp_path / "t.jsonl"
        trace_path_obj.write_text('{"u": "u1", "k": ["a"]}\n')
        with pytest.raises(ConfigError, match="JSON"):
            main([
                "detect", trace_path,
                "--extractor-options", "{not json",
            ])
        with pytest.raises(ConfigError, match="object"):
            main([
                "detect", trace_path,
                "--extractor-options", '["a", "list"]',
            ])


class TestCheckpointFlags:
    def test_checkpoint_and_resume_round_trip(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        ckpt_path = str(tmp_path / "session.ckpt")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--gamma", "0.15",
            "--checkpoint", ckpt_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "checkpoint written to" in out
        assert (tmp_path / "session.ckpt").exists()
        assert main([
            "detect", trace_path, "--resume-from", ckpt_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "msg/s" in out

    def test_resumed_half_equals_uninterrupted_run(self, tmp_path, capsys):
        """Splitting a trace across a checkpoint reports the same events as
        one continuous detect run (the CLI face of the parity gate)."""
        trace_path = tmp_path / "trace.jsonl"
        ckpt_path = str(tmp_path / "half.ckpt")
        main(["generate", "tw", str(trace_path), "--messages", "3000"])
        capsys.readouterr()

        assert main(["detect", str(trace_path), "--gamma", "0.15"]) == 0
        whole_out = capsys.readouterr().out
        whole_events = [
            l for l in whole_out.splitlines() if "NEW event" in l
        ]

        lines = trace_path.read_text().splitlines(keepends=True)
        half_a = tmp_path / "a.jsonl"
        half_b = tmp_path / "b.jsonl"
        half_a.write_text("".join(lines[:1500]))
        half_b.write_text("".join(lines[1500:]))
        assert main([
            "detect", str(half_a), "--gamma", "0.15",
            "--checkpoint", ckpt_path,
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "detect", str(half_b), "--resume-from", ckpt_path,
        ]) == 0
        second = capsys.readouterr().out
        split_events = [
            l for l in (first + second).splitlines() if "NEW event" in l
        ]
        assert split_events == whole_events


class TestDeltaLogAndFollow:
    def test_detect_writes_delta_log_and_resume_reads_it(
        self, tmp_path, capsys
    ):
        trace_path = str(tmp_path / "trace.jsonl")
        dlog = str(tmp_path / "dlog")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--gamma", "0.15",
            "--quantum-size", "100", "--delta-log", dlog,
        ]) == 0
        out = capsys.readouterr().out
        assert "delta log enabled at" in out
        assert "record(s)" in out
        assert (tmp_path / "dlog" / "MANIFEST.json").exists()
        # --resume-from accepts the delta directory just like a .ckpt file
        assert main([
            "detect", trace_path, "--resume-from", dlog,
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out

    def test_follow_promote_equals_uninterrupted_run(
        self, tmp_path, capsys
    ):
        """The CLI face of the failover gate: leader killed mid-stream,
        follower promotes, continuation prints the same detection lines
        the uninterrupted run prints past the takeover point."""
        trace_path = tmp_path / "trace.jsonl"
        dlog = str(tmp_path / "dlog")
        main(["generate", "tw", str(trace_path), "--messages", "3000"])
        capsys.readouterr()

        assert main([
            "detect", str(trace_path), "--gamma", "0.15",
            "--quantum-size", "100",
        ]) == 0
        whole_out = capsys.readouterr().out
        whole_events = [
            l for l in whole_out.splitlines() if "NEW event" in l
        ]

        # Split at an exact quantum boundary: promote continues from the
        # last *logged* quantum, and a clean split means the leader's
        # pending buffer (the data-loss window) is empty.
        lines = trace_path.read_text().splitlines(keepends=True)
        half_a = tmp_path / "a.jsonl"
        half_b = tmp_path / "b.jsonl"
        half_a.write_text("".join(lines[:1500]))
        half_b.write_text("".join(lines[1500:]))
        assert main([
            "detect", str(half_a), "--gamma", "0.15",
            "--quantum-size", "100", "--delta-log", dlog,
            "--checkpoint", str(tmp_path / "lead.ckpt"),
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "follow", dlog, "--promote", "--trace", str(half_b),
        ]) == 0
        second = capsys.readouterr().out
        assert "following" in second
        assert "promoted to a live session at quantum 14" in second
        split_events = [
            l for l in (first + second).splitlines() if "NEW event" in l
        ]
        assert split_events == whole_events

    def test_follow_snapshot_without_promote(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        dlog = str(tmp_path / "dlog")
        follower_ckpt = tmp_path / "follower.ckpt"
        main(["generate", "tw", trace_path, "--messages", "2000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--gamma", "0.15",
            "--quantum-size", "100", "--delta-log", dlog,
        ]) == 0
        capsys.readouterr()
        assert main([
            "follow", dlog, "--checkpoint", str(follower_ckpt),
        ]) == 0
        out = capsys.readouterr().out
        assert "follower checkpoint written to" in out
        assert follower_ckpt.exists()
        # The off-leader snapshot resumes like any monolithic checkpoint.
        assert main([
            "detect", trace_path, "--resume-from", str(follower_ckpt),
        ]) == 0
        assert "resumed from" in capsys.readouterr().out


class TestBackendAndProfileFlags:
    def test_batched_backend_matches_reference_output(
        self, tmp_path, capsys
    ):
        """--backend batched must print the exact same detection lines."""
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main(["detect", trace_path, "--gamma", "0.15"]) == 0
        reference_out = capsys.readouterr().out
        assert main([
            "detect", trace_path, "--gamma", "0.15",
            "--backend", "batched",
        ]) == 0
        batched_out = capsys.readouterr().out
        pick = lambda text: [
            l for l in text.splitlines() if "NEW event" in l
        ]
        assert pick(batched_out) == pick(reference_out)

    def test_profile_prints_hot_functions(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--backend", "batched", "--profile",
        ]) == 0
        out = capsys.readouterr().out
        assert "cumulative" in out  # pstats sort header
        assert "ncalls" in out

    def test_backend_survives_checkpoint_resume(self, tmp_path, capsys):
        """A checkpoint written under one backend resumes under another."""
        trace_path = str(tmp_path / "trace.jsonl")
        main(["generate", "tw", trace_path, "--messages", "3000"])
        ckpt_path = str(tmp_path / "state.ckpt")
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--backend", "batched",
            "--checkpoint", ckpt_path,
        ]) == 0
        capsys.readouterr()
        assert main([
            "detect", trace_path, "--resume-from", ckpt_path,
            "--backend", "reference",
        ]) == 0
        assert "resumed from" in capsys.readouterr().out


class TestSweep:
    def test_sweep_prints_grids(self, capsys):
        assert main(["sweep", "tw", "--messages", "4000"]) == 0
        out = capsys.readouterr().out
        assert "Recall, TW trace" in out
        assert "Precision, TW trace" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_arguments_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate"])

    def test_help_lists_serve_command(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "serve" in out
        assert "multi-tenant serving layer" in out

    def test_serve_help_documents_knobs(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--state-dir", "--workers", "--max-queue",
                     "--subscriber-buffer", "--stall-deadline"):
            assert flag in out
