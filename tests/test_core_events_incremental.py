"""Edit-script event tracking vs the from-scratch full-ranking diff.

``EventTracker.observe_edits`` touches only the ranker's
``last_recomputed``/``last_removed`` ids; ``observe_quantum`` visits every
live cluster and diffs by value.  Both must produce *identical* records —
checked here over full engine runs (the edit script comes from the real
incremental ranker) against a shadow tracker fed the full ranking each
quantum, across the three stream regimes.

A second group checks the change-point encoding itself: the dense
``iter_quanta`` expansion, span properties, and the absence-gap bookkeeping
around reopened events.
"""

import random

import pytest

from repro.api import open_session
from repro.config import DetectorConfig
from repro.core.events import EventRecord, EventSnapshot, EventTracker
from repro.stream.messages import Message


def make_config(**overrides):
    base = dict(
        quantum_size=20,
        window_quanta=3,
        high_state_threshold=3,
        ec_threshold=0.2,
        node_grace_quanta=1,
        require_noun=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def bursty_stream(seed, n):
    rng = random.Random(seed)
    keywords = [f"k{i}" for i in range(6)]
    return [
        Message(
            f"u{rng.randrange(20)}",
            tokens=tuple(rng.sample(keywords, rng.randint(2, 4))),
        )
        for _ in range(n)
    ]


def uniform_stream(seed, n):
    rng = random.Random(seed)
    keywords = [f"w{i}" for i in range(40)]
    return [
        Message(
            f"u{rng.randrange(60)}",
            tokens=tuple(rng.sample(keywords, rng.randint(1, 3))),
        )
        for _ in range(n)
    ]


def reentry_stream(seed, n, config):
    rng = random.Random(seed)
    group_a = [f"a{i}" for i in range(4)]
    group_b = [f"b{i}" for i in range(4)]
    period = config.quantum_size * config.window_quanta
    return [
        Message(
            f"u{rng.randrange(15)}",
            tokens=tuple(
                rng.sample(
                    group_a if (i // period) % 2 == 0 else group_b,
                    rng.randint(2, 3),
                )
            ),
        )
        for i in range(n)
    ]


STREAMS = {
    "bursty": lambda config: bursty_stream(5, 600),
    "uniform": lambda config: uniform_stream(6, 600),
    "reentry": lambda config: reentry_stream(7, 600, config),
}


@pytest.mark.parametrize("regime", sorted(STREAMS))
def test_edit_script_tracking_equals_full_scan(regime):
    """The engine's edit-script tracker must equal a from-scratch shadow
    tracker fed the complete ranking every quantum, record for record."""
    config = make_config()
    session = open_session(config)
    shadow = EventTracker()
    for message in STREAMS[regime](config):
        report = session.ingest(message)
        if report is None:
            continue
        # Feed the shadow tracker the *full* current ranking; with no dirty
        # ids pending, rank_all() re-emits the maintained result list the
        # report stage just consumed, without perturbing session state.
        ranked = session.ranker.rank_all()
        shadow.observe_quantum(report.quantum, ranked)
    assert session.tracker.to_state() == shadow.to_state(), (
        f"edit-script records diverged from the full-scan oracle ({regime})"
    )


class TestChangePointEncoding:
    def snap(self, quantum, keywords, rank):
        return EventSnapshot(quantum, frozenset(keywords), rank, 1.0, 3)

    def test_touch_dedupes_unchanged_state(self):
        tracker = EventTracker()
        tracker._touch(1, 0, frozenset("ab"), 5.0, 1.0, 3)
        tracker._touch(1, 1, frozenset("ab"), 5.0, 1.0, 3)
        tracker._touch(1, 2, frozenset("ab"), 6.0, 1.0, 3)
        record = tracker._records[1]
        assert [s.quantum for s in record.snapshots] == [0, 2]

    def test_iter_quanta_expands_runs(self):
        record = EventRecord(1, 0)
        record.snapshots = [self.snap(0, "ab", 5.0), self.snap(3, "abc", 6.0)]
        record._observed_until = 5
        expanded = list(record.iter_quanta())
        assert [q for q, _ in expanded] == [0, 1, 2, 3, 4, 5]
        assert [s.rank for _, s in expanded] == [5.0, 5.0, 5.0, 6.0, 6.0, 6.0]

    def test_gap_excluded_from_expansion_and_spans(self):
        tracker = EventTracker()
        tracker.observe_quantum(0, [], ())
        tracker._touch(1, 0, frozenset("ab"), 5.0, 1.0, 3)
        # dies at quantum 2, reborn at quantum 4
        tracker._records[1].died_quantum = 2
        tracker._touch(1, 4, frozenset("ab"), 5.0, 1.0, 3)
        tracker._last_quantum = 4
        record = tracker.get(1)
        assert record.gaps == [(2, 4)]
        assert record.alive
        assert [q for q, _ in record.iter_quanta()] == [0, 1, 4]
        assert record.first_quantum == 0
        assert record.last_quantum == 4

    def test_spans_for_dead_and_alive_records(self):
        tracker = EventTracker()
        tracker._touch(1, 3, frozenset("ab"), 5.0, 1.0, 3)
        tracker._last_quantum = 9
        alive = tracker.get(1)
        assert alive.last_quantum == 9
        assert alive.lifetime_quanta == 7
        alive.died_quantum = 8
        assert alive.last_quantum == 7
        assert alive.lifetime_quanta == 5

    def test_manual_dense_records_keep_legacy_semantics(self):
        record = EventRecord(1, 0)
        record.snapshots = [self.snap(2, "ab", 4.0), self.snap(5, "ab", 9.0)]
        assert record.first_quantum == 2
        assert record.last_quantum == 5
        assert record.lifetime_quanta == 4

    def test_observed_quanta_excludes_gaps_in_spurious_gate(self):
        """is_spurious's min_lifetime guard counts alive quanta only, as the
        dense encoding's len(snapshots) did."""
        record = EventRecord(1, 0)
        record.snapshots = [self.snap(0, "ab", 5.0), self.snap(5, "ab", 9.0)]
        record.gaps = [(1, 5)]  # dead q1..q4: alive at q0 and q5 only
        record._observed_until = 5
        assert record.lifetime_quanta == 6
        assert record.observed_quanta == 2
        # with min_lifetime=3 the dense path would have seen 2 < 3 observed
        # quanta -> spurious iff not evolved, despite the non-monotone rank
        assert record.is_spurious(min_lifetime=3)
        assert not record.is_spurious(min_lifetime=2)  # rank rose -> real
