"""Ranking function (Section 6): closed form vs matrix formula, monotonicity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ranking import (
    cluster_rank,
    minimum_rank,
    rank_from_matrices,
    rank_matrices,
)
from repro.errors import ClusterError


TRIANGLE_NODES = ["a", "b", "c"]
TRIANGLE_EDGES = [("a", "b"), ("b", "c"), ("a", "c")]


def uniform_weights(value=4.0):
    return {n: value for n in TRIANGLE_NODES}


def uniform_corr(value=0.5):
    return {e: value for e in TRIANGLE_EDGES}


class TestClosedForm:
    def test_hand_computed_triangle(self):
        # rank = (sum w + sum_e c_e * (w_u + w_v)) / n
        #      = (12 + 3 * 0.5 * 8) / 3 = 8.0
        rank = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(), uniform_corr()
        )
        assert rank == pytest.approx(8.0)

    def test_single_node_no_edges(self):
        assert cluster_rank(["a"], [], {"a": 7.0}, {}) == pytest.approx(7.0)

    def test_empty_cluster_raises(self):
        with pytest.raises(ClusterError):
            cluster_rank([], [], {}, {})

    def test_missing_weight_raises(self):
        with pytest.raises(ClusterError):
            cluster_rank(["a", "b"], [("a", "b")], {"a": 1.0}, {("a", "b"): 1.0})

    def test_missing_correlation_raises(self):
        with pytest.raises(ClusterError):
            cluster_rank(["a", "b"], [("a", "b")], {"a": 1.0, "b": 1.0}, {})


class TestMatrixEquivalence:
    @given(
        weights=st.lists(st.floats(1.0, 100.0), min_size=3, max_size=3),
        corrs=st.lists(st.floats(0.05, 1.0), min_size=3, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_closed_form_equals_w_c_one(self, weights, corrs):
        """cluster_rank == (W @ C @ 1) / n — the literal paper formula."""
        node_weights = dict(zip(TRIANGLE_NODES, weights))
        edge_corrs = dict(zip(TRIANGLE_EDGES, corrs))
        closed = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, node_weights, edge_corrs
        )
        w, c = rank_matrices(
            TRIANGLE_NODES, TRIANGLE_EDGES, node_weights, edge_corrs
        )
        assert closed == pytest.approx(rank_from_matrices(w, c))

    def test_matrix_shapes(self):
        w, c = rank_matrices(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(), uniform_corr()
        )
        assert w.shape == (1, 3)
        assert c.shape == (3, 3)
        assert (c.diagonal() == 1.0).all()


class TestMonotonicity:
    """The Section 6 design goals: correlation, density and support each
    increase the rank; normalisation stops growth being automatic."""

    def test_higher_correlation_higher_rank(self):
        low = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(), uniform_corr(0.2)
        )
        high = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(), uniform_corr(0.9)
        )
        assert high > low

    def test_higher_support_higher_rank(self):
        low = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(4), uniform_corr()
        )
        high = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(40), uniform_corr()
        )
        assert high > low

    def test_extra_edge_higher_rank(self):
        sparse_edges = TRIANGLE_EDGES[:2]
        sparse = cluster_rank(
            TRIANGLE_NODES,
            sparse_edges,
            uniform_weights(),
            {e: 0.5 for e in sparse_edges},
        )
        dense = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(), uniform_corr()
        )
        assert dense > sparse

    def test_size_normalisation(self):
        """A bigger but equally sparse cluster does not automatically
        outrank a small dense one."""
        big_nodes = list("abcdefgh")
        ring = [
            (big_nodes[i], big_nodes[(i + 1) % len(big_nodes)])
            for i in range(len(big_nodes))
        ]
        ring = [tuple(sorted(e)) for e in ring]
        big = cluster_rank(
            big_nodes,
            ring,
            {n: 4.0 for n in big_nodes},
            {e: 0.3 for e in ring},
        )
        small = cluster_rank(
            TRIANGLE_NODES, TRIANGLE_EDGES, uniform_weights(), uniform_corr(0.9)
        )
        assert small > big


class TestMinimumRank:
    def test_formula(self):
        assert minimum_rank(4, 0.2) == pytest.approx(4 * 1.4)

    def test_monotone_in_theta_and_gamma(self):
        assert minimum_rank(8, 0.2) > minimum_rank(4, 0.2)
        assert minimum_rank(4, 0.3) > minimum_rank(4, 0.1)

    def test_qualifying_cluster_beats_floor(self):
        """A minimal qualifying cluster (triangle, theta support, gamma
        correlation) ranks at least at the floor."""
        theta, gamma = 4, 0.2
        rank = cluster_rank(
            TRIANGLE_NODES,
            TRIANGLE_EDGES,
            uniform_weights(float(theta)),
            uniform_corr(gamma),
        )
        assert rank >= minimum_rank(theta, gamma)
