"""Shared test helpers (importable because conftest puts this dir on sys.path)."""

from __future__ import annotations

from repro.graph.dynamic_graph import DynamicGraph, edge_key


def graph_from_edges(edges, extra_nodes=()):
    """Build a DynamicGraph from an edge list (nodes auto-created)."""
    graph = DynamicGraph()
    for u, v in edges:
        graph.ensure_node(u)
        graph.ensure_node(v)
        graph.add_edge(u, v)
    for node in extra_nodes:
        graph.ensure_node(node)
    return graph


def to_nx(graph):
    """DynamicGraph -> networkx.Graph (for oracle comparisons)."""
    import networkx as nx

    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from((u, v) for u, v, _ in graph.edges())
    return g


def brute_force_atoms(graph):
    """All 3-/4-cycle edge sets via networkx simple_cycles (length bound)."""
    import networkx as nx

    nxg = to_nx(graph)
    atoms = set()
    for cycle in nx.simple_cycles(nxg, length_bound=4):
        if len(cycle) in (3, 4):
            edges = frozenset(
                edge_key(cycle[i], cycle[(i + 1) % len(cycle)])
                for i in range(len(cycle))
            )
            atoms.add(edges)
    return atoms


def brute_force_decomposition(graph):
    """Global SCP decomposition from brute-force atoms (test oracle of the
    test oracle): glue atoms sharing edges transitively, return the set of
    frozenset edge sets."""
    atoms = list(brute_force_atoms(graph))
    parent = list(range(len(atoms)))

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner = {}
    for i, atom in enumerate(atoms):
        for e in atom:
            j = owner.setdefault(e, i)
            if j != i:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri
    groups = {}
    for i, atom in enumerate(atoms):
        groups.setdefault(find(i), set()).update(atom)
    return {frozenset(edges) for edges in groups.values()}
