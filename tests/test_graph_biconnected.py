"""Biconnected components / articulation points, cross-checked vs networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.biconnected import (
    articulation_points,
    biconnected_components,
    bridge_edges,
    component_nodes,
    is_biconnected,
)
from repro.graph.dynamic_graph import edge_key
from repro.graph.generators import complete_clique, cycle_graph, gnp_random_graph

from helpers import graph_from_edges


def to_nx(graph):
    g = nx.Graph()
    g.add_nodes_from(graph.nodes())
    g.add_edges_from((u, v) for u, v, _ in graph.edges())
    return g


class TestArticulationPoints:
    def test_path_graph_inner_nodes(self):
        graph = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        assert articulation_points(graph) == {1, 2}

    def test_cycle_has_none(self):
        assert articulation_points(cycle_graph(5)) == set()

    def test_bowtie_centre(self):
        graph = graph_from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]
        )
        assert articulation_points(graph) == {2}

    def test_isolated_nodes_ignored(self):
        graph = graph_from_edges([(0, 1)], extra_nodes=[7])
        assert articulation_points(graph) == set()

    def test_root_with_two_children(self):
        # star centre is an articulation point (root case of the DFS)
        graph = graph_from_edges([(0, 1), (0, 2), (0, 3)])
        assert articulation_points(graph) == {0}


class TestBiconnectedComponents:
    def test_triangle_single_component(self, triangle):
        comps = biconnected_components(triangle)
        assert len(comps) == 1
        assert comps[0] == {(0, 1), (1, 2), (0, 2)}

    def test_bridge_is_own_component(self):
        graph = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        comps = biconnected_components(graph)
        assert {frozenset(c) for c in comps} == {
            frozenset({(0, 1), (1, 2), (0, 2)}),
            frozenset({(2, 3)}),
        }

    def test_every_edge_in_exactly_one_component(self):
        graph = gnp_random_graph(24, 0.15, seed=5)
        comps = biconnected_components(graph)
        seen = [e for comp in comps for e in comp]
        assert len(seen) == len(set(seen)) == graph.num_edges

    def test_component_nodes(self):
        assert component_nodes({(0, 1), (1, 2), (0, 2)}) == {0, 1, 2}

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_random(self, seed):
        graph = gnp_random_graph(30, 0.12, seed=seed)
        ours = {
            frozenset(comp) for comp in biconnected_components(graph)
        }
        theirs = {
            frozenset(edge_key(u, v) for u, v in comp)
            for comp in nx.biconnected_component_edges(to_nx(graph))
        }
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(8))
    def test_articulation_matches_networkx(self, seed):
        graph = gnp_random_graph(30, 0.12, seed=seed)
        assert articulation_points(graph) == set(
            nx.articulation_points(to_nx(graph))
        )


class TestBridges:
    def test_tree_all_bridges(self):
        graph = graph_from_edges([(0, 1), (1, 2), (1, 3)])
        assert bridge_edges(graph) == {(0, 1), (1, 2), (1, 3)}

    def test_cycle_no_bridges(self):
        assert bridge_edges(cycle_graph(6)) == set()


class TestIsBiconnected:
    def test_clique_yes(self):
        assert is_biconnected(complete_clique(5))

    def test_cycle_yes(self):
        assert is_biconnected(cycle_graph(4))

    def test_path_no(self):
        assert not is_biconnected(graph_from_edges([(0, 1), (1, 2)]))

    def test_disconnected_no(self):
        graph = graph_from_edges([(0, 1), (2, 3)])
        assert not is_biconnected(graph)

    def test_too_small_no(self):
        assert not is_biconnected(graph_from_edges([(0, 1)]))

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_networkx(self, seed):
        graph = gnp_random_graph(12, 0.3, seed=seed)
        nxg = to_nx(graph)
        expected = (
            len(nxg) >= 3
            and nx.is_connected(nxg)
            and not set(nx.articulation_points(nxg))
        )
        assert is_biconnected(graph) == expected
