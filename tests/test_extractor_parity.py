"""Seed-pinned golden parity of the default keyword path.

The fingerprints below were generated against the **pre-refactor** tree
(PR 4 head, before the ``repro.extract`` package existed) with::

    PYTHONPATH=src:tests python tests/test_extractor_parity.py

Each hash covers one full session pass over one seed-pinned stream regime:
every consumer-visible field of every ``QuantumReport``, every sink
notification, every event history, and the normalized checkpoint state
(see ``tests/golden.py`` for the canonicalization).  The refactored
``KeywordExtractor`` path must reproduce them bit for bit, serially and
under ``workers=4`` — this is the acceptance gate that the multi-layer
extractor refactor did not move a single reported rank, lifecycle
transition, or checkpointed window entry on the existing workload.

If a hash ever changes, that is a *semantic* change to the keyword
pipeline; do not re-pin without understanding exactly which record moved.
"""

from __future__ import annotations

import pytest

from repro.config import DetectorConfig

from golden import (
    bursty_stream,
    fingerprint,
    reentry_stream,
    run_structure,
    uniform_stream,
)


def make_config(**overrides):
    base = dict(
        quantum_size=20,
        window_quanta=3,
        high_state_threshold=3,
        ec_threshold=0.2,
        node_grace_quanta=1,
        require_noun=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def regime(name):
    """(messages, config) for one golden regime — all inputs seed-pinned."""
    if name == "bursty":
        # require_noun=True: the noun filter must survive the refactor too.
        return bursty_stream(11, 700), make_config(require_noun=True)
    if name == "uniform":
        return uniform_stream(13, 700), make_config()
    config = make_config()
    period = config.quantum_size * config.window_quanta
    return reentry_stream(17, 700, period), config


MODES = {
    "serial": {},
    "workers4": dict(workers=4, worker_backend="thread"),
}

GOLDEN = {
    ("bursty", "serial"): "58c1c44c2bd0d7bd6eadb0de19e21fd420ba24fb2c7c6c584c63c6e0d6ec6ca6",
    ("bursty", "workers4"): "58c1c44c2bd0d7bd6eadb0de19e21fd420ba24fb2c7c6c584c63c6e0d6ec6ca6",
    ("uniform", "serial"): "447d06d45ec782a5f3f775d138d0550f80c836e2708f1017c7eeda9dc10c5aa0",
    ("uniform", "workers4"): "447d06d45ec782a5f3f775d138d0550f80c836e2708f1017c7eeda9dc10c5aa0",
    ("reentry", "serial"): "35f0494de5e6c06cb57acde736619a8bd359eca90b5a510973e9e94796865652",
    ("reentry", "workers4"): "35f0494de5e6c06cb57acde736619a8bd359eca90b5a510973e9e94796865652",
}


@pytest.mark.parametrize("name", ["bursty", "uniform", "reentry"])
@pytest.mark.parametrize("mode", ["serial", "workers4"])
def test_keyword_path_matches_pre_refactor_golden(name, mode, tmp_path):
    messages, config = regime(name)
    structure = run_structure(
        messages, config, tmp_path / "golden.ckpt", **MODES[mode]
    )
    assert fingerprint(structure) == GOLDEN[(name, mode)], (
        f"keyword-path fingerprint diverged from the pre-refactor pipeline "
        f"({name}, {mode})"
    )


def _generate():
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        for name in ("bursty", "uniform", "reentry"):
            for mode, kwargs in MODES.items():
                messages, config = regime(name)
                structure = run_structure(
                    messages, config, Path(tmp) / "g.ckpt", **kwargs
                )
                print(f'    ("{name}", "{mode}"): "{fingerprint(structure)}",')


if __name__ == "__main__":
    _generate()
