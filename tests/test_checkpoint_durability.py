"""Crash-injection: checkpoint writes fail loudly and leave no wreckage.

Fault-injects the OS layer (``os.replace``, ``os.fsync``, partial writes)
under monolithic snapshots and tears delta logs at arbitrary byte offsets.
The invariants: a failed write raises :class:`CheckpointError` and leaves
the previous checkpoint bytes intact with no scratch-file litter; a torn
delta log loads to its last consistent quantum boundary; anything the
reader cannot prove consistent raises readably — silently wrong state is
never an outcome.
"""

import json
import os
import struct
import threading
import zlib
from pathlib import Path

import pytest

from repro.api.checkpoint import (
    fsync_dir,
    load_checkpoint,
    save_checkpoint,
)
from repro.api.deltalog import (
    _LOG_MAGIC,
    DELTA_FORMAT,
    DELTA_VERSION,
    DeltaCheckpointWriter,
    encode_frame,
    read_manifest,
    write_manifest,
)
from repro.errors import CheckpointError

STATE = {"quantum": 3, "payload": [1, 2.5, ("a", "b"), {"x": {1, 2}}]}
NEXT = {"quantum": 4, "payload": [2, 2.5, ("a", "c"), {"x": {1, 2, 3}}]}


def write_good_checkpoint(path):
    save_checkpoint(path, STATE)
    return Path(path).read_bytes()


# ---------------------------------------------------------- monolithic file


class TestSnapshotFaults:
    def test_failed_replace_keeps_previous_bytes_and_no_litter(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.ckpt"
        before = write_good_checkpoint(target)

        def exploding_replace(src, dst):
            raise OSError("injected: rename failed")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(CheckpointError, match="injected"):
            save_checkpoint(target, NEXT)
        monkeypatch.undo()
        assert target.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_checkpoint(target) == STATE

    def test_failed_fsync_keeps_previous_bytes_and_no_litter(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "state.ckpt"
        before = write_good_checkpoint(target)

        def exploding_fsync(fd):
            raise OSError("injected: fsync failed")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(CheckpointError, match="injected"):
            save_checkpoint(target, NEXT)
        monkeypatch.undo()
        assert target.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_partial_write_cleans_scratch(self, tmp_path, monkeypatch):
        """A write that dies mid-payload (ENOSPC-style) must not leave a
        half-written scratch file behind."""
        target = tmp_path / "state.ckpt"
        before = write_good_checkpoint(target)
        real_fdopen = os.fdopen

        class ChokingFile:
            def __init__(self, fh):
                self._fh = fh
                self._written = 0

            def write(self, data):
                if self._written + len(data) > 40:
                    raise OSError(28, "injected: no space left on device")
                self._written += len(data)
                return self._fh.write(data)

            def __getattr__(self, name):
                return getattr(self._fh, name)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return self._fh.__exit__(*exc)

        monkeypatch.setattr(
            os, "fdopen", lambda fd, *a, **k: ChokingFile(
                real_fdopen(fd, *a, **k)
            )
        )
        with pytest.raises(CheckpointError, match="injected"):
            save_checkpoint(target, NEXT)
        monkeypatch.undo()
        assert target.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_non_oserror_failure_also_cleans_scratch(self, tmp_path):
        """Cleanup must run on *all* failure paths, not just OSError —
        an unserializable object raises CheckpointError from the codec."""
        target = tmp_path / "state.ckpt"
        before = write_good_checkpoint(target)
        with pytest.raises(CheckpointError):
            save_checkpoint(target, {"bad": object()})
        assert target.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []

    def test_save_fsyncs_the_parent_directory(self, tmp_path, monkeypatch):
        """The rename itself must be made durable: save_checkpoint has to
        fsync a descriptor opened on the parent directory."""
        synced = []
        real_fsync = os.fsync
        real_fstat = os.fstat

        def spying_fsync(fd):
            mode = real_fstat(fd).st_mode
            import stat

            if stat.S_ISDIR(mode):
                synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        save_checkpoint(tmp_path / "state.ckpt", STATE)
        assert synced, "no directory fsync observed after the rename"

    def test_preexisting_sentinel_tmp_is_untouched(self, tmp_path):
        """The scratch name is unique per write (mkstemp), so a fixed
        ``<name>.tmp`` belonging to someone else survives a snapshot."""
        target = tmp_path / "state.ckpt"
        sentinel = tmp_path / "state.ckpt.tmp"
        sentinel.write_text("not yours")
        save_checkpoint(target, STATE)
        assert sentinel.read_text() == "not yours"
        assert load_checkpoint(target) == STATE

    def test_concurrent_snapshots_to_same_target(self, tmp_path):
        """Racing writers must never corrupt the target: the final file is
        one writer's complete, valid checkpoint."""
        target = tmp_path / "state.ckpt"
        states = [
            {"quantum": i, "payload": list(range(i * 50))} for i in range(8)
        ]
        errors = []

        def writer(state):
            try:
                for _ in range(5):
                    save_checkpoint(target, state)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(s,)) for s in states
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert load_checkpoint(target) in states
        assert list(tmp_path.glob("*.tmp")) == []

    def test_truncated_checkpoint_file_raises_readably(self, tmp_path):
        target = tmp_path / "state.ckpt"
        write_good_checkpoint(target)
        data = target.read_bytes()
        target.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(target)

    def test_fsync_dir_on_unreadable_path_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="fsync"):
            fsync_dir(tmp_path / "does-not-exist")


# ------------------------------------------------------------- delta log


def build_delta_dir(tmp_path, n_appends=3):
    d = tmp_path / "d"
    writer = DeltaCheckpointWriter(d, compact_ratio=1e9)
    state = {"quantum": 0, "payload": {"keys": set(), "log": []}}
    writer.start(state)
    states = [state]
    for q in range(1, n_appends + 1):
        state = {
            "quantum": q,
            "payload": {
                "keys": set(range(q * 3)),
                "log": [[f"k{i}", i * 1.5] for i in range(q * 4)],
            },
        }
        writer.append(state)
        states.append(state)
    writer.close()
    return d, states


class TestDeltaLogFaults:
    def test_truncation_at_every_byte_loads_a_quantum_boundary(
        self, tmp_path
    ):
        d, states = build_delta_dir(tmp_path)
        manifest = read_manifest(d)
        log = d / manifest["log"]
        data = log.read_bytes()
        for cut in range(len(_LOG_MAGIC), len(data)):
            log.write_bytes(data[:cut])
            state = load_checkpoint(d)
            # whatever the tear, the result is one of the exact states
            # the leader logged — never a blend
            assert state in states
        log.write_bytes(data)
        assert load_checkpoint(d) == states[-1]

    def test_corrupted_mid_log_record_loads_prefix(self, tmp_path):
        d, states = build_delta_dir(tmp_path)
        manifest = read_manifest(d)
        log = d / manifest["log"]
        data = bytearray(log.read_bytes())
        # flip a byte inside the second frame's payload
        header = struct.Struct(">II")
        first_len = header.unpack_from(data, len(_LOG_MAGIC))[0]
        second_payload = len(_LOG_MAGIC) + header.size + first_len + header.size
        data[second_payload + 1] ^= 0xFF
        log.write_bytes(bytes(data))
        assert load_checkpoint(d) == states[1]

    def test_discontinuous_log_raises(self, tmp_path):
        d, states = build_delta_dir(tmp_path)
        manifest = read_manifest(d)
        log = d / manifest["log"]
        with open(log, "ab") as fh:
            fh.write(encode_frame({"q": 99, "op": None}))
        with pytest.raises(CheckpointError, match="discontinuous"):
            load_checkpoint(d)

    def test_checksummed_garbage_record_raises(self, tmp_path):
        d, _ = build_delta_dir(tmp_path)
        manifest = read_manifest(d)
        log = d / manifest["log"]
        payload = b"}{ not json"
        with open(log, "ab") as fh:
            fh.write(
                struct.Struct(">II").pack(
                    len(payload), zlib.crc32(payload)
                )
                + payload
            )
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(d)

    def test_garbage_manifest_raises_readably(self, tmp_path):
        d, _ = build_delta_dir(tmp_path)
        (d / "MANIFEST.json").write_text("}{")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load_checkpoint(d)
        (d / "MANIFEST.json").write_text(json.dumps({"format": "nope"}))
        with pytest.raises(CheckpointError, match="manifest"):
            load_checkpoint(d)
        (d / "MANIFEST.json").write_text(
            json.dumps({"format": DELTA_FORMAT, "version": 99})
        )
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(d)
        (d / "MANIFEST.json").write_text(
            json.dumps({"format": DELTA_FORMAT, "version": DELTA_VERSION})
        )
        with pytest.raises(CheckpointError, match="missing"):
            load_checkpoint(d)

    def test_missing_base_raises_readably(self, tmp_path):
        d, _ = build_delta_dir(tmp_path)
        manifest = read_manifest(d)
        (d / manifest["base"]).unlink()
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(d)

    def test_base_quantum_mismatch_raises(self, tmp_path):
        d, states = build_delta_dir(tmp_path)
        manifest = read_manifest(d)
        manifest["base_quantum"] = 42
        write_manifest(d, manifest)
        with pytest.raises(CheckpointError, match="manifest says"):
            load_checkpoint(d)

    def test_failed_append_breaks_the_writer(self, tmp_path, monkeypatch):
        d = tmp_path / "d"
        writer = DeltaCheckpointWriter(d, compact_ratio=1e9)
        writer.start({"quantum": 0, "x": 1})

        def exploding_fsync(fd):
            raise OSError("injected: fsync failed")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(CheckpointError, match="injected"):
            writer.append({"quantum": 1, "x": 2})
        monkeypatch.undo()
        # the tail may be torn now: the writer must refuse to continue
        with pytest.raises(CheckpointError, match="broken"):
            writer.append({"quantum": 2, "x": 3})
        writer.close()
        # the directory still loads (torn tail = consistent prefix) and a
        # fresh leader attaches with a new generation
        state = load_checkpoint(d)
        assert state["quantum"] in (0, 1)
        successor = DeltaCheckpointWriter(d)
        successor.start(state)
        assert successor.generation == 1
        successor.append({**state, "quantum": state["quantum"] + 1})
        successor.close()
        assert load_checkpoint(d)["quantum"] == state["quantum"] + 1

    def test_append_fsyncs_log_and_directory(self, tmp_path, monkeypatch):
        import stat

        d, _ = build_delta_dir(tmp_path, n_appends=0)
        writer = DeltaCheckpointWriter(tmp_path / "d2", compact_ratio=1e9)
        writer.start({"quantum": 0, "x": 0})
        synced = {"file": 0, "dir": 0}
        real_fsync = os.fsync
        real_fstat = os.fstat

        def spying_fsync(fd):
            kind = (
                "dir"
                if stat.S_ISDIR(real_fstat(fd).st_mode)
                else "file"
            )
            synced[kind] += 1
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spying_fsync)
        writer.append({"quantum": 1, "x": 1})
        assert synced["file"] >= 1 and synced["dir"] >= 1
        writer.close()
