"""Shared golden-fingerprint machinery for seed-pinned parity tests.

The extractor refactor (PR 5) promises that the default keyword path stays
*bit-identical* to the pre-refactor pipeline: same reports, same sink
events, same event histories, same checkpoint contents.  The hashes pinned
in ``tests/test_extractor_parity.py`` were generated against the
pre-refactor tree with exactly the canonicalization below, so any semantic
drift in the keyword path — ranks, filter verdicts, lifecycle transitions,
window state — flips a fingerprint and fails the golden test.

Everything here must therefore be **deterministic and layout-agnostic**:

* floats go through ``repr`` (shortest-roundtrip — exact);
* sets / frozensets / dicts are canonically sorted (no iteration-order or
  hash-randomization leakage);
* checkpoint state is normalized: wall-clock timings are zeroed and the
  keys whose *shape* legitimately changed with the extractor refactor
  (extractor identity, the custom-extractor flag) are dropped, so the same
  stream position fingerprints identically before and after the refactor.
"""

from __future__ import annotations

import hashlib
import json
import random

from repro.api import QueueSink, open_session
from repro.api.checkpoint import load_checkpoint

# ---------------------------------------------------------- stream regimes
#
# The three regimes of the AKG property tests (bursty / uniform / window
# re-entry), self-contained here so the golden streams can never drift with
# another test module's edits.


def bursty_stream(seed, n):
    rng = random.Random(seed)
    keywords = [f"k{i}" for i in range(6)]
    return [
        (f"u{rng.randrange(20)}", tuple(rng.sample(keywords, rng.randint(2, 4))))
        for _ in range(n)
    ]


def uniform_stream(seed, n):
    rng = random.Random(seed)
    keywords = [f"w{i}" for i in range(40)]
    return [
        (f"u{rng.randrange(60)}", tuple(rng.sample(keywords, rng.randint(1, 3))))
        for _ in range(n)
    ]


def reentry_stream(seed, n, period):
    rng = random.Random(seed)
    group_a = [f"a{i}" for i in range(4)]
    group_b = [f"b{i}" for i in range(4)]
    return [
        (
            f"u{rng.randrange(15)}",
            tuple(
                rng.sample(
                    group_a if (i // period) % 2 == 0 else group_b,
                    rng.randint(2, 3),
                )
            ),
        )
        for i in range(n)
    ]


# ---------------------------------------------------------- canonical form


def canonical(obj):
    """Recursively convert ``obj`` into a JSON-stable canonical structure."""
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return ["f", repr(obj)]
    if isinstance(obj, (list, tuple)):
        return ["l", [canonical(x) for x in obj]]
    if isinstance(obj, (set, frozenset)):
        items = [canonical(x) for x in obj]
        return ["s", sorted(items, key=lambda i: json.dumps(i, sort_keys=True))]
    if isinstance(obj, dict):
        pairs = [[canonical(k), canonical(v)] for k, v in obj.items()]
        return [
            "d",
            sorted(pairs, key=lambda p: json.dumps(p[0], sort_keys=True)),
        ]
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def fingerprint(structure) -> str:
    """sha256 over the canonical JSON rendering of ``structure``."""
    blob = json.dumps(
        canonical(structure), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------- records


def report_record(report) -> dict:
    """Everything consumer-visible in one QuantumReport (no wall clocks)."""
    stats = report.akg_stats
    return {
        "quantum": report.quantum,
        "messages": report.messages_processed,
        "reported": sorted(
            [
                e.event_id,
                sorted(e.keywords),
                e.rank,
                e.support,
                e.size,
                e.num_edges,
                e.born_quantum,
            ]
            for e in report.reported
        ),
        "suppressed": sorted(
            [e.event_id, sorted(e.keywords), e.rank, e.support]
            for e in report.suppressed
        ),
        "new": sorted(report.new_event_ids),
        "dead": sorted(report.dead_event_ids),
        "changes": report.changes,
        "dirty": report.dirty_clusters,
        "ranked": report.ranked_clusters,
        "cache_hits": report.rank_cache_hits,
        "akg": None
        if stats is None
        else [
            stats.bursty_keywords,
            stats.nodes_added,
            stats.nodes_removed_stale,
            stats.nodes_removed_lazy,
            stats.edges_added,
            stats.edges_removed,
            stats.edges_refreshed,
            stats.node_weight_deltas,
            stats.candidate_pairs,
            stats.ec_computations,
            stats.removal_candidates,
            stats.akg_nodes,
            stats.akg_edges,
        ],
    }


def note_record(event) -> list:
    return [
        event.kind.value,
        event.quantum,
        event.event_id,
        sorted(event.keywords),
        event.rank,
        event.size,
        event.previous_rank,
        event.previous_size,
    ]


def history_record(record) -> list:
    return [
        record.event_id,
        record.born_quantum,
        record.died_quantum,
        record.absorbed_into,
        list(record.gaps),
        [
            [s.quantum, sorted(s.keywords), s.rank, s.support, s.num_edges]
            for s in record.snapshots
        ],
    ]


def normalized_checkpoint_state(path) -> dict:
    """Checkpoint state with wall clocks zeroed and refactor-variant keys
    dropped (extractor identity is *new* state; the timings breakdown is
    wall-clock noise whose slot names changed with the stage rename)."""
    state = dict(load_checkpoint(path))
    state.pop("custom_tokenizer", None)
    state.pop("custom_extractor", None)
    state.pop("extractor", None)
    state["total_seconds"] = 0.0
    state["timings"] = None
    maintainer = dict(state["maintainer"])
    maintainer["clustering_seconds"] = 0.0
    state["maintainer"] = maintainer
    config = dict(state["config"])
    config.pop("extractor", None)
    config.pop("extractor_options", None)
    state["config"] = config
    return state


def run_structure(messages, config, ckpt_path, **session_kwargs) -> dict:
    """One full session pass over ``messages``: the golden structure.

    ``messages`` are ``(user_id, tokens)`` pairs (the regime builders'
    output), materialized here so the builders stay Message-class agnostic.
    """
    from repro.stream.messages import Message

    session = open_session(config, **session_kwargs)
    inbox = QueueSink()
    session.subscribe(inbox)
    reports = list(
        session.ingest_many(Message(u, tokens=t) for u, t in messages)
    )
    session.snapshot(ckpt_path)
    structure = {
        "reports": [report_record(r) for r in reports],
        "notes": [note_record(e) for e in inbox.drain()],
        "histories": sorted(history_record(r) for r in session.events()),
        "checkpoint": normalized_checkpoint_state(ckpt_path),
    }
    session.close()
    return structure
