"""Quasi-clique predicates and the paper's Theorem 1 prerequisites."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    complete_clique,
    cycle_graph,
    gnp_random_graph,
    random_mqc,
)
from repro.graph.quasi_clique import (
    gamma_density,
    graph_diameter,
    is_complete_clique,
    is_majority_quasi_clique,
    is_quasi_clique,
)

from helpers import graph_from_edges


class TestGammaDensity:
    def test_clique_has_gamma_one(self):
        assert gamma_density(complete_clique(5)) == 1.0

    def test_cycle_gamma(self):
        # every node has degree 2, N - 1 = 4
        assert gamma_density(cycle_graph(5)) == pytest.approx(0.5)

    def test_biconnected_component_lower_bound(self):
        # paper: a biconnected component has gamma = 2 / (N - 1)
        graph = cycle_graph(9)
        assert gamma_density(graph) == pytest.approx(2 / 8)

    def test_single_node(self):
        assert gamma_density({0: set()}) == 0.0


class TestPredicates:
    def test_clique_is_everything(self):
        clique = complete_clique(6)
        assert is_complete_clique(clique)
        assert is_majority_quasi_clique(clique)
        assert is_quasi_clique(clique, 0.99)

    def test_paper_figure_3a_seven_node_mqc(self):
        """An MQC of size 7 needs min degree ceil(6 / 2) = 3."""
        graph = random_mqc(7, seed=1)
        assert is_majority_quasi_clique(graph)
        assert min(graph.degree(n) for n in graph.nodes()) >= 3

    def test_star_not_mqc(self):
        star = graph_from_edges([(0, i) for i in range(1, 6)])
        assert not is_majority_quasi_clique(star)

    def test_empty_graph_not_quasi_clique(self):
        assert not is_quasi_clique({}, 0.5)


class TestDiameter:
    def test_clique_diameter_one(self):
        """Definition 1: the diameter of a complete clique is 1."""
        assert graph_diameter(complete_clique(4)) == 1

    def test_cycle_diameter(self):
        assert graph_diameter(cycle_graph(6)) == 3

    def test_disconnected_none(self):
        assert graph_diameter(graph_from_edges([(0, 1), (2, 3)])) is None

    def test_empty_none(self):
        assert graph_diameter({}) is None

    @given(st.integers(4, 9), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_mqc_diameter_at_most_two(self, n, seed):
        """[15]: gamma >= 1/2 implies diameter <= 2 — the fact Theorem 1's
        proof rests on."""
        graph = random_mqc(n, seed=seed)
        assert graph_diameter(graph) <= 2
