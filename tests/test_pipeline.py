"""The composable Stage pipeline and the incremental report index."""

import pytest

from repro.api import open_session
from repro.config import DetectorConfig
from repro.errors import PipelineError
from repro.pipeline import (
    Pipeline,
    QuantumContext,
    ReportedEvent,
    Stage,
    ThresholdIndex,
)
from repro.stream.messages import Message


def exact_config(**overrides):
    base = dict(
        quantum_size=6,
        window_quanta=5,
        high_state_threshold=2,
        ec_threshold=0.1,
        use_minhash_filter=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def burst(keywords, users):
    return [Message(f"u{u}", tokens=tuple(keywords)) for u in users]


def event(event_id, rank, size=3, keywords=None):
    return ReportedEvent(
        event_id=event_id,
        keywords=frozenset(keywords or {f"w{event_id}"}),
        rank=rank,
        support=rank,
        size=size,
        num_edges=size,
        born_quantum=0,
    )


class TestPipelineAssembly:
    def test_default_pipeline_has_six_named_stages(self):
        session = open_session(exact_config())
        assert session.pipeline.names() == [
            "extract",
            "akg_update",
            "maintain",
            "propagate",
            "rank",
            "report",
        ]

    def test_stage_protocol_runtime_checkable(self):
        session = open_session(exact_config())
        for stage in session.pipeline.stages:
            assert isinstance(stage, Stage)

    def test_stage_lookup(self):
        session = open_session(exact_config())
        assert session.pipeline.stage("rank").name == "rank"
        with pytest.raises(PipelineError):
            session.pipeline.stage("shard")

    def test_stages_write_their_own_timing_slots(self):
        session = open_session(exact_config())
        report = session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        timings = report.timings.as_dict()
        assert set(timings) == {
            "extract", "akg_update", "maintain", "propagate", "rank",
            "report", "scatter", "exchange", "overlap_saved",
        }
        assert all(t >= 0.0 for t in timings.values())
        # legacy read-only alias for the pre-refactor slot name
        assert report.timings.tokenize == report.timings.extract

    def test_wrapped_stage_composes(self):
        """A stage can be wrapped without the pipeline noticing — the
        swap/wrap seam the Stage extraction exists for."""

        class CountingStage:
            def __init__(self, inner):
                self.inner = inner
                self.name = inner.name
                self.calls = 0

            def run(self, ctx):
                self.calls += 1
                self.inner.run(ctx)

        plain = open_session(exact_config())
        wrapped = open_session(exact_config())
        counter = CountingStage(wrapped.pipeline.stage("rank"))
        wrapped.pipeline.stages[wrapped.pipeline.names().index("rank")] = counter

        quanta = [
            burst(["a1", "b1", "c1"], range(6)),
            burst(["a1", "b1", "c1", "d1"], range(4)),
        ]
        for batch in quanta:
            a = plain.process_quantum(batch)
            b = wrapped.process_quantum(list(batch))
            key = lambda e: (e.event_id, e.keywords, e.rank)
            assert [key(e) for e in a.reported] == [key(e) for e in b.reported]
        assert counter.calls == len(quanta)

    def test_custom_stage_appended(self):
        """Extra stages ride at the end of the pipeline and see the report."""
        session = open_session(exact_config())
        seen = []

        class AuditStage:
            name = "audit"

            def run(self, ctx):
                seen.append((ctx.quantum, len(ctx.report.reported)))

        session.pipeline.stages.append(AuditStage())
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert seen == [(0, 1)]

    def test_context_carries_typed_products(self):
        session = open_session(exact_config())
        captured = {}

        class CaptureStage:
            name = "capture"

            def run(self, ctx):
                captured.update(
                    batch=ctx.batch, dirty=ctx.dirty, ranked=ctx.ranked
                )

        session.pipeline.stages.append(CaptureStage())
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert len(captured["batch"]) > 0
        assert captured["dirty"] == {1}
        assert len(captured["ranked"]) == 1

    def test_pipeline_run_returns_context(self):
        pipeline = Pipeline([])
        ctx = QuantumContext(quantum=0, messages=[])
        assert pipeline.run(ctx) is ctx


class TestThresholdIndex:
    def test_update_and_filter_split(self):
        index = ThresholdIndex(lambda e: e.rank >= 10.0)
        assert index.update(event(1, rank=20.0)) is True
        assert index.update(event(2, rank=5.0)) is True
        assert index.update(event(1, rank=25.0)) is False  # refresh, not new
        assert [e.event_id for e in index.reported()] == [1]
        assert [e.event_id for e in index.suppressed()] == [2]
        assert index.alive_ids() == {1, 2}

    def test_reported_order_rank_desc_stable_by_id(self):
        index = ThresholdIndex(lambda e: True)
        index.update(event(3, rank=7.0))
        index.update(event(1, rank=9.0))
        index.update(event(2, rank=7.0))
        assert [e.event_id for e in index.reported()] == [1, 2, 3]

    def test_remove(self):
        index = ThresholdIndex(lambda e: True)
        index.update(event(1, rank=1.0))
        assert index.remove(1) is True
        assert index.remove(1) is False
        assert index.reported() == []

    def test_top_k(self):
        index = ThresholdIndex(lambda e: e.rank >= 2.0)
        for cid in range(1, 6):
            index.update(event(cid, rank=float(cid)))
        assert [e.event_id for e in index.top(2)] == [5, 4]
        # suppressed entries never appear in the top-k view
        assert all(e.rank >= 2.0 for e in index.top(10))

    def test_rebuild_reports_membership_delta(self):
        index = ThresholdIndex(lambda e: True)
        index.update(event(1, rank=1.0))
        index.update(event(2, rank=2.0))
        new, dead = index.rebuild([event(2, rank=3.0), event(5, rank=5.0)])
        assert new == {5}
        assert dead == {1}
        assert index.alive_ids() == {2, 5}

    def test_returned_lists_are_copies(self):
        index = ThresholdIndex(lambda e: True)
        index.update(event(1, rank=1.0))
        first = index.reported()
        first.clear()
        assert [e.event_id for e in index.reported()] == [1]


class TestChurnProportionalReporting:
    def test_unchanged_quantum_evaluates_no_filters(self):
        """The regression the satellite exists for: a quantum that dirties
        nothing must not re-filter the live result list."""
        session = open_session(exact_config())
        messages = burst(["a1", "b1", "c1"], range(6))
        session.process_quantum(messages)
        before = session.report_index.filter_evaluations
        report = session.process_quantum(list(messages))
        after = session.report_index.filter_evaluations
        assert report.rank_cache_hits == 1  # cluster itself not re-ranked
        assert after == before  # ...and not re-filtered either

    def test_filter_evaluations_track_dirty_set(self):
        session = open_session(exact_config())
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        baseline = session.report_index.filter_evaluations
        # second, disjoint cluster: only the new cluster is evaluated
        session.process_quantum(burst(["x1", "y1", "z1"], range(10, 16)))
        assert session.report_index.filter_evaluations == baseline + 1

    def test_index_matches_report_contents(self):
        session = open_session(exact_config(rank_threshold_scale=100.0))
        report = session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.reported == []
        assert len(report.suppressed) == 1
        assert session.report_index.alive_ids() == {1}
