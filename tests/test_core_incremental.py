"""IncrementalRanker: cache behaviour, dirt propagation, oracle parity."""

import pytest

from repro.core.changelog import NodeWeightChanged
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer


@pytest.fixture
def maintainer():
    return ClusterMaintainer()


def build(maintainer, edges):
    for u, v in edges:
        maintainer.graph.ensure_node(u)
        maintainer.graph.ensure_node(v)
        maintainer.add_edge(u, v)
    return maintainer


def make_rankers(maintainer, weights, min_size=3):
    """An incremental ranker and a from-scratch oracle over shared state."""

    def weight_fn(nodes):
        return {n: weights.get(n, 1.0) for n in nodes}

    incremental = IncrementalRanker(
        maintainer.registry, maintainer.graph, weight_fn,
        min_cluster_size=min_size,
    )
    oracle = IncrementalRanker(
        maintainer.registry, maintainer.graph, weight_fn,
        min_cluster_size=min_size, oracle=True,
    )
    return incremental, oracle


def ranks_of(ranker):
    return {c.cluster_id: (r, s) for c, r, s in ranker.rank_all()}


class TestIncrementalRanking:
    def test_matches_oracle_after_build(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"),
                           ("d", "e"), ("c", "e")])
        incremental, oracle = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle)

    def test_unchanged_clusters_served_from_cache(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        incremental, _ = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()
        assert incremental.stats.recomputed == 1
        incremental.apply(maintainer.drain_changes())  # empty batch
        incremental.rank_all()
        assert incremental.stats.recomputed == 0
        assert incremental.stats.cache_hits == 1

    def test_node_weight_delta_dirties_only_containing_cluster(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c"),
                           ("x", "y"), ("y", "z"), ("x", "z")])
        weights = {}
        incremental, oracle = make_rankers(maintainer, weights)
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()

        weights["a"] = 5.0
        maintainer.changelog.record(NodeWeightChanged("a", 1.0, 5.0))
        dirty = incremental.apply(maintainer.drain_changes())
        abc = next(iter(maintainer.registry.clusters_of_node("a")))
        assert dirty == {abc}
        assert ranks_of(incremental) == ranks_of(oracle)
        assert incremental.stats.recomputed == 1
        assert incremental.stats.cache_hits == 1  # the xyz triangle

    def test_edge_weight_delta_dirties_owner(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c"),
                           ("x", "y"), ("y", "z"), ("x", "z")])
        incremental, oracle = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        before = ranks_of(incremental)

        maintainer.set_edge_weight("a", "b", 0.25)  # listener records delta
        incremental.apply(maintainer.drain_changes())
        after = ranks_of(incremental)
        abc = maintainer.registry.cluster_of_edge("a", "b")
        xyz = maintainer.registry.cluster_of_edge("x", "y")
        assert after[abc] != before[abc]
        assert after[xyz] == before[xyz]
        assert after == ranks_of(oracle)

    def test_dissolve_evicts_cache_entry(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        incremental, oracle = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()

        maintainer.remove_edge("a", "b")  # triangle dissolves
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle) == {}
        assert not incremental._cache

    def test_edge_removal_without_split_still_dirties(self, maintainer):
        """Regression: deleting one K4 edge leaves a single glued cluster
        (two triangles sharing an edge), so the re-glue confirms it
        "intact" — but it lost an edge and its rank changed, so an event
        must still be emitted or the cache serves a stale rank."""
        build(maintainer, [("a", "b"), ("a", "c"), ("a", "d"),
                           ("b", "c"), ("b", "d"), ("c", "d")])
        incremental, oracle = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()

        maintainer.remove_edge("a", "b")
        assert len(maintainer.registry) == 1  # no split happened
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle)

    def test_node_removal_without_split_still_dirties(self, maintainer):
        """Same hole via NodeDeletion: K5 minus a node is a K4 that re-glues
        into a single unchanged-looking (post-release) cluster."""
        nodes = ["a", "b", "c", "d", "e"]
        build(maintainer, [(u, v) for i, u in enumerate(nodes)
                           for v in nodes[i + 1:]])
        incremental, oracle = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()

        maintainer.remove_node("e")
        assert len(maintainer.registry) == 1
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle)

    def test_split_rank_parity(self, maintainer):
        # two triangles joined at a shared edge form one cluster; deleting a
        # bridge-side edge splits it
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c"),
                           ("b", "d"), ("c", "d")])
        incremental, oracle = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()

        maintainer.remove_edge("a", "b")
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle)

    def test_min_cluster_size_skips_and_drops(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        incremental, oracle = make_rankers(maintainer, {}, min_size=4)
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle) == {}

    def test_verify_against_oracle_passes_when_clean(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        incremental, _ = make_rankers(maintainer, {})
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()
        incremental.verify_against_oracle()

    def test_rank_stage_work_scales_with_dirty_only(self, maintainer):
        """ROADMAP regression: the ranked-result list is maintained in
        place, so a quantum that dirties one cluster performs exactly one
        cluster visit and one weight lookup — no O(live clusters) sweep."""
        n_clusters = 40
        for c in range(n_clusters):
            nodes = [f"k{c}_{i}" for i in range(3)]
            for n in nodes:
                maintainer.graph.ensure_node(n)
            for i, u in enumerate(nodes):
                for v in nodes[i + 1:]:
                    maintainer.add_edge(u, v, 0.5)
        weights = {}
        weight_calls = []

        def weight_fn(nodes):
            weight_calls.append(set(nodes))
            return {n: weights.get(n, 1.0) for n in nodes}

        incremental = IncrementalRanker(
            maintainer.registry, maintainer.graph, weight_fn,
        )
        oracle = IncrementalRanker(
            maintainer.registry, maintainer.graph, weight_fn, oracle=True,
        )
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()  # warm: every cluster computed once
        assert incremental.stats.recomputed == n_clusters

        weight_calls.clear()
        weights["k7_0"] = 9.0
        maintainer.changelog.record(NodeWeightChanged("k7_0", 1.0, 9.0))
        incremental.apply(maintainer.drain_changes())
        ranked = incremental.rank_all()
        stats = incremental.stats
        assert stats.dirty_processed == 1
        assert stats.recomputed == 1
        assert stats.live == stats.ranked == n_clusters
        assert stats.cache_hits == n_clusters - 1
        # the one dirty cluster's nodes are the only weight lookups made
        assert weight_calls == [{"k7_0", "k7_1", "k7_2"}]
        assert {c.cluster_id: (r, s) for c, r, s in ranked} == ranks_of(oracle)

        # a no-change quantum performs zero per-cluster work
        weight_calls.clear()
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()
        assert incremental.stats.dirty_processed == 0
        assert incremental.stats.recomputed == 0
        assert weight_calls == []

    def test_cluster_growth_across_min_size_enters_result_list(self, maintainer):
        """Without a registry sweep, list membership must be driven purely
        by dirty events: a cluster crossing min_cluster_size in either
        direction enters/leaves the maintained results."""
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        incremental, oracle = make_rankers(maintainer, {}, min_size=4)
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle) == {}
        # grow the triangle into a K4: size 4 now clears min_cluster_size
        maintainer.graph.ensure_node("d")
        for other in ("a", "b", "c"):
            maintainer.add_edge("d", other)
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle)
        assert len(ranks_of(incremental)) == 1
        # shrink back below the threshold
        maintainer.remove_node("d")
        incremental.apply(maintainer.drain_changes())
        assert ranks_of(incremental) == ranks_of(oracle) == {}

    def test_output_order_stable_under_evict_and_reenter(self, maintainer):
        """An entry evicted (size dip) and re-inserted must not migrate to
        the end of the returned ranking: both modes order by cluster id, so
        tie-ranked events downstream are emitted identically."""
        nodes1 = ["a", "b", "c", "d"]
        nodes2 = ["w", "x", "y", "z"]
        for group in (nodes1, nodes2):
            for n in group:
                maintainer.graph.ensure_node(n)
            for i, u in enumerate(group):
                for v in group[i + 1:]:
                    maintainer.add_edge(u, v)
        incremental, oracle = make_rankers(maintainer, {}, min_size=4)
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()
        # cluster 1 dips below min size (evicted) and regrows (re-inserted)
        maintainer.remove_node("d")
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()
        maintainer.graph.ensure_node("d")
        for other in ("a", "b", "c"):
            maintainer.add_edge("d", other)
        incremental.apply(maintainer.drain_changes())
        inc_ids = [c.cluster_id for c, _, _ in incremental.rank_all()]
        ora_ids = [c.cluster_id for c, _, _ in oracle.rank_all()]
        assert inc_ids == ora_ids == sorted(inc_ids)

    def test_ranker_over_prepopulated_registry_ranks_without_apply(self, maintainer):
        """A ranker constructed after the world was built must rank the
        existing clusters on its first rank_all, even with no batch applied
        — pre-existing clusters are seeded dirty at construction."""
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        maintainer.drain_changes()  # events consumed by nobody
        incremental, oracle = make_rankers(maintainer, {})
        assert ranks_of(incremental) == ranks_of(oracle)
        assert len(ranks_of(incremental)) == 1

    def test_verify_against_oracle_detects_staleness(self, maintainer):
        """An un-propagated weight change must trip the verifier — this is
        the guard that the dirty-marking rules are load-bearing."""
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        weights = {}
        incremental, _ = make_rankers(maintainer, weights)
        incremental.apply(maintainer.drain_changes())
        incremental.rank_all()
        weights["a"] = 99.0  # mutate weights without recording a delta
        with pytest.raises(AssertionError):
            incremental.verify_against_oracle()
