"""Synthetic workload generators: determinism, structure, calibration."""

import pytest

from repro.datasets.events import (
    BridgeScript,
    EventScript,
    SpuriousScript,
    chatter_pair_script,
)
from repro.datasets.headlines import headlines_for_trace
from repro.datasets.synthetic import StreamSpec, Trace, generate_stream
from repro.datasets.traces import (
    build_es_trace,
    build_ground_truth_trace,
    build_tw_trace,
)
from repro.datasets.vocab import Vocabulary
from repro.errors import ConfigError


class TestVocabulary:
    def test_words_distinct(self):
        vocab = Vocabulary(size=2000, seed=1)
        assert len(set(vocab.words)) == 2000

    def test_zipf_head_heavier_than_tail(self):
        import numpy as np

        vocab = Vocabulary(size=1000, seed=1)
        rng = np.random.default_rng(0)
        draws = vocab.sample_background(rng, 5000)
        head = sum(1 for w in draws if w in set(vocab.words[:10]))
        tail = sum(1 for w in draws if w in set(vocab.words[-10:]))
        assert head > tail * 5

    def test_event_keywords_disjoint_from_background(self):
        vocab = Vocabulary(size=500, seed=1)
        minted = vocab.make_event_keywords(20)
        assert set(minted).isdisjoint(set(vocab.words))
        assert len(set(minted)) == 20

    def test_event_keywords_tagged(self):
        vocab = Vocabulary(size=500, seed=1)
        word = vocab.make_event_keywords(1, tag="noun")[0]
        assert vocab.lexicon()[word] == "noun"

    def test_pos_mix(self):
        vocab = Vocabulary(size=2000, noun_fraction=0.5, verb_fraction=0.3, seed=1)
        tags = list(vocab.lexicon().values())
        nouns = tags.count("noun") / len(tags)
        assert 0.42 < nouns < 0.58

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            Vocabulary(size=2)
        with pytest.raises(ConfigError):
            Vocabulary(noun_fraction=0.9, verb_fraction=0.5)


class TestEventScripts:
    def make_event(self, **overrides):
        base = dict(
            event_id="e1",
            keywords=["k1", "k2", "k3", "k4"],
            start_message=1000,
            duration_messages=2000,
            total_messages=100,
            n_users=30,
        )
        base.update(overrides)
        return EventScript(**base)

    def test_positions_within_interval(self):
        import numpy as np

        script = self.make_event()
        positions = script.message_positions(np.random.default_rng(0))
        assert len(positions) == 100
        assert positions.min() >= 1000
        assert positions.max() <= 3000

    def test_burst_profile_front_loaded(self):
        import numpy as np

        script = self.make_event(profile="burst")
        positions = script.message_positions(np.random.default_rng(0))
        assert positions.max() <= 1000 + 0.1 * 2000

    def test_ground_truth_discoverability(self):
        # 100 msgs / 2000 duration * (2+4)/2/4 keywords * 2 peak = 0.075/msg
        truth = self.make_event(keywords_per_message=(2, 4)).ground_truth()
        assert truth.peak_keyword_rate == pytest.approx(0.075)
        assert truth.discoverable(quantum_size=160, theta=4)   # 12 >= 4
        assert not truth.discoverable(quantum_size=40, theta=4)  # 3 < 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.make_event(keywords=[])
        with pytest.raises(ConfigError):
            self.make_event(duration_messages=0)
        with pytest.raises(ConfigError):
            self.make_event(keywords_per_message=(3, 2))
        with pytest.raises(ConfigError):
            self.make_event(profile="sinusoid")

    def test_spurious_script_shape(self):
        spur = SpuriousScript(
            event_id="s1",
            keywords=["a", "b", "c"],
            start_message=0,
            duration_messages=1000,
            total_messages=50,
            n_users=10,
        )
        truth = spur.ground_truth()
        assert truth.spurious
        assert spur.to_event_script().profile == "burst"

    def test_chatter_pair(self):
        script = chatter_pair_script("c1", ["x", "y"], 10_000, 300, 50)
        assert script.spurious
        assert script.keywords_per_message == (2, 2)
        with pytest.raises(ConfigError):
            chatter_pair_script("c2", ["x"], 10_000, 300, 50)

    def test_bridge_validation(self):
        with pytest.raises(ConfigError):
            BridgeScript("b1", [], 0, 100, 10, 5)
        bridge = BridgeScript(
            "b1", [("a", "m"), ("m", "b")], 0, 100, 10, 5,
            link_user_sources=["e1", "e2"],
        )
        assert bridge.chain_keywords == ["a", "m", "b"]
        with pytest.raises(ConfigError):
            BridgeScript(
                "b2", [("a", "m")], 0, 100, 10, 5,
                link_user_sources=["e1", "e2"],
            )


class TestGenerateStream:
    def make_spec(self, **overrides):
        vocab = Vocabulary(size=500, seed=2)
        event = EventScript(
            event_id="e1",
            keywords=vocab.make_event_keywords(5),
            start_message=200,
            duration_messages=600,
            total_messages=80,
            n_users=25,
        )
        base = dict(
            total_messages=2000,
            vocabulary=vocab,
            events=[event],
            n_users=200,
            seed=5,
        )
        base.update(overrides)
        return StreamSpec(**base)

    def test_total_message_count(self):
        trace = generate_stream(self.make_spec())
        assert trace.total_messages == 2000

    def test_deterministic(self):
        t1 = generate_stream(self.make_spec())
        t2 = generate_stream(self.make_spec())
        assert [m.tokens for m in t1.messages[:200]] == [
            m.tokens for m in t2.messages[:200]
        ]

    def test_seed_changes_stream(self):
        t1 = generate_stream(self.make_spec(seed=5))
        t2 = generate_stream(self.make_spec(seed=6))
        assert [m.tokens for m in t1.messages[:200]] != [
            m.tokens for m in t2.messages[:200]
        ]

    def test_event_keywords_present_in_interval(self):
        trace = generate_stream(self.make_spec())
        event = trace.ground_truth[0]
        hits = [
            i
            for i, m in enumerate(trace.messages)
            if set(m.tokens) & set(event.keywords)
        ]
        assert len(hits) >= 70  # ~80 planted
        assert min(hits) >= event.start_message - 50
        assert max(hits) <= event.end_message + 50

    def test_every_message_nonempty_with_user(self):
        trace = generate_stream(self.make_spec())
        for message in trace.messages[:500]:
            assert message.tokens
            assert message.user_id.startswith("u")

    def test_lexicon_covers_event_keywords(self):
        trace = generate_stream(self.make_spec())
        for event in trace.ground_truth:
            for kw in event.keywords:
                assert kw in trace.lexicon


class TestTracePresets:
    def test_tw_structure(self):
        trace = build_tw_trace(total_messages=6000, n_events=4, n_spurious=2)
        assert trace.name == "TW"
        assert trace.total_messages == 6000
        assert len(trace.real_events()) == 4
        # chatter pairs and bursts are spurious ground truth
        assert len(trace.spurious_events()) >= 2

    def test_es_density_triple(self):
        tw = build_tw_trace(total_messages=6000, n_events=4)
        es = build_es_trace(total_messages=6000, n_events=12)
        assert len(es.real_events()) == 3 * len(tw.real_events())

    def test_ground_truth_composition(self):
        trace = build_ground_truth_trace(
            total_messages=10_000,
            n_headline_discoverable=5,
            n_headline_subthreshold=4,
            n_local_events=6,
            n_spurious=2,
        )
        headlined = [e for e in trace.ground_truth if e.headlined]
        assert len(headlined) == 9
        locals_ = [
            e
            for e in trace.ground_truth
            if not e.headlined and not e.spurious
        ]
        assert len(locals_) == 6

    def test_subthreshold_events_not_discoverable(self):
        trace = build_ground_truth_trace(
            total_messages=10_000,
            n_headline_discoverable=3,
            n_headline_subthreshold=3,
            n_local_events=2,
            n_spurious=1,
        )
        subs = [e for e in trace.ground_truth if e.event_id.startswith("gt-sub")]
        assert subs
        for event in subs:
            assert not event.discoverable(quantum_size=160, theta=4)

    def test_headlines_follow_events(self):
        trace = build_ground_truth_trace(
            total_messages=10_000,
            n_headline_discoverable=4,
            n_headline_subthreshold=2,
            n_local_events=2,
            n_spurious=1,
        )
        headlines = headlines_for_trace(trace)
        assert len(headlines) == 6
        by_id = {e.event_id: e for e in trace.ground_truth}
        for headline in headlines:
            event = by_id[headline.event_id]
            assert headline.published_message >= event.start_message

    def test_headline_lead_time(self):
        trace = build_ground_truth_trace(
            total_messages=10_000,
            n_headline_discoverable=2,
            n_headline_subthreshold=1,
            n_local_events=1,
            n_spurious=1,
        )
        headline = headlines_for_trace(trace)[0]
        assert headline.lead_time_messages(None) is None
        lead = headline.lead_time_messages(headline.published_message - 2100)
        assert lead == 2100
        assert headline.lead_time_seconds(
            headline.published_message - 2100
        ) == pytest.approx(100.0)
