"""Shared fixtures: canonical graphs from the paper's figures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))  # make helpers importable

from helpers import graph_from_edges  # noqa: E402


@pytest.fixture
def triangle():
    return graph_from_edges([(0, 1), (1, 2), (2, 0)])


@pytest.fixture
def square():
    return graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])


@pytest.fixture
def figure6_graph():
    """The 12-node cluster of Figure 6 (before node 9 is deleted).

    Reconstructed to reproduce the figure's documented behaviour: the whole
    graph is one SCP cluster, and deleting node 9 splits it at articulation
    node 3 into Cluster 1 = {0,1,2,3,10,11} and Cluster 2 = {3,4,5,6,7,8}.
    """
    edges = [
        # left lobe {0,1,2,3,10,11}: ring + chords, every edge short-cycled
        (0, 1), (1, 2), (2, 3), (3, 10), (10, 11), (11, 0), (1, 11), (2, 10),
        # right lobe {3,4,5,6,7,8}
        (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 3), (4, 8), (5, 7),
        # node 9 glues the lobes: triangles {9,8,3} and {9,10,3}
        (8, 9), (9, 3), (9, 10),
    ]
    return graph_from_edges(edges)


@pytest.fixture
def figure2a_graph():
    """Figure 2(a): node n joins n1, n2 via common neighbour nc (rule R1)."""
    return graph_from_edges(
        [("n", "n1"), ("n", "n2"), ("n1", "nc"), ("n2", "nc")]
    )


@pytest.fixture
def figure2b_graph():
    """Figure 2(b): node n joins n1, n2 which share an edge (rule R2)."""
    return graph_from_edges([("n", "n1"), ("n", "n2"), ("n1", "n2")])
