"""The serving layer: wire codec, tenancy, fan-out, shedding, durability.

The anchor property (ISSUE acceptance): a tenant served over HTTP +
WebSocket produces **bit-identical** results to a library-only run of the
same stream — same lifecycle events on the wire (exact floats, via JSON
shortest-roundtrip), same checkpoint fingerprint.  Around it: multi-tenant
isolation, slow-consumer backpressure (drop-oldest then disconnect),
load-shed accounting under a burst, and crash-restart of a tenant from its
delta log through the server.
"""

import json
import socket
import time

import pytest

from golden import (
    bursty_stream,
    fingerprint,
    normalized_checkpoint_state,
    note_record,
    reentry_stream,
)
from repro.api import EventKind, QueueSink, open_session
from repro.config import DetectorConfig
from repro.errors import ServeError
from repro.serve import ServeClient, ServerThread, WebSocketClient
from repro.serve import wire
from repro.stream.messages import Message

CONFIG = {
    "quantum_size": 24,
    "window_quanta": 5,
    "high_state_threshold": 2,
    "ec_threshold": 0.1,
    "use_minhash_filter": False,
}


def materialize(pairs):
    return [Message(u, tokens=t) for u, t in pairs]


def library_run(pairs, ckpt_path, config=CONFIG, **subscribe_kwargs):
    """The ground truth: same stream, straight through the library."""
    session = open_session(DetectorConfig.from_dict(config))
    inbox = QueueSink()
    session.subscribe(inbox, **subscribe_kwargs)
    for _ in session.ingest_many(materialize(pairs)):
        pass
    session.snapshot(ckpt_path)
    notes = [note_record(e) for e in inbox.drain()]
    session.close()
    return notes


def ws_note(record):
    """A wire event record reshaped into golden.note_record form."""
    return [
        record["kind"],
        record["quantum"],
        record["event_id"],
        record["keywords"],
        record["rank"],
        record["size"],
        record["previous_rank"],
        record["previous_size"],
    ]


def collect_events(ws, count, timeout=30.0):
    """Read exactly ``count`` event records from a subscriber socket."""
    ws.sock.settimeout(timeout)
    out = []
    while len(out) < count:
        record = ws.recv_json()
        if record is None:
            break
        out.append(record)
    return out


@pytest.fixture
def server(tmp_path):
    thread = ServerThread(state_dir=tmp_path / "state", workers=2)
    thread.start()
    yield thread
    thread.stop(graceful=True)


class TestWire:
    def test_accept_key_matches_rfc6455_example(self):
        # The worked example from RFC 6455 Section 1.3.
        assert (
            wire.websocket_accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536, 70_000])
    def test_frame_round_trip_across_length_encodings(self, size):
        payload = bytes(i % 251 for i in range(size))
        for mask in (False, True):
            frame = wire.encode_frame(wire.OP_TEXT, payload, mask=mask)

            class Reader:
                def __init__(self, data):
                    self.data, self.pos = data, 0

                def read(self, n):
                    chunk = self.data[self.pos:self.pos + n]
                    self.pos += n
                    return chunk

            opcode, decoded = wire.read_frame_blocking(Reader(frame))
            assert opcode == wire.OP_TEXT
            assert decoded == payload

    def test_fragmented_frame_rejected(self):
        frame = bytearray(wire.encode_frame(wire.OP_TEXT, b"hi"))
        frame[0] &= 0x7F  # clear FIN

        class Reader:
            def __init__(self, data):
                self.data, self.pos = bytes(data), 0

            def read(self, n):
                chunk = self.data[self.pos:self.pos + n]
                self.pos += n
                return chunk

        with pytest.raises(ServeError, match="fragmented"):
            wire.read_frame_blocking(Reader(frame))

    def test_http_response_shape(self):
        raw = wire.http_response(404, {"error": "nope"})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 404 Not Found")
        assert b"Connection: close" in head
        assert json.loads(body) == {"error": "nope"}


class TestTenantLifecycle:
    def test_health_create_stats_close(self, server):
        client = ServeClient(port=server.port)
        assert client.healthz()["ok"] is True
        created = client.create_tenant("t1", CONFIG)
        assert created["tenant"] == "t1" and created["quantum"] == -1
        assert client.tenants() == ["t1"]
        stats = client.stats("t1")
        assert stats["quantum"] == -1 and stats["accepted"] == 0
        summary = client.close_tenant("t1")
        assert summary["closed"] is True
        assert client.tenants() == []

    def test_unknown_tenant_is_404(self, server):
        client = ServeClient(port=server.port)
        with pytest.raises(ServeError, match="404"):
            client.stats("ghost")

    def test_duplicate_tenant_is_409(self, server):
        client = ServeClient(port=server.port)
        client.create_tenant("dup", CONFIG)
        with pytest.raises(ServeError, match="409"):
            client.create_tenant("dup", CONFIG)

    def test_bad_config_is_400(self, server):
        client = ServeClient(port=server.port)
        with pytest.raises(ServeError, match="400"):
            client.create_tenant("bad", {"no_such_field": 1})

    def test_bad_tenant_name_rejected(self, server):
        client = ServeClient(port=server.port)
        with pytest.raises(ServeError, match="400"):
            client.create_tenant("-leading-dash", CONFIG)
        # Path traversal never reaches the filesystem: ".." routes as a
        # (nonexistent) tenant name, not into the state directory.
        with pytest.raises(ServeError, match="404"):
            client.create_tenant("../escape", CONFIG)

    def test_bad_event_kind_refuses_upgrade(self, server):
        client = ServeClient(port=server.port)
        client.create_tenant("k", CONFIG)
        with pytest.raises(ServeError, match="unknown event kind"):
            client.subscribe("k", kinds="sideways")

    def test_metrics_exposes_tenants_and_baselines(self, server):
        client = ServeClient(port=server.port)
        client.create_tenant("m1", CONFIG)
        metrics = client.metrics()
        assert "m1" in metrics["tenants"]
        assert metrics["workers"] == 2
        # The committed bench baselines ride along on /metrics.
        assert isinstance(metrics["baselines"], dict)
        tenant = metrics["tenants"]["m1"]
        assert set(tenant) >= {
            "quantum", "queued", "shed", "accepted", "timings", "fanout",
        }
        # The distributed front-end's sub-spans ride along on the stage
        # timings (zero for serial tenants, live for sharded ones).
        assert set(tenant["timings"]) >= {
            "scatter", "exchange", "overlap_saved",
        }


class TestMultiTenantGoldenParity:
    """Two tenants, different streams: each bit-identical to its own
    library run — served results are the library results, and tenants
    never bleed into each other."""

    def test_two_tenants_isolated_and_bit_identical(self, server, tmp_path):
        client = ServeClient(port=server.port)
        streams = {
            "alpha": bursty_stream(11, 480),
            "beta": reentry_stream(23, 480, period=96),
        }
        expected = {
            name: library_run(pairs, tmp_path / f"{name}.lib.ckpt")
            for name, pairs in streams.items()
        }
        subscribers = {}
        for name, pairs in streams.items():
            client.create_tenant(name, CONFIG)
            subscribers[name] = client.subscribe(name)
        # Interleave the ingest so the tenants genuinely share the worker
        # budget while running.
        for lo in range(0, 480, 120):
            for name, pairs in streams.items():
                client.ingest(name, materialize(pairs[lo:lo + 120]))
        for name in streams:
            client.ingest(name, [], wait=True)

        for name in streams:
            got = collect_events(subscribers[name], len(expected[name]))
            assert [ws_note(r) for r in got] == expected[name], name
            subscribers[name].close()
        # Checkpoint parity: the served tenant's graceful-close snapshot
        # fingerprints identically to the library session's.
        for name in streams:
            summary = client.close_tenant(name)
            assert summary["checkpoint"] is not None
            assert fingerprint(
                normalized_checkpoint_state(summary["checkpoint"])
            ) == fingerprint(
                normalized_checkpoint_state(tmp_path / f"{name}.lib.ckpt")
            ), name

    def test_kinds_and_top_k_filters_match_library(self, server, tmp_path):
        client = ServeClient(port=server.port)
        pairs = bursty_stream(31, 360)
        expected = library_run(
            pairs, tmp_path / "lib.ckpt",
            kinds=frozenset({EventKind.EMERGING}), top_k=2,
        )
        client.create_tenant("filt", CONFIG)
        ws = client.subscribe("filt", kinds="emerging", top_k=2)
        client.ingest("filt", materialize(pairs), wait=True)
        got = collect_events(ws, len(expected))
        assert [ws_note(r) for r in got] == expected
        ws.close()

    def test_many_subscribers_zero_loss_for_keep_up_consumers(
        self, server, tmp_path
    ):
        """2 tenants x 30 subscribers, every one sees the full sequence.

        (The 2 x 100 scale point is benchmarks/bench_serve_fanout.py,
        which asserts the same invariant at fan-out 100.)
        """
        client = ServeClient(port=server.port)
        pairs = bursty_stream(47, 360)
        expected = library_run(pairs, tmp_path / "lib.ckpt")
        assert expected, "stream must produce events for this test to bite"
        fans = {}
        for name in ("fan-a", "fan-b"):
            client.create_tenant(name, CONFIG)
            fans[name] = [client.subscribe(name) for _ in range(30)]
        for name in fans:
            client.ingest(name, materialize(pairs), wait=True)
        for name, subs in fans.items():
            for ws in subs:
                got = collect_events(ws, len(expected))
                assert [ws_note(r) for r in got] == expected
                ws.close()
            stats = client.stats(name)
            assert stats["fanout"]["total_dropped"] == 0


class TestWebSocketIngest:
    def test_stream_endpoint_acks_and_feeds_the_session(self, server):
        client = ServeClient(port=server.port)
        client.create_tenant("wsin", CONFIG)
        pairs = bursty_stream(5, 96)
        with client.stream("wsin") as ws:
            ws.send_messages(materialize(pairs[:48]))
            ack = ws.recv_json()
            assert ack["accepted"] == 48 and ack["shed"] == 0
            ws.send_messages(materialize(pairs[48:]))
            ack = ws.recv_json()
            assert ack["accepted"] == 48
        client.ingest("wsin", [], wait=True)
        stats = client.stats("wsin")
        assert stats["accepted"] == 96
        assert stats["quantum"] == 96 // CONFIG["quantum_size"] - 1


class TestLoadShedding:
    def test_burst_past_queue_bound_is_shed_and_counted(self, tmp_path):
        thread = ServerThread(workers=1, max_queue=50)
        thread.start()
        try:
            client = ServeClient(port=thread.port)
            client.create_tenant("burst", CONFIG)
            pairs = bursty_stream(3, 500)
            result = client.ingest("burst", materialize(pairs))
            # The enqueue is atomic on the event loop: an empty queue takes
            # exactly max_queue messages, the rest is shed — never an OOM.
            assert result["accepted"] == 50
            assert result["shed"] == 450
            client.ingest("burst", [], wait=True)
            stats = client.stats("burst")
            assert stats["accepted"] == 50
            assert stats["shed"] == 450
            assert stats["messages"] == 48  # two full quanta of 24
            assert stats["pending"] == 2
            # Adaptive quantum sizing: the backlog was drained in batches
            # larger than one quantum.
            assert stats["batch_hwm"] > CONFIG["quantum_size"]
        finally:
            thread.stop(graceful=True)

    def test_closed_tenant_refuses_ingest(self, server):
        client = ServeClient(port=server.port)
        client.create_tenant("gone", CONFIG)
        client.close_tenant("gone")
        with pytest.raises(ServeError, match="404"):
            client.ingest("gone", materialize(bursty_stream(1, 10)))


class TestSlowConsumer:
    def _raw_subscriber(self, port, tenant, buffer, rcvbuf):
        """A subscriber socket with a tiny kernel receive buffer, so a
        non-reading consumer exerts real backpressure quickly."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, rcvbuf)
        sock.connect(("127.0.0.1", port))
        import base64, os

        key = base64.b64encode(os.urandom(16)).decode("ascii")
        sock.sendall(
            (
                f"GET /v1/{tenant}/events?buffer={buffer} HTTP/1.1\r\n"
                f"Host: 127.0.0.1:{port}\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Key: {key}\r\n"
                "Sec-WebSocket-Version: 13\r\n\r\n"
            ).encode("latin-1")
        )
        rfile = sock.makefile("rb")
        status = rfile.readline()
        assert b"101" in status
        while rfile.readline().strip():
            pass
        return sock, rfile

    def test_slow_consumer_drops_oldest_then_disconnects(self, tmp_path):
        thread = ServerThread(
            workers=1,
            stall_deadline=0.5,
            ws_write_limit=0,
            ws_sndbuf=2048,
        )
        thread.start()
        try:
            client = ServeClient(port=thread.port)
            client.create_tenant("slow", CONFIG)
            # One consumer that never reads (4-event buffer), one that
            # keeps up.
            stalled_sock, stalled_rfile = self._raw_subscriber(
                thread.port, "slow", buffer=4, rcvbuf=2048
            )
            # A churny stream: every quantum reshuffles cluster ranks, so
            # events keep flowing (~40 KB of frames) until the stalled
            # socket jams — well past the ~9 KB the kernel buffers absorb.
            pairs = bursty_stream(61, 9600)
            expected = library_run(pairs, tmp_path / "lib.ckpt")
            # The keep-up consumer drains concurrently on its own thread —
            # its pace, not the stalled one's, decides what it sees.
            keeper = client.subscribe("slow")
            kept = []

            import threading

            def drain_keeper():
                kept.extend(collect_events(keeper, len(expected)))

            reader = threading.Thread(target=drain_keeper, daemon=True)
            reader.start()
            client.ingest("slow", materialize(pairs), wait=True)
            deadline = time.monotonic() + 15
            closed = []
            while time.monotonic() < deadline:
                closed = client.stats("slow")["fanout"]["closed"]
                if closed:
                    break
                time.sleep(0.2)
            assert closed, "stalled subscriber was never disconnected"
            (summary,) = closed
            assert summary["reason"].startswith("stalled past")
            assert summary["dropped"] > 0  # oldest events were evicted
            stats = client.stats("slow")
            assert stats["fanout"]["total_dropped"] >= summary["dropped"]
            # The keep-up consumer is unaffected: it sees every event.
            reader.join(timeout=30)
            assert not reader.is_alive()
            assert [ws_note(r) for r in kept] == expected
            live = client.stats("slow")["fanout"]["subscribers"]
            assert [s["dropped"] for s in live] == [0]
            keeper.close()
            stalled_rfile.close()
            stalled_sock.close()
        finally:
            thread.stop(graceful=True)


class TestCrashRestart:
    def test_tenant_resumes_from_delta_log_after_hard_kill(self, tmp_path):
        state = tmp_path / "state"
        pairs = bursty_stream(77, 480)
        half = 240  # a multiple of quantum_size: nothing buffered at kill
        expected_ckpt = tmp_path / "uninterrupted.ckpt"
        library_run(pairs, expected_ckpt)

        thread = ServerThread(state_dir=state, workers=1)
        thread.start()
        client = ServeClient(port=thread.port)
        client.create_tenant("crashy", CONFIG)
        client.ingest("crashy", materialize(pairs[:half]), wait=True)
        before = client.stats("crashy")
        assert before["pending"] == 0
        # kill -9 twin: no drain, no checkpoint, no session close — the
        # per-quantum delta log is all that survives.
        thread.stop(graceful=False)

        thread = ServerThread(state_dir=state, workers=1)
        thread.start()
        try:
            client = ServeClient(port=thread.port)
            resumed = client.create_tenant("crashy", resume=True)
            assert resumed["quantum"] == before["quantum"]
            # A fresh create against surviving state is refused loudly.
            with pytest.raises(ServeError, match="409"):
                client.create_tenant("crashy", CONFIG)
            client.ingest("crashy", materialize(pairs[half:]), wait=True)
            summary = client.close_tenant("crashy")
            assert fingerprint(
                normalized_checkpoint_state(summary["checkpoint"])
            ) == fingerprint(normalized_checkpoint_state(expected_ckpt))
        finally:
            thread.stop(graceful=True)

    def test_graceful_close_preserves_partial_quantum(self, tmp_path):
        state = tmp_path / "state"
        pairs = bursty_stream(13, 250)  # 250 = 10 quanta of 24 + 10 pending
        expected_ckpt = tmp_path / "lib.ckpt"
        library_run(pairs, expected_ckpt)

        thread = ServerThread(state_dir=state, workers=1)
        thread.start()
        client = ServeClient(port=thread.port)
        client.create_tenant("partial", CONFIG)
        client.ingest("partial", materialize(pairs), wait=True)
        assert client.stats("partial")["pending"] == 10
        thread.stop(graceful=True)  # drains + snapshots final.ckpt

        thread = ServerThread(state_dir=state, workers=1)
        thread.start()
        try:
            client = ServeClient(port=thread.port)
            resumed = client.create_tenant("partial", resume=True)
            assert resumed["pending"] == 10
            ckpt = tmp_path / "served.ckpt"
            client.checkpoint("partial", ckpt)
            assert fingerprint(
                normalized_checkpoint_state(ckpt)
            ) == fingerprint(normalized_checkpoint_state(expected_ckpt))
        finally:
            thread.stop(graceful=True)
