"""Differential verification of the delta-driven AKG stage (DESIGN.md S5).

Random message streams are replayed into two complete AKG pipelines — the
fast delta-driven :class:`~repro.akg.builder.AkgBuilder` and the same builder
running on the from-scratch oracle components
(:mod:`repro.akg.oracle`) — and after **every quantum** the two worlds must
be indistinguishable: same AKG nodes, same edges with the same correlations,
same cluster decomposition (ids included), same window supports, same MinHash
sketches, and the same multiset of emitted ChangeLog events.  Any incremental
shortcut that drops, duplicates, or mistimes an update diverges here.

Three stream regimes target the distinct failure surfaces:

* **bursty** — few keywords, heavy user sets: dense graphs, constant cluster
  churn, merge/split traffic;
* **uniform** — wide shallow vocabulary: mostly sub-threshold keywords, so
  staleness expiry and lazy drops dominate;
* **adversarial re-entry** — keywords fall silent for exactly the window
  length and re-appear in the quantum their last entry expires, the
  boundary where a duplicate deque entry or double-emitted delta would hide.
"""

from collections import Counter

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.akg.builder import AkgBuilder
from repro.config import DetectorConfig
from repro.core.maintenance import ClusterMaintainer
from repro.graph.dynamic_graph import edge_key

KEYWORDS = [f"k{i}" for i in range(8)]
USERS = list(range(12))
WINDOW = 3


def make_config(**overrides):
    base = dict(
        quantum_size=8,
        window_quanta=WINDOW,
        high_state_threshold=2,
        ec_threshold=0.3,
        node_grace_quanta=1,
        use_minhash_filter=False,
        min_cluster_size=3,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def graph_snapshot(maintainer):
    graph = maintainer.graph
    nodes = frozenset(graph.nodes())
    edges = {edge_key(u, v): w for u, v, w in graph.edges()}
    clusters = {
        c.cluster_id: (frozenset(c.nodes), frozenset(c.edges))
        for c in maintainer.registry
    }
    return nodes, edges, clusters


def assert_equivalent(stream, config):
    """Replay ``stream`` into fast and oracle pipelines, diffing per quantum."""
    fast_m, oracle_m = ClusterMaintainer(), ClusterMaintainer()
    fast = AkgBuilder(config, fast_m)
    oracle = AkgBuilder(config, oracle_m, oracle=True)
    assert oracle.oracle and not fast.oracle
    for quantum, content in enumerate(stream):
        fast.process_quantum(quantum, content)
        oracle.process_quantum(quantum, content)
        fast_snap = graph_snapshot(fast_m)
        oracle_snap = graph_snapshot(oracle_m)
        assert fast_snap == oracle_snap, (
            f"AKG diverged at quantum {quantum}:\n"
            f"  fast:   {fast_snap}\n"
            f"  oracle: {oracle_snap}"
        )
        fast_events = Counter(fast_m.drain_changes().events)
        oracle_events = Counter(oracle_m.drain_changes().events)
        assert fast_events == oracle_events, (
            f"ChangeLog diverged at quantum {quantum}:\n"
            f"  fast only:   {fast_events - oracle_events}\n"
            f"  oracle only: {oracle_events - fast_events}"
        )
        vocabulary = set(fast.idsets.keywords()) | set(oracle.idsets.keywords())
        for kw in vocabulary:
            assert fast.idsets.support(kw) == oracle.idsets.support(kw), (
                f"support diverged for {kw!r} at quantum {quantum}"
            )
            assert fast.idsets.users(kw) == oracle.idsets.users(kw)
        if config.use_minhash_filter:
            for kw in fast_snap[0]:
                assert fast.sketches.sketch(kw) == oracle.sketches.sketch(kw), (
                    f"sketch diverged for {kw!r} at quantum {quantum}"
                )
        fast_m.registry.check_integrity()
        fast_m.check_against_oracle()


def quantum_contents(keywords, max_users, min_keywords=0):
    return st.dictionaries(
        st.sampled_from(keywords),
        st.sets(st.sampled_from(USERS), min_size=1, max_size=max_users),
        min_size=min_keywords,
        max_size=len(keywords),
    )


BURSTY_STREAMS = st.lists(
    quantum_contents(KEYWORDS[:4], max_users=8, min_keywords=1),
    min_size=2,
    max_size=10,
)

UNIFORM_STREAMS = st.lists(
    quantum_contents(KEYWORDS, max_users=3),
    min_size=2,
    max_size=10,
)


@st.composite
def reentry_streams(draw):
    """Keywords re-appear exactly when their previous entries expire.

    A base quantum is replayed every ``WINDOW`` quanta with silence between,
    so each replay lands in the same slide that expires the previous one —
    the stale/re-enter boundary case.  A second, offset keyword group keeps
    the graph non-trivial while the first group sits at the boundary.
    """
    base_a = draw(quantum_contents(KEYWORDS[:3], max_users=8, min_keywords=1))
    base_b = draw(quantum_contents(KEYWORDS[3:6], max_users=8))
    cycles = draw(st.integers(2, 3))
    stream = []
    for _ in range(cycles):
        stream.append(base_a)
        for _ in range(WINDOW - 1):
            stream.append(dict(base_b))
        base_b = draw(quantum_contents(KEYWORDS[3:6], max_users=8))
    stream.append(base_a)
    return stream


@pytest.mark.parametrize("use_minhash", [False, True])
class TestIncrementalAkgEqualsOracle:
    @given(stream=BURSTY_STREAMS)
    @settings(max_examples=25, deadline=None)
    def test_bursty_regime(self, use_minhash, stream):
        assert_equivalent(stream, make_config(use_minhash_filter=use_minhash))

    @given(stream=UNIFORM_STREAMS)
    @settings(max_examples=25, deadline=None)
    def test_uniform_regime(self, use_minhash, stream):
        assert_equivalent(stream, make_config(use_minhash_filter=use_minhash))

    @given(stream=reentry_streams())
    @settings(max_examples=25, deadline=None)
    def test_adversarial_reentry_regime(self, use_minhash, stream):
        assert_equivalent(stream, make_config(use_minhash_filter=use_minhash))


class TestConfigSensitivity:
    """The equivalence must hold across the lifecycle parameters too."""

    @given(
        stream=UNIFORM_STREAMS,
        grace=st.integers(0, 3),
        theta=st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_grace_and_theta(self, stream, grace, theta):
        assert_equivalent(
            stream,
            make_config(node_grace_quanta=grace, high_state_threshold=theta),
        )

    @given(stream=BURSTY_STREAMS, window=st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_window_lengths(self, stream, window):
        assert_equivalent(stream, make_config(window_quanta=window))
