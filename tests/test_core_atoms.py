"""Short-cycle atom enumeration, cross-checked against brute force."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import (
    atoms_containing_edge,
    atoms_in_subgraph,
    edge_on_short_cycle,
    satisfies_scp,
)
from repro.graph.dynamic_graph import edge_key
from repro.graph.generators import complete_clique, cycle_graph, gnp_random_graph

from helpers import graph_from_edges


def brute_force_atoms(graph):
    """All 3- and 4-cycles via networkx simple_cycles with a length bound."""
    nxg = nx.Graph()
    nxg.add_nodes_from(graph.nodes())
    nxg.add_edges_from((u, v) for u, v, _ in graph.edges())
    atoms = set()
    for cycle in nx.simple_cycles(nxg, length_bound=4):
        if len(cycle) in (3, 4):
            edges = frozenset(
                edge_key(cycle[i], cycle[(i + 1) % len(cycle)])
                for i in range(len(cycle))
            )
            atoms.add(edges)
    return atoms


class TestAtomsContainingEdge:
    def test_triangle(self, triangle):
        atoms = atoms_containing_edge(triangle, 0, 1)
        assert len(atoms) == 1
        assert atoms[0].nodes == frozenset({0, 1, 2})
        assert atoms[0].length == 3

    def test_square(self, square):
        atoms = atoms_containing_edge(square, 0, 1)
        assert len(atoms) == 1
        assert atoms[0].nodes == frozenset({0, 1, 2, 3})
        assert atoms[0].length == 4

    def test_no_cycle(self):
        graph = graph_from_edges([(0, 1), (1, 2)])
        assert atoms_containing_edge(graph, 0, 1) == []

    def test_k4_edge_in_multiple_atoms(self):
        graph = complete_clique(4)
        atoms = atoms_containing_edge(graph, 0, 1)
        # Edge (0,1) lies in 2 triangles ({0,1,2}, {0,1,3}) and in 2 of the
        # 3 distinct 4-cycles of K4 (0-2-3-1 and 0-3-2-1 have different
        # edge sets; 0-2-1-3 does not contain the edge (0,1)).
        triangles = [a for a in atoms if a.length == 3]
        quads = [a for a in atoms if a.length == 4]
        assert len(triangles) == 2
        assert len(quads) == 2

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_per_edge(self, seed):
        graph = gnp_random_graph(12, 0.3, seed=seed)
        expected = brute_force_atoms(graph)
        for u, v, _ in graph.edges():
            key = edge_key(u, v)
            ours = {a.edges for a in atoms_containing_edge(graph, u, v)}
            theirs = {a for a in expected if key in a}
            assert ours == theirs


class TestAtomsInSubgraph:
    def test_triangle(self, triangle):
        atoms = atoms_in_subgraph(triangle.adjacency())
        assert len(atoms) == 1

    def test_square_one_quad(self, square):
        atoms = atoms_in_subgraph(square.adjacency())
        assert len(atoms) == 1
        assert atoms[0].length == 4

    def test_square_with_diagonal(self):
        graph = graph_from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        atoms = atoms_in_subgraph(graph.adjacency())
        lengths = sorted(a.length for a in atoms)
        assert lengths == [3, 3, 4]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force(self, seed):
        graph = gnp_random_graph(11, 0.3, seed=seed)
        ours = {a.edges for a in atoms_in_subgraph(graph.adjacency())}
        assert ours == brute_force_atoms(graph)

    def test_allowed_edges_filter(self, triangle):
        allowed = {(0, 1), (1, 2)}  # drop one edge of the triangle
        atoms = atoms_in_subgraph(triangle.adjacency(), allowed_edges=allowed)
        assert atoms == []

    def test_atoms_deduplicated(self):
        # C4 enumerated from any anchor must appear exactly once
        graph = cycle_graph(4)
        atoms = atoms_in_subgraph(graph.adjacency())
        assert len(atoms) == 1


class TestEdgeOnShortCycle:
    def adj(self, graph):
        return {n: set(graph.neighbors(n)) for n in graph.nodes()}

    def test_triangle_edge(self, triangle):
        assert edge_on_short_cycle(self.adj(triangle), 0, 1)

    def test_square_edge(self, square):
        assert edge_on_short_cycle(self.adj(square), 0, 1)

    def test_pentagon_edge_not(self):
        graph = cycle_graph(5)
        assert not edge_on_short_cycle(self.adj(graph), 0, 1)

    def test_respects_allowed_edges(self, triangle):
        allowed = {(0, 1), (1, 2)}
        assert not edge_on_short_cycle(
            self.adj(triangle), 0, 1, allowed_edges=allowed
        )

    def test_bridge_edge_not(self):
        graph = graph_from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
        assert not edge_on_short_cycle(self.adj(graph), 2, 3)


class TestSatisfiesScp:
    def adj(self, graph):
        return {n: set(graph.neighbors(n)) for n in graph.nodes()}

    def test_triangle(self, triangle):
        edges = {edge_key(u, v) for u, v, _ in triangle.edges()}
        assert satisfies_scp(self.adj(triangle), edges)

    def test_pentagon_fails(self):
        graph = cycle_graph(5)
        edges = {edge_key(u, v) for u, v, _ in graph.edges()}
        assert not satisfies_scp(self.adj(graph), edges)

    def test_figure3b_scp_but_not_mqc(self):
        """Figure 3(b) merged cluster: SCP holds though the graph is not an
        MQC — SCP is necessary but not sufficient for MQC (Section 4.1)."""
        from repro.graph.quasi_clique import is_majority_quasi_clique

        # two squares sharing an edge: every edge on a 4-cycle, min degree 2,
        # N = 6 -> needs >= 2.5 for MQC
        graph = graph_from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 3)]
        )
        edges = {edge_key(u, v) for u, v, _ in graph.edges()}
        assert satisfies_scp(self.adj(graph), edges)
        assert not is_majority_quasi_clique(graph)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_atom_union_always_satisfies_scp(self, seed):
        """Any union of atoms glued on shared edges satisfies SCP — the
        invariant behind the incremental maintenance."""
        graph = gnp_random_graph(10, 0.35, seed=seed)
        atoms = atoms_in_subgraph(graph.adjacency())
        if not atoms:
            return
        union_edges = set().union(*(a.edges for a in atoms))
        assert satisfies_scp(self.adj(graph), union_edges)
