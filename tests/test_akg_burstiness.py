"""Two-state keyword automaton (Section 3.1)."""

import pytest

from repro.akg.burstiness import BurstinessTracker
from repro.errors import ConfigError


class TestBurstDetection:
    def test_threshold_boundary(self):
        tracker = BurstinessTracker(theta=4)
        bursty = tracker.observe_quantum(0, {"hot": 4, "warm": 3})
        assert bursty == {"hot"}
        assert tracker.is_bursty_now("hot")
        assert not tracker.is_bursty_now("warm")

    def test_bursty_now_resets_each_quantum(self):
        tracker = BurstinessTracker(theta=2)
        tracker.observe_quantum(0, {"a": 5})
        tracker.observe_quantum(1, {"b": 5})
        assert tracker.bursty_now() == {"b"}
        assert not tracker.is_bursty_now("a")

    def test_last_bursty_quantum_remembered(self):
        tracker = BurstinessTracker(theta=2)
        tracker.observe_quantum(0, {"a": 5})
        tracker.observe_quantum(1, {"b": 5})
        tracker.observe_quantum(2, {"c": 5})
        assert tracker.last_bursty_quantum("a") == 0
        assert tracker.quanta_since_bursty("a") == 2
        assert tracker.quanta_since_bursty("never") is None

    def test_repeat_burst_updates(self):
        tracker = BurstinessTracker(theta=2)
        tracker.observe_quantum(0, {"a": 5})
        tracker.observe_quantum(1, {"a": 5})
        assert tracker.last_bursty_quantum("a") == 1

    def test_forget(self):
        tracker = BurstinessTracker(theta=2)
        tracker.observe_quantum(0, {"a": 5})
        tracker.forget(["a"])
        assert tracker.last_bursty_quantum("a") is None
        assert not tracker.is_bursty_now("a")

    def test_invalid_theta(self):
        with pytest.raises(ConfigError):
            BurstinessTracker(theta=0)

    def test_observe_returns_copy(self):
        tracker = BurstinessTracker(theta=1)
        result = tracker.observe_quantum(0, {"a": 1})
        result.add("tampered")
        assert tracker.bursty_now() == {"a"}
