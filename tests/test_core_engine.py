"""End-to-end EventDetector behaviour on controlled micro-streams."""

import pytest

from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.datasets.figure1 import figure1_messages
from repro.stream.messages import Message
from repro.text.pos import NounTagger


def exact_config(**overrides):
    base = dict(
        quantum_size=6,
        window_quanta=5,
        high_state_threshold=2,
        ec_threshold=0.1,
        use_minhash_filter=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def burst(keywords, users, quantum_size=6):
    """Messages where each user posts all keywords (max correlation)."""
    return [Message(f"u{u}", tokens=tuple(keywords)) for u in users]


class TestFigure1Scenario:
    def test_cluster_discovered_and_evolves(self):
        """The paper's running example: the earthquake cluster forms, then
        '5.9' joins it when the window slides."""
        detector = EventDetector(exact_config())
        initial, update = figure1_messages()
        report1 = detector.process_quantum(initial)
        assert len(report1.reported) == 1
        keywords1 = report1.reported[0].keywords
        assert {"earthquake", "struck", "eastern", "turkey"} <= keywords1
        # bursty but spatially weak words stay out of the cluster
        assert "massive" not in keywords1
        assert "moderate" not in keywords1

        report2 = detector.process_quantum(update)
        assert len(report2.reported) >= 1
        top = report2.top(1)[0]
        assert "5.9" in top.keywords
        assert top.event_id == report1.reported[0].event_id  # same event

    def test_event_tracker_records_evolution(self):
        detector = EventDetector(exact_config())
        initial, update = figure1_messages()
        detector.process_quantum(initial)
        detector.process_quantum(update)
        records = detector.tracker.all_events()
        main = max(records, key=lambda r: len(r.all_keywords))
        assert main.evolved()
        assert "5.9" in main.all_keywords


class TestDetectorLifecycle:
    def test_cluster_dies_when_stale(self):
        config = exact_config(window_quanta=2)
        detector = EventDetector(config)
        detector.process_quantum(burst(["alpha", "beta", "gamma"], range(6)))
        assert len(detector.registry) == 1
        noise = [
            Message(f"n{i}", tokens=(f"w{i}a", f"w{i}b")) for i in range(6)
        ]
        detector.process_quantum(noise)
        report = detector.process_quantum(
            [Message(f"m{i}", tokens=(f"v{i}a",)) for i in range(6)]
        )
        assert len(detector.registry) == 0
        assert report.dead_event_ids

    def test_quantum_boundaries_via_process_message(self):
        detector = EventDetector(exact_config(quantum_size=3))
        messages = burst(["a1", "b1", "c1"], range(3))
        reports = [detector.process_message(m) for m in messages]
        assert reports[:2] == [None, None]
        assert reports[2] is not None
        assert reports[2].quantum == 0

    def test_partial_final_quantum_via_stream(self):
        detector = EventDetector(exact_config(quantum_size=4))
        messages = burst(["a1", "b1", "c1"], range(6))
        reports = list(detector.process_stream(messages))
        assert len(reports) == 2
        assert reports[1].messages_processed == 2

    def test_throughput_accounting(self):
        detector = EventDetector(exact_config())
        detector.process_quantum(burst(["a1", "b1"], range(6)))
        assert detector.total_messages == 6
        assert detector.throughput() > 0


class TestReportFilters:
    def test_rank_floor_suppresses_weak_clusters(self):
        config = exact_config(rank_threshold_scale=100.0)
        detector = EventDetector(config)
        report = detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.reported == []
        assert len(report.suppressed) == 1

    def test_noun_filter(self):
        tagger = NounTagger({"quickly": "adv", "running": "verb", "slowly": "adv"})
        detector = EventDetector(exact_config(), noun_tagger=tagger)
        report = detector.process_quantum(
            burst(["quickly", "running", "slowly"], range(6))
        )
        assert report.reported == []
        assert len(report.suppressed) == 1

    def test_noun_filter_disabled(self):
        tagger = NounTagger({"quickly": "adv", "running": "verb", "slowly": "adv"})
        detector = EventDetector(
            exact_config(require_noun=False), noun_tagger=tagger
        )
        report = detector.process_quantum(
            burst(["quickly", "running", "slowly"], range(6))
        )
        assert len(report.reported) == 1

    def test_min_cluster_size_respected(self):
        config = exact_config(min_cluster_size=5)
        detector = EventDetector(config)
        report = detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.reported == []
        assert report.suppressed == []  # too small to even rank


class TestSpatialCorrelation:
    def test_temporally_but_not_spatially_correlated_words_unclustered(self):
        """Two bursts from disjoint user groups never share an edge."""
        detector = EventDetector(exact_config())
        messages = burst(["a1", "b1", "c1"], range(3)) + burst(
            ["x1", "y1", "z1"], range(10, 13)
        )
        report = detector.process_quantum(messages)
        keyword_sets = [set(e.keywords) for e in report.reported]
        for keywords in keyword_sets:
            assert not (
                keywords & {"a1", "b1", "c1"} and keywords & {"x1", "y1", "z1"}
            )

    def test_user_level_spatiality_spans_messages(self):
        """Keywords of one user may be spread over several messages within a
        quantum and still correlate (Section 3.2)."""
        detector = EventDetector(exact_config())
        messages = []
        for u in range(3):
            messages.append(Message(f"u{u}", tokens=("storm", "warning")))
            messages.append(Message(f"u{u}", tokens=("coast", "warning")))
        report = detector.process_quantum(messages)
        assert len(report.reported) == 1
        assert report.reported[0].keywords == {"storm", "warning", "coast"}


class TestStagedPipeline:
    def test_per_stage_timings_populated(self):
        detector = EventDetector(exact_config())
        report = detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        timings = report.timings.as_dict()
        assert set(timings) == {
            "extract", "akg_update", "maintain", "propagate", "rank",
            "report", "scatter", "exchange", "overlap_saved",
        }
        # the sharded/pipelined sub-spans stay zero on a serial session
        assert timings["scatter"] == 0.0
        assert timings["exchange"] == 0.0
        assert timings["overlap_saved"] == 0.0
        assert all(t >= 0.0 for t in timings.values())
        assert report.timings.total <= report.elapsed_seconds
        assert detector.total_timings.total > 0.0

    def test_change_and_dirty_counters(self):
        detector = EventDetector(exact_config())
        report = detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.changes > 0          # cluster creation was logged
        assert report.dirty_clusters == 1  # the new cluster
        assert report.ranked_clusters == 1

    def test_stable_cluster_served_from_cache(self):
        """A cluster whose support and correlations are unchanged between
        quanta must not be re-ranked — the heart of the incremental claim."""
        detector = EventDetector(exact_config())
        messages = burst(["a1", "b1", "c1"], range(6))
        detector.process_quantum(messages)
        report = detector.process_quantum(list(messages))
        assert report.ranked_clusters == 1
        assert report.rank_cache_hits == 1

    def test_incremental_matches_oracle_end_to_end(self):
        """Whole-stream parity: the incremental pipeline reports exactly what
        the from-scratch oracle pipeline reports, quantum by quantum."""
        def stream():
            quanta = [
                burst(["a1", "b1", "c1"], range(6)),
                burst(["a1", "b1", "c1", "d1"], range(4)),
                [Message(f"n{i}", tokens=(f"w{i}a", f"w{i}b")) for i in range(6)],
                burst(["x1", "y1", "z1"], range(5)),
                burst(["a1", "b1"], range(3)) + burst(["x1", "y1", "z1"], range(5)),
                [Message(f"m{i}", tokens=(f"v{i}a",)) for i in range(6)],
            ]
            return quanta

        incremental = EventDetector(exact_config(window_quanta=3))
        oracle = EventDetector(exact_config(window_quanta=3), oracle_ranking=True)
        for batch in stream():
            a = incremental.process_quantum(batch)
            b = oracle.process_quantum(list(batch))
            key = lambda e: (e.event_id, e.keywords, e.rank, e.support)
            assert [key(e) for e in a.reported] == [key(e) for e in b.reported]
            assert [key(e) for e in a.suppressed] == [key(e) for e in b.suppressed]
            assert a.rank_cache_hits >= 0 and b.rank_cache_hits == 0

    def test_oracle_akg_matches_fast_akg_end_to_end(self):
        """Whole-stream parity for the AKG stage: the delta-driven builder
        and the from-scratch oracle builder report identical events."""
        def stream():
            return [
                burst(["a1", "b1", "c1"], range(6)),
                burst(["a1", "b1", "c1", "d1"], range(4)),
                [Message(f"n{i}", tokens=(f"w{i}a", f"w{i}b")) for i in range(6)],
                burst(["x1", "y1", "z1"], range(5)),
                burst(["a1", "b1"], range(3)) + burst(["x1", "y1", "z1"], range(5)),
                [Message(f"m{i}", tokens=(f"v{i}a",)) for i in range(6)],
                burst(["a1", "b1", "c1"], range(6)),
            ]

        fast = EventDetector(exact_config(window_quanta=3))
        oracle = EventDetector(exact_config(window_quanta=3), oracle_akg=True)
        assert fast.builder.oracle is False
        assert oracle.builder.oracle is True
        for batch in stream():
            a = fast.process_quantum(batch)
            b = oracle.process_quantum(list(batch))
            key = lambda e: (e.event_id, e.keywords, e.rank, e.support)
            assert sorted(map(key, a.reported)) == sorted(map(key, b.reported))
            assert sorted(map(key, a.suppressed)) == sorted(map(key, b.suppressed))
            assert set(fast.graph.nodes()) == set(oracle.graph.nodes())

    def test_oracle_akg_via_config(self):
        detector = EventDetector(exact_config(oracle_akg=True))
        assert detector.builder.oracle is True
        detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))

    def test_top_k_uses_rank_order(self):
        detector = EventDetector(exact_config())
        report = detector.process_quantum(
            burst(["a1", "b1", "c1"], range(6))
            + burst(["x1", "y1", "z1"], range(10, 18))
        )
        top = report.top(1)
        assert len(top) == 1
        assert top[0].rank == max(e.rank for e in report.reported)
        assert report.top(0) == []
        assert len(report.top(99)) == len(report.reported)


class TestCkgStats:
    def test_tracking_enabled(self):
        config = exact_config(track_ckg_stats=True)
        detector = EventDetector(config)
        report = detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.ckg_nodes == 3
        assert report.ckg_edges == 3

    def test_tracking_disabled_by_default(self):
        detector = EventDetector(exact_config())
        report = detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.ckg_nodes is None
