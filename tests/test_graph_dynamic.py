"""Unit tests for the DynamicGraph substrate."""

import pytest

from repro.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)
from repro.graph.dynamic_graph import DynamicGraph, edge_key


@pytest.fixture
def graph():
    g = DynamicGraph()
    for n in "abcd":
        g.add_node(n)
    g.add_edge("a", "b", 0.5)
    g.add_edge("b", "c", 0.7)
    return g


class TestEdgeKey:
    def test_orders_endpoints(self):
        assert edge_key("b", "a") == ("a", "b")
        assert edge_key("a", "b") == ("a", "b")

    def test_symmetric(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_mixed_types_fall_back_to_repr(self):
        key1 = edge_key("a", 1)
        key2 = edge_key(1, "a")
        assert key1 == key2


class TestNodes:
    def test_add_and_contains(self, graph):
        assert "a" in graph
        assert graph.has_node("b")
        assert "z" not in graph

    def test_add_duplicate_raises(self, graph):
        with pytest.raises(DuplicateNodeError):
            graph.add_node("a")

    def test_ensure_node_idempotent(self, graph):
        assert graph.ensure_node("z") is True
        assert graph.ensure_node("z") is False
        assert graph.num_nodes == 5

    def test_remove_node_returns_removed_edges(self, graph):
        removed = graph.remove_node("b")
        assert set(removed) == {("a", "b"), ("b", "c")}
        assert "b" not in graph
        assert not graph.has_edge("a", "b")

    def test_remove_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("zzz")

    def test_len_counts_nodes(self, graph):
        assert len(graph) == 4
        assert graph.num_nodes == 4


class TestEdges:
    def test_add_edge_both_directions(self, graph):
        assert graph.has_edge("a", "b")
        assert graph.has_edge("b", "a")

    def test_edge_weight(self, graph):
        assert graph.edge_weight("a", "b") == 0.5
        assert graph.edge_weight("b", "a") == 0.5

    def test_set_edge_weight(self, graph):
        graph.set_edge_weight("a", "b", 0.9)
        assert graph.edge_weight("b", "a") == 0.9

    def test_set_weight_missing_edge_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.set_edge_weight("a", "c", 0.1)

    def test_add_duplicate_edge_raises(self, graph):
        with pytest.raises(DuplicateEdgeError):
            graph.add_edge("b", "a")

    def test_self_loop_rejected(self, graph):
        with pytest.raises(DuplicateEdgeError):
            graph.add_edge("a", "a")

    def test_edge_to_missing_node_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.add_edge("a", "missing")

    def test_remove_edge(self, graph):
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        assert graph.has_node("a") and graph.has_node("b")

    def test_remove_missing_edge_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge("a", "d")

    def test_edges_iterates_each_once(self, graph):
        edges = list(graph.edges())
        assert len(edges) == 2
        assert {(u, v) for u, v, _ in edges} == {("a", "b"), ("b", "c")}

    def test_num_edges(self, graph):
        assert graph.num_edges == 2


class TestNeighbourhoods:
    def test_neighbors(self, graph):
        assert set(graph.neighbors("b")) == {"a", "c"}

    def test_neighbors_missing_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            list(graph.neighbors("zzz"))

    def test_degree(self, graph):
        assert graph.degree("b") == 2
        assert graph.degree("d") == 0

    def test_common_neighbors(self, graph):
        assert graph.common_neighbors("a", "c") == ["b"]
        assert graph.common_neighbors("a", "d") == []

    def test_neighbor_weights_view(self, graph):
        assert graph.neighbor_weights("a") == {"b": 0.5}


class TestUtilities:
    def test_subgraph_adjacency(self, graph):
        sub = graph.subgraph_adjacency(["a", "b"])
        assert set(sub) == {"a", "b"}
        assert sub["a"] == {"b": 0.5}
        assert "c" not in sub["b"]

    def test_copy_independent(self, graph):
        clone = graph.copy()
        clone.remove_edge("a", "b")
        assert graph.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_repr(self, graph):
        assert "num_nodes=4" in repr(graph)
