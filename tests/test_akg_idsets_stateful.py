"""Stateful model check of the sliding-window id-set index.

A hypothesis state machine feeds arbitrary quantum contents into
:class:`IdSetIndex` alongside a naive model (a plain list of the last w
quanta) and asserts support, membership and Jaccard agree after every step.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.akg.idsets import IdSetIndex

WINDOW = 3
KEYWORDS = ["alpha", "beta", "gamma"]


class IdSetModelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.index = IdSetIndex(window_quanta=WINDOW)
        self.history = []  # list of {keyword: set(users)}
        self.quantum = -1

    @rule(
        content=st.dictionaries(
            st.sampled_from(KEYWORDS),
            st.sets(st.integers(0, 15), min_size=0, max_size=6),
            max_size=len(KEYWORDS),
        )
    )
    def add_quantum(self, content):
        self.quantum += 1
        before = {kw: len(self._model_users(kw)) for kw in KEYWORDS}
        delta = self.index.add_quantum(self.quantum, content)
        self.history.append(content)
        # The reported slide delta must equal the model's support diff.
        expected = {
            kw: (before[kw], after)
            for kw in KEYWORDS
            if (after := len(self._model_users(kw))) != before[kw]
        }
        assert dict(delta.support_deltas) == expected
        assert delta.emptied == {
            kw for kw, (_, after) in expected.items() if after == 0
        }
        assert delta.appeared == {kw for kw, users in content.items() if users}

    def _model_users(self, keyword):
        live = self.history[-WINDOW:]
        users = set()
        for quantum in live:
            users |= quantum.get(keyword, set())
        return users

    @invariant()
    def support_matches_model(self):
        for keyword in KEYWORDS:
            expected = self._model_users(keyword)
            assert self.index.support(keyword) == len(expected)
            assert self.index.users(keyword) == expected
            assert (keyword in self.index) == bool(expected)

    @invariant()
    def jaccard_matches_model(self):
        for i, kw1 in enumerate(KEYWORDS):
            for kw2 in KEYWORDS[i + 1 :]:
                a, b = self._model_users(kw1), self._model_users(kw2)
                if not a or not b:
                    expected = 0.0
                else:
                    expected = len(a & b) / len(a | b)
                assert abs(self.index.jaccard(kw1, kw2) - expected) < 1e-12


IdSetModelMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=25, deadline=None
)
TestIdSetModel = IdSetModelMachine.TestCase
