"""Public API surface: imports, __all__ hygiene, docstring presence."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.core",
    "repro.graph",
    "repro.akg",
    "repro.stream",
    "repro.text",
    "repro.datasets",
    "repro.baselines",
    "repro.eval",
    "repro.pipeline",
    "repro.api",
    "repro.extract",
]

MODULES = [
    "repro.config",
    "repro.errors",
    "repro.cli",
    "repro.core.atoms",
    "repro.core.clusters",
    "repro.core.maintenance",
    "repro.core.ranking",
    "repro.core.events",
    "repro.core.engine",
    "repro.core.postprocess",
    "repro.graph.dynamic_graph",
    "repro.graph.biconnected",
    "repro.graph.quasi_clique",
    "repro.graph.generators",
    "repro.akg.idsets",
    "repro.akg.burstiness",
    "repro.akg.minhash",
    "repro.akg.correlation",
    "repro.akg.builder",
    "repro.akg.ckg_stats",
    "repro.pipeline.reports",
    "repro.pipeline.report_index",
    "repro.pipeline.stages",
    "repro.api.session",
    "repro.api.session_events",
    "repro.api.sinks",
    "repro.api.checkpoint",
    "repro.stream.messages",
    "repro.stream.window",
    "repro.stream.sources",
    "repro.text.tokenize",
    "repro.text.stopwords",
    "repro.text.pos",
    "repro.text.synonyms",
    "repro.extract.base",
    "repro.extract.keyword",
    "repro.extract.structured",
    "repro.extract.edges",
    "repro.datasets.vocab",
    "repro.datasets.events",
    "repro.datasets.synthetic",
    "repro.datasets.traces",
    "repro.datasets.entity_streams",
    "repro.datasets.headlines",
    "repro.datasets.figure1",
    "repro.baselines.offline_bc",
    "repro.baselines.tracking",
    "repro.baselines.trending",
    "repro.eval.matching",
    "repro.eval.metrics",
    "repro.eval.filtering",
    "repro.eval.quality",
    "repro.eval.runner",
    "repro.eval.comparison",
    "repro.eval.reporting",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES + MODULES)
def test_module_imports_and_documented(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", SUBPACKAGES + MODULES)
def test_all_entries_exist(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)
    assert repro.__version__


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{module_name}.{name} lacks a docstring"


def test_version_matches_pyproject():
    from pathlib import Path

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    if pyproject.exists():
        assert f'version = "{repro.__version__}"' in pyproject.read_text()
