"""ClusterRegistry bookkeeping: ownership indexes, merge/split identity."""

import pytest

from repro.core.clusters import Cluster, ClusterRegistry
from repro.errors import ClusterError


@pytest.fixture
def registry():
    return ClusterRegistry()


def make_triangle(registry, a="a", b="b", c="c", quantum=0):
    return registry.new_cluster(
        {a, b, c},
        {(a, b), (b, c), (a, c)},
        born_quantum=quantum,
    )


class TestClusterRecord:
    def test_size_and_edges(self, registry):
        cluster = make_triangle(registry)
        assert cluster.size == 3
        assert cluster.num_edges == 3

    def test_density_clique(self, registry):
        cluster = make_triangle(registry)
        assert cluster.density() == pytest.approx(1.0)

    def test_density_sparse(self, registry):
        cluster = registry.new_cluster(
            {"a", "b", "c", "d"},
            {("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")},
        )
        assert cluster.density() == pytest.approx(4 / 6)

    def test_adjacency_restricted_to_cluster_edges(self, registry):
        cluster = make_triangle(registry)
        adjacency = cluster.adjacency()
        assert adjacency["a"] == {"b", "c"}


class TestNewCluster:
    def test_indexes_updated(self, registry):
        cluster = make_triangle(registry)
        assert registry.cluster_of_edge("a", "b") == cluster.cluster_id
        assert registry.clusters_of_node("a") == {cluster.cluster_id}

    def test_duplicate_edge_ownership_rejected(self, registry):
        make_triangle(registry)
        with pytest.raises(ClusterError):
            registry.new_cluster({"a", "b", "x"}, {("a", "b")})

    def test_duplicate_id_rejected(self, registry):
        cluster = make_triangle(registry)
        with pytest.raises(ClusterError):
            registry.new_cluster({"x"}, set(), cluster_id=cluster.cluster_id)

    def test_node_in_two_clusters(self, registry):
        """Clusters may share nodes (bowtie), never edges."""
        c1 = make_triangle(registry, "a", "b", "c")
        c2 = make_triangle(registry, "c", "d", "e")
        assert registry.clusters_of_node("c") == {c1.cluster_id, c2.cluster_id}


class TestMerge:
    def test_survivor_is_largest(self, registry):
        small = make_triangle(registry, "a", "b", "c")
        big = registry.new_cluster(
            {"p", "q", "r", "s"},
            {("p", "q"), ("q", "r"), ("r", "s"), ("p", "s")},
        )
        survivor = registry.merge([small.cluster_id, big.cluster_id])
        assert survivor.cluster_id == big.cluster_id
        assert "a" in survivor.nodes
        assert registry.cluster_of_edge("a", "b") == big.cluster_id
        assert small.cluster_id not in registry

    def test_merge_keeps_earliest_birth(self, registry):
        c1 = make_triangle(registry, "a", "b", "c", quantum=2)
        c2 = registry.new_cluster(
            {"p", "q", "r", "s"},
            {("p", "q"), ("q", "r"), ("r", "s"), ("p", "s")},
            born_quantum=7,
        )
        survivor = registry.merge([c1.cluster_id, c2.cluster_id])
        assert survivor.born_quantum == 2

    def test_merge_single_id_is_noop(self, registry):
        cluster = make_triangle(registry)
        assert registry.merge([cluster.cluster_id]) is cluster

    def test_merge_empty_raises(self, registry):
        with pytest.raises(ClusterError):
            registry.merge([])


class TestAbsorb:
    def test_adds_nodes_and_edges(self, registry):
        cluster = make_triangle(registry)
        registry.absorb(cluster.cluster_id, {"d"}, {("a", "d"), ("c", "d")})
        assert "d" in cluster.nodes
        assert registry.cluster_of_edge("a", "d") == cluster.cluster_id

    def test_foreign_edge_rejected(self, registry):
        c1 = make_triangle(registry, "a", "b", "c")
        c2 = make_triangle(registry, "x", "y", "z")
        with pytest.raises(ClusterError):
            registry.absorb(c1.cluster_id, {"x", "y"}, {("x", "y")})


class TestDissolveAndRelease:
    def test_dissolve_clears_indexes(self, registry):
        cluster = make_triangle(registry)
        registry.dissolve(cluster.cluster_id)
        assert registry.cluster_of_edge("a", "b") is None
        assert registry.clusters_of_node("a") == set()
        assert len(registry) == 0

    def test_release_edges(self, registry):
        cluster = make_triangle(registry)
        registry.release_edges(cluster.cluster_id, [("a", "b")])
        assert registry.cluster_of_edge("a", "b") is None
        assert ("a", "c") in cluster.edges
        registry.check_integrity()

    def test_release_node(self, registry):
        cluster = make_triangle(registry)
        registry.release_node(cluster.cluster_id, "a")
        assert registry.clusters_of_node("a") == set()
        assert "a" not in cluster.nodes


class TestReplace:
    def test_largest_fragment_keeps_id(self, registry):
        cluster = registry.new_cluster(
            {"a", "b", "c", "d", "e", "f"},
            {
                ("a", "b"), ("b", "c"), ("a", "c"),
                ("d", "e"), ("e", "f"), ("d", "f"),
            },
            born_quantum=1,
        )
        original_id = cluster.cluster_id
        fragments = registry.replace(
            original_id,
            [
                ({"a", "b", "c"}, {("a", "b"), ("b", "c"), ("a", "c")}),
                ({"d", "e", "f", "g"}, {("d", "e"), ("e", "f"), ("d", "f")}),
            ],
            quantum=5,
        )
        by_id = {f.cluster_id: f for f in fragments}
        assert original_id in by_id
        assert by_id[original_id].nodes == {"d", "e", "f", "g"}
        assert by_id[original_id].born_quantum == 1
        other = next(f for f in fragments if f.cluster_id != original_id)
        assert other.born_quantum == 5
        registry.check_integrity()

    def test_replace_with_no_fragments_dissolves(self, registry):
        cluster = make_triangle(registry)
        assert registry.replace(cluster.cluster_id, []) == []
        assert len(registry) == 0


class TestIntegrity:
    def test_clean_registry_passes(self, registry):
        make_triangle(registry)
        registry.check_integrity()

    def test_detects_corruption(self, registry):
        cluster = make_triangle(registry)
        cluster.edges.add(("x", "y"))  # corrupt directly
        with pytest.raises(ClusterError):
            registry.check_integrity()

    def test_decomposition_snapshot(self, registry):
        make_triangle(registry, "a", "b", "c")
        make_triangle(registry, "x", "y", "z")
        snapshot = registry.decomposition()
        assert len(snapshot) == 2
        assert frozenset({("a", "b"), ("b", "c"), ("a", "c")}) in snapshot


class TestPersistence:
    def test_state_round_trip_preserves_everything(self):
        registry = ClusterRegistry()
        registry.new_cluster({"a", "b", "c"}, {("a", "b"), ("b", "c"), ("a", "c")},
                             born_quantum=2)
        registry.new_cluster({"x", "y", "z"}, {("x", "y"), ("y", "z"), ("x", "z")},
                             born_quantum=5)
        restored = ClusterRegistry()
        restored.from_state(registry.to_state())
        assert restored.decomposition() == registry.decomposition()
        assert restored.cluster_ids() == registry.cluster_ids()
        assert restored.get(1).born_quantum == 2
        assert restored.clusters_of_node("y") == {2}
        assert restored.cluster_of_edge("a", "b") == 1
        restored.check_integrity()
        # id allocation continues where the original left off
        assert restored.new_cluster({"p", "q", "r"},
                                    {("p", "q"), ("q", "r"), ("p", "r")}).cluster_id == 3

    def test_state_handles_mixed_type_nodes(self):
        """ClusterMaintainer is documented over arbitrary hashable nodes;
        snapshotting must not assume mutual comparability."""
        from repro.graph.dynamic_graph import edge_key

        registry = ClusterRegistry()
        nodes = {1, "a", (2, 3)}
        edges = {edge_key(1, "a"), edge_key("a", (2, 3)), edge_key(1, (2, 3))}
        registry.new_cluster(nodes, edges)
        restored = ClusterRegistry()
        restored.from_state(registry.to_state())
        assert restored.get(1).nodes == nodes
        assert restored.get(1).edges == edges
        restored.check_integrity()
