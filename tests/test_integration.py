"""End-to-end integration: synthetic traces through runner, eval, comparison.

These are the slowest tests in the suite (a few seconds total); they verify
the properties the benchmarks rely on, at reduced scale.
"""

import pytest

from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.datasets.headlines import headlines_for_trace
from repro.datasets.traces import (
    build_es_trace,
    build_ground_truth_trace,
    build_tw_trace,
)
from repro.eval.comparison import compare_schemes
from repro.eval.runner import evaluate_run, run_detector
from repro.text.pos import NounTagger


@pytest.fixture(scope="module")
def tw_trace():
    return build_tw_trace(total_messages=10_000, n_events=6, seed=7)


@pytest.fixture(scope="module")
def tw_run(tw_trace):
    return run_detector(tw_trace, DetectorConfig())


class TestDetectionQuality:
    def test_finds_most_discoverable_events(self, tw_trace, tw_run):
        summary = evaluate_run(tw_run, tw_trace)
        assert summary.pr.recall >= 0.7
        assert summary.pr.precision >= 0.6

    def test_quality_in_paper_band(self, tw_trace, tw_run):
        summary = evaluate_run(tw_run, tw_trace)
        assert 3.0 <= summary.quality.avg_cluster_size <= 12.0

    def test_akg_much_smaller_than_vocabulary(self, tw_trace, tw_run):
        # the trace touches thousands of distinct words; the AKG holds tens
        assert tw_run.peak_akg_nodes < 250

    def test_run_bookkeeping(self, tw_trace, tw_run):
        assert tw_run.messages_processed == tw_trace.total_messages
        assert tw_run.quanta == (tw_trace.total_messages + 159) // 160
        assert tw_run.throughput > 0


class TestParameterSensitivityShape:
    """The headline trends of Figures 7-10 at reduced scale."""

    @pytest.mark.parametrize("trace_builder", [build_tw_trace])
    def test_recall_increases_with_quantum_size(self, trace_builder):
        trace = trace_builder(total_messages=12_000, n_events=8, seed=13)
        recalls = []
        for quantum in (80, 240):
            config = DetectorConfig(quantum_size=quantum)
            summary = evaluate_run(run_detector(trace, config), trace)
            recalls.append(summary.pr.recall)
        assert recalls[1] >= recalls[0]

    def test_recall_decreases_with_gamma(self):
        trace = build_tw_trace(total_messages=12_000, n_events=8, seed=13)
        recalls = []
        for gamma in (0.10, 0.25):
            config = DetectorConfig(ec_threshold=gamma)
            summary = evaluate_run(run_detector(trace, config), trace)
            recalls.append(summary.pr.recall)
        assert recalls[0] >= recalls[1]


class TestGroundTruthScenario:
    @pytest.fixture(scope="class")
    def gt(self):
        trace = build_ground_truth_trace(
            total_messages=15_000,
            n_headline_discoverable=8,
            n_headline_subthreshold=6,
            n_local_events=10,
            n_spurious=2,
            seed=3,
        )
        run = run_detector(trace, DetectorConfig())
        return trace, run

    def test_subthreshold_headlines_not_counted_against_recall(self, gt):
        trace, run = gt
        summary = evaluate_run(run, trace)
        subs = [e for e in trace.ground_truth if e.event_id.startswith("gt-sub")]
        assert len(subs) == 6
        discoverable_ids = {
            e.event_id
            for e in trace.ground_truth
            if not e.spurious and e.discoverable(160, 4)
        }
        assert not any(e.event_id in discoverable_ids for e in subs)
        assert summary.pr.recall >= 0.7

    def test_local_events_found_beyond_headlines(self, gt):
        """The paper found ~6x more events than Google News carried."""
        trace, run = gt
        summary = evaluate_run(run, trace)
        matched = summary.match.matched_truth_ids()
        local = [t for t in matched if t.startswith("gt-local")]
        headline = [t for t in matched if t.startswith("gt-head")]
        assert local, "local events must be discovered"
        assert len(local) + len(headline) > len(headline)

    def test_detection_beats_headline_for_some_events(self, gt):
        trace, run = gt
        summary = evaluate_run(run, trace)
        headlines = headlines_for_trace(trace)
        leads = []
        for headline in headlines:
            detected = summary.match.first_detection_message(
                headline.event_id, run.config.quantum_size
            )
            lead = headline.lead_time_messages(detected)
            if lead is not None:
                leads.append(lead)
        assert leads, "at least one headlined event must be detected"
        assert max(leads) > 0, "detection should beat the headline sometimes"


class TestSchemeComparisonShape:
    def test_table3_shape(self):
        """The Section 7.3 orderings at reduced scale."""
        trace = build_ground_truth_trace(
            total_messages=15_000,
            n_headline_discoverable=8,
            n_headline_subthreshold=4,
            n_local_events=12,
            n_spurious=2,
            seed=3,
        )
        comparison = compare_schemes(trace, DetectorConfig())
        scp = comparison.row("SCP Clusters")
        bc = comparison.row("Bi-connected Clusters")
        bc_edges = comparison.row("Bi-connected clusters +Edges")
        # +Edges reports far more "events" with far worse precision
        assert bc_edges.events_discovered > scp.events_discovered
        assert bc_edges.precision < scp.precision
        assert bc_edges.avg_cluster_size < scp.avg_cluster_size
        # plain BC never beats SCP on recall (merging can only lose events)
        assert bc.recall <= scp.recall + 1e-9
        # offline produces extra cluster instances overall
        assert comparison.additional_clusters_pct > 0
        # most BC event clusters coincide with SCP clusters, not all
        assert 50.0 <= comparison.exact_overlap_pct <= 100.0


class TestDetectorResilience:
    def test_empty_quantum_handled(self):
        detector = EventDetector(DetectorConfig(quantum_size=4))
        report = detector.process_quantum([])
        assert report.reported == []

    def test_repeated_runs_deterministic(self):
        trace = build_es_trace(total_messages=5000, n_events=6, seed=5)
        outputs = []
        for _ in range(2):
            run = run_detector(trace, DetectorConfig())
            outputs.append(
                sorted(
                    (r.born_quantum, tuple(sorted(r.all_keywords)))
                    for r in run.records
                )
            )
        assert outputs[0] == outputs[1]
