"""Incremental cluster maintenance: the Section 5 algorithms.

Each operation is checked against the global decomposition oracle
(Theorem 3) and against the concrete walkthroughs of Figures 5 and 6.
"""

import pytest

from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.graph.generators import complete_clique, gnp_random_graph

from helpers import brute_force_decomposition, graph_from_edges


@pytest.fixture
def maintainer():
    return ClusterMaintainer()


def build(maintainer, edges, nodes=()):
    """Apply an edge list through the maintainer (nodes auto-added)."""
    for u, v in edges:
        maintainer.graph.ensure_node(u)
        maintainer.graph.ensure_node(v)
        maintainer.add_edge(u, v)
    for n in nodes:
        maintainer.graph.ensure_node(n)
    return maintainer


def cluster_node_sets(maintainer):
    return {frozenset(c.nodes) for c in maintainer.registry}


class TestEdgeAddition:
    def test_triangle_forms_cluster(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c")])
        assert len(maintainer.registry) == 0  # no cycle yet
        cluster = maintainer.add_edge("a", "c")
        assert cluster is not None
        assert cluster.nodes == {"a", "b", "c"}

    def test_four_cycle_forms_cluster(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("c", "d")])
        cluster = maintainer.add_edge("a", "d")
        assert cluster.nodes == {"a", "b", "c", "d"}

    def test_chain_edge_creates_nothing(self, maintainer):
        build(maintainer, [("a", "b")])
        maintainer.graph.ensure_node("c")
        assert maintainer.add_edge("b", "c") is None
        assert len(maintainer.registry) == 0

    def test_lemma6_shared_edge_merges(self, maintainer):
        """Lemma 6: two aMQCs sharing an edge merge into one."""
        build(
            maintainer,
            [("a", "b"), ("b", "c"), ("a", "c")],  # triangle 1
        )
        build(maintainer, [("b", "d")])
        cluster = maintainer.add_edge("c", "d")  # triangle 2 shares edge (b,c)
        assert len(maintainer.registry) == 1
        assert cluster.nodes == {"a", "b", "c", "d"}

    def test_figure5a_edge_addition(self, maintainer):
        """Figure 5(a): edge (1,2) arrives; clusters (1,2,4), (1,2,4,5) and
        (1,2,3,4) form and merge into C3 = {1,2,3,4,5}."""
        build(
            maintainer,
            [(1, 4), (2, 4), (1, 5), (2, 5), (1, 3), (3, 4)],
        )
        cluster = maintainer.add_edge(1, 2)
        assert cluster is not None
        assert cluster.nodes == {1, 2, 3, 4, 5}
        maintainer.check_against_oracle()

    def test_example2_merge_via_new_edges(self, maintainer):
        """Section 4.2 Example 2 / Figure 3(b): two clusters merge when new
        edges create a short cycle across them."""
        build(maintainer, [("a1", "a2"), ("a2", "a3"), ("a1", "a3")])
        build(maintainer, [("b1", "b2"), ("b2", "b3"), ("b1", "b3")])
        assert len(maintainer.registry) == 2
        maintainer.add_edge("a1", "b1")
        assert len(maintainer.registry) == 2  # single cross edge: no cycle
        cluster = maintainer.add_edge("a2", "b2")  # still length-5 cycles only?
        # a1-b1 + a2-b2 with a1~a2 and b1~b2 closes 4-cycle a1-b1-b2-a2
        assert len(maintainer.registry) == 1
        merged = next(iter(maintainer.registry))
        assert {"a1", "a2", "a3", "b1", "b2", "b3"} <= merged.nodes
        maintainer.check_against_oracle()


class TestNodeAddition:
    def test_figure2a_rule_r1(self, maintainer):
        """R1: incoming n correlates with n1, n2 having common neighbour nc."""
        build(maintainer, [("n1", "nc"), ("n2", "nc")])
        clusters = maintainer.add_node_with_edges(
            "n", {"n1": 1.0, "n2": 1.0}
        )
        assert len(clusters) == 1
        assert clusters[0].nodes == {"n", "n1", "n2", "nc"}

    def test_figure2b_rule_r2(self, maintainer):
        """R2: incoming n correlates with adjacent n1, n2."""
        build(maintainer, [("n1", "n2")])
        clusters = maintainer.add_node_with_edges(
            "n", {"n1": 1.0, "n2": 1.0}
        )
        assert len(clusters) == 1
        assert clusters[0].nodes == {"n", "n1", "n2"}

    def test_zero_or_one_correlation_no_cluster(self, maintainer):
        """'If the incoming node shows correlation with zero or one node, we
        simply add that node (and edge) and do nothing.'"""
        build(maintainer, [("n1", "n2")])
        assert maintainer.add_node_with_edges("x", {"n1": 1.0}) == []
        assert maintainer.add_node_with_edges("y", {}) == []
        assert len(maintainer.registry) == 0

    def test_figure5b_node_addition_merges_clusters(self, maintainer):
        """Figure 5(b): node n with edges to 1 and 2 joins via common
        neighbour 4 and the new cluster merges with C1 and C2."""
        build(
            maintainer,
            [(1, 3), (3, 4), (1, 4), (2, 4), (2, 5), (4, 5)],
        )
        assert len(maintainer.registry) == 2
        clusters = maintainer.add_node_with_edges("n", {1: 1.0, 2: 1.0})
        assert len(maintainer.registry) == 1
        merged = next(iter(maintainer.registry))
        assert merged.nodes == {1, 2, 3, 4, 5, "n"}
        maintainer.check_against_oracle()

    def test_example1_eighth_node_joins_mqc(self, maintainer):
        """Section 4.2 Example 1: an MQC of size 7 admits an 8th node through
        SCP without the stringent MQC degree requirement."""
        clique = complete_clique(7)
        for n in clique.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in clique.edges():
            maintainer.add_edge(u, v)
        assert len(maintainer.registry) == 1
        clusters = maintainer.add_node_with_edges(7, {0: 1.0, 1: 1.0})
        assert len(maintainer.registry) == 1
        assert 7 in next(iter(maintainer.registry)).nodes


class TestNodeDeletion:
    def test_figure5c_cluster_dissolves(self, maintainer):
        """Figure 5(c) behaviour (topology adapted — the figure's exact edge
        set is not recoverable from the text): every short cycle of the
        cluster passes through n, so when n departs the cycle check removes
        edge after edge and the whole cluster is discarded."""
        build(
            maintainer,
            [("n", 1), ("n", 3), ("n", 4), (3, 4), (1, 2), (2, 3)],
        )
        assert len(maintainer.registry) == 1
        assert next(iter(maintainer.registry)).nodes == {"n", 1, 2, 3, 4}
        maintainer.remove_node("n")
        assert len(maintainer.registry) == 0
        maintainer.check_against_oracle()

    def test_figure6_articulation_split(self, maintainer, figure6_graph):
        """Figure 6: deleting node 9 splits the cluster at articulation
        node 3 into two clusters."""
        for n in figure6_graph.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in figure6_graph.edges():
            maintainer.add_edge(u, v)
        assert len(maintainer.registry) == 1
        maintainer.remove_node(9)
        maintainer.check_against_oracle()
        sets = cluster_node_sets(maintainer)
        assert len(sets) == 2
        assert frozenset({0, 1, 2, 3, 10, 11}) in sets
        assert frozenset({3, 4, 5, 6, 7, 8}) in sets

    def test_lemma7_degree_two_deletion(self, maintainer, figure2a_graph):
        """Lemma 7 setting: n has exactly edges to n1, n2 with common
        neighbour nc; removing n leaves no cluster (the 4-cycle dies)."""
        for n in figure2a_graph.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in figure2a_graph.edges():
            maintainer.add_edge(u, v)
        assert len(maintainer.registry) == 1
        maintainer.remove_node("n")
        assert len(maintainer.registry) == 0

    def test_unclustered_node_removal(self, maintainer):
        build(maintainer, [("a", "b")])
        maintainer.remove_node("a")
        assert not maintainer.graph.has_node("a")

    def test_batched_node_removal(self, maintainer):
        build(
            maintainer,
            [("a", "b"), ("b", "c"), ("a", "c"), ("x", "y"), ("y", "z"), ("x", "z")],
        )
        maintainer.remove_nodes(["a", "x"])
        assert len(maintainer.registry) == 0
        maintainer.check_against_oracle()


class TestEdgeDeletion:
    def test_figure5d_edge_deletion(self, maintainer):
        """Figure 5(d) behaviour (topology adapted): removing edge (n,1)
        breaks the only short cycle containing nodes 1 and 2; the cycle
        check drops them and a smaller cluster with nodes (3,4,n) remains."""
        build(
            maintainer,
            [
                ("n", 1), (1, 2), (2, 3), (3, "n"),  # quad through 1, 2
                (3, 4), (4, "n"),                      # triangle (3,4,n)
            ],
        )
        assert len(maintainer.registry) == 1
        assert next(iter(maintainer.registry)).nodes == {"n", 1, 2, 3, 4}
        maintainer.remove_edge("n", 1)
        maintainer.check_against_oracle()
        sets = cluster_node_sets(maintainer)
        assert sets == {frozenset({3, 4, "n"})}

    def test_triangle_edge_removal_dissolves(self, maintainer, triangle):
        for n in triangle.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in triangle.edges():
            maintainer.add_edge(u, v)
        maintainer.remove_edge(0, 1)
        assert len(maintainer.registry) == 0

    def test_clique_tolerates_edge_loss(self, maintainer):
        clique = complete_clique(5)
        for n in clique.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in clique.edges():
            maintainer.add_edge(u, v)
        maintainer.remove_edge(0, 1)
        assert len(maintainer.registry) == 1
        cluster = next(iter(maintainer.registry))
        assert cluster.nodes == {0, 1, 2, 3, 4}
        maintainer.check_against_oracle()


class TestGlobalOracle:
    @pytest.mark.parametrize("seed", range(10))
    def test_decompose_graph_matches_brute_force(self, seed):
        graph = gnp_random_graph(12, 0.25, seed=seed)
        ours = {
            frozenset(edges) for _, edges in decompose_graph(graph)
        }
        assert ours == brute_force_decomposition(graph)

    @pytest.mark.parametrize("seed", range(10))
    def test_incremental_build_matches_oracle(self, seed):
        graph = gnp_random_graph(14, 0.2, seed=seed)
        maintainer = ClusterMaintainer()
        for n in graph.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in graph.edges():
            maintainer.add_edge(u, v)
        maintainer.check_against_oracle()
        maintainer.registry.check_integrity()

    def test_lemma5_order_independence(self):
        """Lemma 5: the final clusters do not depend on edge order."""
        import random

        graph = gnp_random_graph(12, 0.3, seed=42)
        edges = [(u, v) for u, v, _ in graph.edges()]
        reference = None
        for shuffle_seed in range(6):
            order = edges[:]
            random.Random(shuffle_seed).shuffle(order)
            maintainer = ClusterMaintainer()
            for n in graph.nodes():
                maintainer.graph.ensure_node(n)
            for u, v in order:
                maintainer.add_edge(u, v)
            snapshot = maintainer.registry.decomposition()
            if reference is None:
                reference = snapshot
            assert snapshot == reference


class TestChangeLog:
    def test_created_and_merged_entries(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        changes = maintainer.pop_changes()
        assert ("created" in {c.kind for c in changes})
        assert maintainer.pop_changes() == []  # cleared

    def test_split_entry(self, maintainer, figure6_graph):
        for n in figure6_graph.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in figure6_graph.edges():
            maintainer.add_edge(u, v)
        maintainer.pop_changes()
        maintainer.remove_node(9)
        kinds = {c.kind for c in maintainer.pop_changes()}
        assert "split" in kinds

    def test_dissolved_entry(self, maintainer, triangle):
        for n in triangle.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in triangle.edges():
            maintainer.add_edge(u, v)
        maintainer.pop_changes()
        maintainer.remove_edge(0, 1)
        kinds = {c.kind for c in maintainer.pop_changes()}
        assert "dissolved" in kinds

    def test_edge_weight_delta_recorded(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        maintainer.pop_changes()
        maintainer.set_edge_weight("a", "b", 0.75)
        changes = maintainer.pop_changes()
        assert [c.kind for c in changes] == ["edge-weight"]
        assert changes[0].edge == ("a", "b")
        assert changes[0].new == 0.75

    def test_same_weight_refresh_is_silent(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        maintainer.pop_changes()
        maintainer.set_edge_weight("a", "b", 1.0)  # unchanged value
        assert maintainer.pop_changes() == []

    def test_drain_changes_returns_batch(self, maintainer):
        build(maintainer, [("a", "b"), ("b", "c"), ("a", "c")])
        batch = maintainer.drain_changes()
        assert batch.dirty_clusters(maintainer.registry)
        assert len(maintainer.drain_changes()) == 0  # cleared
