"""MinHash sketches: determinism, candidate filtering, estimation accuracy,
and the incremental windowed index (Section 3.2.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.akg.correlation import exact_jaccard
from repro.akg.minhash import (
    MinHasher,
    WindowedSketchIndex,
    estimate_jaccard,
    sketches_share_value,
)
from repro.errors import ConfigError


class TestMinHasher:
    def test_deterministic_across_instances(self):
        h1, h2 = MinHasher(4, seed=7), MinHasher(4, seed=7)
        assert h1.hash_user("alice") == h2.hash_user("alice")

    def test_seed_changes_hashes(self):
        h1, h2 = MinHasher(4, seed=7), MinHasher(4, seed=8)
        assert h1.hash_user("alice") != h2.hash_user("alice")

    def test_sketch_is_sorted_bottom_p(self):
        hasher = MinHasher(3, seed=1)
        users = [f"u{i}" for i in range(20)]
        sketch = hasher.sketch(users)
        assert len(sketch) == 3
        assert list(sketch) == sorted(sketch)
        all_hashes = sorted(hasher.hash_user(u) for u in users)
        assert list(sketch) == all_hashes[:3]

    def test_sketch_shorter_than_p(self):
        hasher = MinHasher(5, seed=1)
        assert len(hasher.sketch(["a", "b"])) == 2

    def test_invalid_p(self):
        with pytest.raises(ConfigError):
            MinHasher(0)


class TestCandidateFilter:
    def test_identical_sets_always_collide(self):
        hasher = MinHasher(2, seed=3)
        users = {f"u{i}" for i in range(10)}
        assert sketches_share_value(hasher.sketch(users), hasher.sketch(users))

    def test_disjoint_sets_never_collide(self):
        hasher = MinHasher(4, seed=3)
        s1 = hasher.sketch({f"a{i}" for i in range(10)})
        s2 = hasher.sketch({f"b{i}" for i in range(10)})
        assert not sketches_share_value(s1, s2)

    def test_empty_sketch_no_collision(self):
        assert not sketches_share_value((), (1, 2))

    def test_collision_rate_tracks_jaccard(self):
        """Over many draws, pairs with higher Jaccard collide more — the
        probabilistic guarantee of Section 3.2.2 (Cohen [7])."""
        rng = random.Random(0)
        hits = {0.2: 0, 0.8: 0}
        trials = 200
        for trial in range(trials):
            hasher = MinHasher(2, seed=trial)
            base = [f"u{trial}_{i}" for i in range(20)]
            for j in hits:
                shared = int(round(20 * 2 * j / (1 + j)))  # |A n B| for target J
                a = set(base[:20])
                b = set(base[:shared]) | {f"x{trial}_{i}" for i in range(20 - shared)}
                if sketches_share_value(hasher.sketch(a), hasher.sketch(b)):
                    hits[j] += 1
        assert hits[0.8] > hits[0.2]
        assert hits[0.8] / trials > 0.8  # high-J pairs almost always collide


class TestEstimateJaccard:
    def test_identical(self):
        hasher = MinHasher(8, seed=1)
        sketch = hasher.sketch({f"u{i}" for i in range(30)})
        assert estimate_jaccard(sketch, sketch, 8) == 1.0

    def test_disjoint(self):
        hasher = MinHasher(8, seed=1)
        s1 = hasher.sketch({f"a{i}" for i in range(30)})
        s2 = hasher.sketch({f"b{i}" for i in range(30)})
        assert estimate_jaccard(s1, s2, 8) == 0.0

    def test_empty(self):
        assert estimate_jaccard((), (1,), 4) == 0.0

    def test_estimation_accuracy(self):
        """Bottom-p estimate converges to the true Jaccard for large p."""
        universe = [f"u{i}" for i in range(200)]
        a = set(universe[:120])
        b = set(universe[60:180])
        true = exact_jaccard(a, b)
        errors = []
        for seed in range(30):
            hasher = MinHasher(48, seed=seed)
            est = estimate_jaccard(hasher.sketch(a), hasher.sketch(b), 48)
            errors.append(abs(est - true))
        assert sum(errors) / len(errors) < 0.08

    def test_exact_when_sets_small(self):
        a = {f"u{i}" for i in range(4)}
        b = {f"u{i}" for i in range(2, 6)}
        hasher = MinHasher(16, seed=5)
        est = estimate_jaccard(hasher.sketch(a), hasher.sketch(b), 16)
        assert est == pytest.approx(exact_jaccard(a, b))


class TestWindowedSketchIndex:
    @given(
        quanta=st.lists(
            st.sets(st.integers(0, 40), min_size=0, max_size=12),
            min_size=1,
            max_size=8,
        ),
        p=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_equals_full_recompute(self, quanta, p):
        """The incremental window merge equals sketching the full window id
        set from scratch — the correctness condition for the optimization."""
        window = 3
        hasher = MinHasher(p, seed=11)
        index = WindowedSketchIndex(hasher, window_quanta=window)
        for q, users in enumerate(quanta):
            index.add_quantum(q, {"kw": users} if users else {})
        live = quanta[-window:]
        union = set().union(*live) if live else set()
        assert index.sketch("kw") == hasher.sketch(union)

    def test_expiry(self):
        hasher = MinHasher(2, seed=1)
        index = WindowedSketchIndex(hasher, window_quanta=2)
        index.add_quantum(0, {"kw": {1, 2, 3}})
        index.add_quantum(1, {})
        index.add_quantum(2, {})
        assert index.sketch("kw") == ()

    def test_untouched_sketch_served_from_cache(self):
        """Only dirtied sketches are re-merged: an untouched keyword costs
        zero merge work no matter how often it is queried."""
        hasher = MinHasher(2, seed=1)
        index = WindowedSketchIndex(hasher, window_quanta=4)
        index.add_quantum(0, {"kw": {1, 2, 3}})
        first = index.sketch("kw")
        assert index.merge_recomputes == 1
        for _ in range(5):
            assert index.sketch("kw") == first
        assert index.merge_recomputes == 1
        # other keywords entering leave "kw" clean
        index.add_quantum(1, {"other": {7, 8}})
        assert index.sketch("kw") == first
        assert index.merge_recomputes == 1
        index.sketch("other")
        assert index.merge_recomputes == 2  # only "other" was merged

    def test_dirtied_sketch_recomputed_on_appearance_and_expiry(self):
        hasher = MinHasher(2, seed=1)
        index = WindowedSketchIndex(hasher, window_quanta=2)
        index.add_quantum(0, {"kw": {1, 2, 3}})
        s0 = index.sketch("kw")
        index.add_quantum(1, {"kw": {4, 5}})  # appearance dirties
        s1 = index.sketch("kw")
        assert s1 == hasher.sketch({1, 2, 3, 4, 5})
        index.add_quantum(2, {})  # quantum-0 mini expires -> dirties
        assert index.sketch("kw") == hasher.sketch({4, 5})
        assert s0 == hasher.sketch({1, 2, 3})


class TestCacheBound:
    """The per-user hash memo must track the live window, not all history."""

    def test_evict_removes_only_named_users(self):
        hasher = MinHasher(2, seed=3)
        for user in range(10):
            hasher.hash_user(user)
        assert hasher.cache_size == 10
        assert hasher.evict([3, 4, 99]) == 2  # 99 was never cached
        assert hasher.cache_size == 8
        # evicted users re-memoise to the identical value
        before = MinHasher(2, seed=3).hash_user(3)
        assert hasher.hash_user(3) == before
        assert hasher.cache_size == 9

    def test_builder_cache_bounded_by_window_population(self):
        """Replaying a stream of one-shot users must not grow the memo
        beyond the users actually present in the window."""
        from repro.akg.builder import AkgBuilder
        from repro.config import DetectorConfig
        from repro.core.maintenance import ClusterMaintainer

        config = DetectorConfig(
            quantum_size=8,
            window_quanta=3,
            high_state_threshold=2,
            ec_threshold=0.3,
        )
        builder = AkgBuilder(config, ClusterMaintainer())
        for quantum in range(40):
            # Fresh user cohort every quantum: after the window slides past
            # a cohort, its hashes must leave the cache.
            users = {quantum * 100 + u for u in range(4)}
            content = {
                f"kw{quantum % 5}": set(users),
                f"noise{quantum}": {quantum * 100 + 50},
            }
            builder.process_quantum(quantum, content)
            live = builder.idsets.window_users()
            assert set(builder.minhasher._cache) <= live | set(users), (
                f"cache leaked beyond the window at quantum {quantum}"
            )
        # after 40 quanta only ~3 quanta of users are live
        assert builder.minhasher.cache_size <= 3 * 5
        assert builder.minhasher.cache_size < 40

    def test_oracle_reports_vanished_users_identically(self):
        """The from-scratch index must agree on the eviction pool."""
        from repro.akg.idsets import IdSetIndex
        from repro.akg.oracle import OracleIdSetIndex

        fast, oracle = IdSetIndex(2), OracleIdSetIndex(2)
        stream = [
            {"a": {1, 2}, "b": {2, 3}},
            {"a": {2}},
            {"c": {4}},
            {},
            {"a": {1}},
        ]
        for quantum, content in enumerate(stream):
            fd = fast.add_quantum(quantum, content)
            od = oracle.add_quantum(quantum, content)
            assert fd.vanished_users == od.vanished_users
            assert fast.window_users() == oracle.window_users()


def _batched_engines():
    import repro.arrays as arrays
    from repro.akg.idsets import ArrayIdSetIndex, BatchedIdSetIndex

    engines = [pytest.param(BatchedIdSetIndex, id="batched-dict")]
    engines.append(
        pytest.param(
            ArrayIdSetIndex,
            id="batched-array",
            marks=pytest.mark.skipif(
                arrays.get_numpy() is None, reason="numpy not importable"
            ),
        )
    )
    return engines


class TestBatchedEvictionStateful:
    """Memo eviction under the interned path (DESIGN.md Section 9).

    The reference backend memoizes per-user hashes in ``MinHasher._cache``
    and evicts on ``vanished_users``; the batched backend's analogue is the
    actor interner itself — each user's base hash lives in their slot, and
    the slot is released exactly when the user's last window occurrence
    expires.  This stateful differential drives both index families over a
    churny random stream (one-shot users, re-entries, empty quanta,
    skipped quanta) and checks, after every slide, that the eviction pools
    coincide and the interner refcounts track the live window exactly."""

    @pytest.mark.parametrize("Engine", _batched_engines())
    @given(
        seed=st.integers(0, 100),
        window=st.integers(1, 4),
        n_quanta=st.integers(4, 24),
    )
    @settings(max_examples=30, deadline=None)
    def test_vanished_users_and_refcounts_track_reference(
        self, Engine, seed, window, n_quanta
    ):
        from repro.akg.idsets import IdSetIndex

        rng = random.Random(seed)
        reference = IdSetIndex(window_quanta=window)
        batched = Engine(window_quanta=window)
        quantum = 0
        for _ in range(n_quanta):
            content = {}
            for kw in rng.sample("abcdef", rng.randint(0, 4)):
                users = {
                    # mix of recurring ids and one-shot drive-bys
                    rng.choice((rng.randrange(8), 100 + quantum * 10))
                    for _ in range(rng.randint(1, 4))
                }
                content[kw] = users
            ref_delta = reference.add_quantum(quantum, content)
            bat_delta = batched.add_quantum(quantum, content)
            assert bat_delta == ref_delta
            assert bat_delta.vanished_users == ref_delta.vanished_users

            # The eviction pool empties the memo: a vanished user's slot
            # is released, so the live interner population IS the window
            # population — no leak, no premature eviction.
            live_users = batched.window_users()
            assert live_users == reference.window_users()
            assert batched.acts.live_count == len(live_users)
            assert set(batched.acts.ids) == live_users
            assert batched.ents.live_count == batched.num_keywords
            for user in bat_delta.vanished_users:
                assert user not in batched.acts.ids

            quantum += rng.choice((1, 1, 1, 2, window + 1))

    @pytest.mark.parametrize("Engine", _batched_engines())
    def test_reentry_after_vanish_reinterns_cleanly(self, Engine):
        """A vanished user who returns gets a slot again (possibly
        recycled) and identical window behaviour."""
        from repro.akg.idsets import IdSetIndex

        reference = IdSetIndex(window_quanta=2)
        batched = Engine(window_quanta=2)
        stream = [
            {"a": {"u1", "u2"}},
            {"b": {"u3"}},
            {"b": {"u3"}},  # u1/u2 vanish here
            {"a": {"u1"}},  # u1 re-enters after eviction
            {},
            {},
        ]
        for quantum, content in enumerate(stream):
            rd = reference.add_quantum(quantum, content)
            bd = batched.add_quantum(quantum, content)
            assert bd == rd
            assert batched.window_users() == reference.window_users()
        assert batched.acts.live_count == 0
        assert batched.ents.live_count == 0
