"""The pipelined (overlap=True) sharded session.

``overlap`` runs each quantum's serial tail — exchange-merge, maintain,
rank, report — on a background thread while the *next* quantum's scatter
is already in flight, hiding the tail behind the front-end.  The contract
under test: results are **bit-identical** to the same session without
overlap (hence to plain serial), quantum boundaries survive abandonment,
tail errors surface on the consumer, and the modes that cannot soundly
pipeline are refused up front with readable errors.
"""

import pytest

from test_distributed_transport import worker_daemons
from test_parallel_shard_invariance import (
    REGIMES,
    bursty_stream,
    make_config,
    regime_stream,
    run_session,
)

from repro.api import open_session
from repro.errors import CheckpointError, ConfigError, PipelineError

# --------------------------------------------------------- golden parity


@pytest.mark.parametrize("regime", REGIMES)
def test_overlap_bit_identical_to_serial(regime, tmp_path):
    """Pipelined execution changes wall-clock shape only: reports, sink
    events, histories, and checkpoints equal the plain serial session."""
    config = make_config()
    stream = regime_stream(regime, 11, 700, config)
    reference = run_session(stream, tmp_path, "reference")
    for tag, kwargs in [
        ("thread-W2", dict(workers=2, worker_backend="thread")),
        ("process-W4", dict(workers=4)),
    ]:
        fingerprint = run_session(
            stream, tmp_path, f"overlap-{tag}", overlap=True, **kwargs
        )
        names = ("reports", "notifications", "histories", "checkpoint")
        for part, ref, name in zip(fingerprint, reference, names):
            assert part == ref, (
                f"{name} diverged under overlap ({tag}, {regime})"
            )


def test_overlap_over_remote_transport(tmp_path):
    """Overlap composes with TCP shard workers — still bit-identical."""
    stream = bursty_stream(7, 500)
    reference = run_session(stream, tmp_path, "reference")
    with worker_daemons(2) as endpoints:
        fingerprint = run_session(
            stream, tmp_path, "overlap-remote",
            workers=endpoints, shard_count=4, overlap=True,
        )
    assert fingerprint == reference


def test_overlap_saved_is_reported():
    """Reports carry the overlap_saved sub-span and the session total
    accumulates it (zero is legal — tiny tails can finish early)."""
    session = open_session(
        make_config(), workers=2, worker_backend="thread", overlap=True
    )
    try:
        reports = list(session.ingest_many(bursty_stream(3, 400)))
        assert reports, "stream produced no quanta"
        saved = [r.timings.overlap_saved for r in reports]
        assert all(s >= 0.0 for s in saved)
        assert "overlap_saved" in reports[-1].timings.as_dict()
        assert session.total_timings.overlap_saved == pytest.approx(
            sum(saved)
        )
    finally:
        session.close()


# ---------------------------------------------------- lifecycle semantics


def test_abandoned_iteration_lands_on_quantum_boundary(tmp_path):
    """Breaking out of ingest_many drains the scattered-ahead quantum, so
    the session is immediately snapshottable and bit-equivalent to a
    session that processed the same whole quanta normally."""
    config = make_config()
    stream = bursty_stream(13, 400)
    session = open_session(config, workers=2, worker_backend="thread",
                           overlap=True)
    seen = 0
    for report in session.ingest_many(stream):
        seen += 1
        if seen == 3:
            break
    path = tmp_path / "abandoned.ckpt"
    session.snapshot(path)  # must not raise: iteration is fully drained
    session.close()

    reference = open_session(config)
    consumed = (seen + 1) * config.quantum_size  # +1: the drained quantum
    for message in stream[:consumed]:
        reference.ingest(message)
    ref_path = tmp_path / "reference.ckpt"
    reference.snapshot(ref_path)
    reference.close()

    from test_parallel_shard_invariance import normalized_checkpoint

    assert normalized_checkpoint(path) == normalized_checkpoint(ref_path)


def test_tail_error_propagates_and_session_survives():
    """An exception on the background tail thread surfaces to the consumer
    as itself (not a hang, not a shutdown error), and close() still works."""

    class Boom(RuntimeError):
        pass

    class FailingStage:
        name = "failing"

        def __init__(self):
            self.calls = 0

        def run(self, ctx):
            self.calls += 1
            if self.calls == 3:
                raise Boom("injected tail failure")

    session = open_session(
        make_config(), workers=2, worker_backend="thread", overlap=True
    )
    session.pipeline.stages.append(FailingStage())
    try:
        with pytest.raises(Boom, match="injected tail failure"):
            for _ in session.ingest_many(bursty_stream(5, 400)):
                pass
    finally:
        session.close()


def test_snapshot_refused_mid_iteration(tmp_path):
    """While the pipeline is scattered ahead, the merged state is behind
    the worker windows — snapshotting would tear them apart."""
    session = open_session(
        make_config(), workers=2, worker_backend="thread", overlap=True
    )
    try:
        iterator = session.ingest_many(bursty_stream(9, 400))
        next(iterator)
        with pytest.raises(CheckpointError, match="pipelined"):
            session.snapshot(tmp_path / "torn.ckpt")
        iterator.close()
        session.snapshot(tmp_path / "ok.ckpt")  # fine once drained
    finally:
        session.close()


def test_process_quantum_refused_mid_iteration():
    session = open_session(
        make_config(), workers=2, worker_backend="thread", overlap=True
    )
    try:
        iterator = session.ingest_many(bursty_stream(9, 400))
        next(iterator)
        with pytest.raises(PipelineError):
            session.process_quantum(bursty_stream(1, 20))
        iterator.close()
    finally:
        session.close()


def test_delta_log_refused_on_overlap_session(tmp_path):
    session = open_session(
        make_config(), workers=2, worker_backend="thread", overlap=True
    )
    try:
        with pytest.raises(CheckpointError, match="overlap"):
            session.enable_delta_log(tmp_path / "delta")
    finally:
        session.close()


# ------------------------------------------------------------- refusals


def test_overlap_requires_sharding():
    with pytest.raises(ConfigError, match="serial"):
        open_session(make_config(), overlap=True)


def test_overlap_refuses_profile():
    with pytest.raises(ConfigError, match="profile"):
        open_session(
            make_config(), workers=2, worker_backend="thread",
            overlap=True, profile=True,
        )


def test_overlap_refuses_ckg_stats():
    with pytest.raises(ConfigError, match="track_ckg_stats"):
        open_session(
            make_config(track_ckg_stats=True),
            workers=2, worker_backend="thread", overlap=True,
        )
