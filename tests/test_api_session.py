"""Session lifecycle: ingestion, subscription sinks, notification semantics."""

import pytest

from repro.api import (
    CallbackSink,
    DetectorSession,
    EventKind,
    QueueSink,
    open_session,
)
from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.datasets.figure1 import figure1_messages
from repro.errors import CheckpointError
from repro.stream.messages import Message


def exact_config(**overrides):
    base = dict(
        quantum_size=6,
        window_quanta=5,
        high_state_threshold=2,
        ec_threshold=0.1,
        use_minhash_filter=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def burst(keywords, users):
    return [Message(f"u{u}", tokens=tuple(keywords)) for u in users]


class TestOpenSession:
    def test_returns_session(self):
        session = open_session(exact_config())
        assert isinstance(session, DetectorSession)
        assert session.current_quantum == -1

    def test_default_config_is_nominal(self):
        assert open_session().config == DetectorConfig()

    def test_config_and_resume_are_mutually_exclusive(self, tmp_path):
        session = open_session(exact_config())
        path = tmp_path / "s.ckpt"
        session.snapshot(path)
        with pytest.raises(CheckpointError):
            open_session(exact_config(), resume=path)

    def test_oracle_flags(self):
        session = open_session(
            exact_config(), oracle_ranking=True, oracle_akg=True
        )
        assert session.ranker.oracle and session.builder.oracle


class TestIngestion:
    def test_ingest_reports_at_quantum_boundary(self):
        session = open_session(exact_config(quantum_size=3))
        messages = burst(["a1", "b1", "c1"], range(3))
        reports = [session.ingest(m) for m in messages]
        assert reports[:2] == [None, None]
        assert reports[2] is not None and reports[2].quantum == 0

    def test_ingest_many_keeps_tail_buffered(self):
        session = open_session(exact_config(quantum_size=4))
        reports = list(session.ingest_many(burst(["a1", "b1"], range(6))))
        assert len(reports) == 1
        assert session.batcher.pending == 2

    def test_ingest_many_composes_across_calls(self):
        """Two ingest_many calls equal one concatenated call — the session
        contract process_stream never had."""
        split = open_session(exact_config(quantum_size=4))
        whole = open_session(exact_config(quantum_size=4))
        messages = burst(["a1", "b1", "c1"], range(10))
        r_split = list(split.ingest_many(messages[:5])) + list(
            split.ingest_many(messages[5:])
        )
        r_whole = list(whole.ingest_many(messages))
        key = lambda r: (r.quantum, [e.event_id for e in r.reported])
        assert [key(r) for r in r_split] == [key(r) for r in r_whole]

    def test_flush_processes_partial_quantum(self):
        session = open_session(exact_config(quantum_size=4))
        list(session.ingest_many(burst(["a1", "b1"], range(6))))
        tail = session.flush()
        assert tail is not None and tail.messages_processed == 2
        assert session.flush() is None

    def test_ingest_many_flush_true_matches_process_stream(self):
        session = open_session(exact_config(quantum_size=4))
        detector = EventDetector(exact_config(quantum_size=4))
        messages = burst(["a1", "b1", "c1"], range(6))
        a = list(session.ingest_many(list(messages), flush=True))
        b = list(detector.process_stream(list(messages)))
        key = lambda r: (r.quantum, r.messages_processed,
                         [e.event_id for e in r.reported])
        assert [key(r) for r in a] == [key(r) for r in b]


class TestFacadeDelegation:
    def test_detector_and_session_share_state(self):
        detector = EventDetector(exact_config())
        detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        session = detector.session
        assert session.current_quantum == detector.current_quantum == 0
        assert session.registry is detector.registry
        assert session.total_messages == detector.total_messages == 6
        assert detector.throughput() == session.throughput()


class TestSubscription:
    def test_emerging_notification(self):
        session = open_session(exact_config())
        sink = QueueSink()
        session.subscribe(sink)
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        events = sink.drain()
        assert [e.kind for e in events] == [EventKind.EMERGING]
        assert events[0].keywords == {"a1", "b1", "c1"}
        assert events[0].quantum == 0
        assert events[0].previous_rank is None

    def test_growing_and_rank_changed_on_evolution(self):
        """The Figure 1 scenario through the push API: '5.9' joining the
        earthquake cluster emits GROWING (and RANK_CHANGED)."""
        session = open_session(exact_config())
        sink = QueueSink()
        session.subscribe(sink)
        initial, update = figure1_messages()
        session.process_quantum(initial)
        session.process_quantum(update)
        kinds = [e.kind for e in sink.drain()]
        assert kinds[0] == EventKind.EMERGING
        assert EventKind.GROWING in kinds
        # run again with a GROWING-only subscription to inspect the payload
        session2 = open_session(exact_config())
        sink2 = QueueSink()
        session2.subscribe(sink2, kinds={EventKind.GROWING})
        session2.process_quantum(initial)
        session2.process_quantum(update)
        growing = sink2.drain()
        assert len(growing) == 1
        assert "5.9" in growing[0].keywords
        assert growing[0].previous_size is not None
        assert growing[0].size > growing[0].previous_size

    def test_dying_notification(self):
        session = open_session(exact_config(window_quanta=2))
        sink = QueueSink()
        session.subscribe(sink, kinds={EventKind.DYING})
        session.process_quantum(burst(["alpha", "beta", "gamma"], range(6)))
        session.process_quantum(
            [Message(f"n{i}", tokens=(f"w{i}a", f"w{i}b")) for i in range(6)]
        )
        session.process_quantum(
            [Message(f"m{i}", tokens=(f"v{i}a",)) for i in range(6)]
        )
        dying = sink.drain()
        assert len(dying) == 1
        assert dying[0].kind is EventKind.DYING
        assert dying[0].keywords == {"alpha", "beta", "gamma"}

    def test_kind_filtering(self):
        session = open_session(exact_config())
        emerging_only = QueueSink()
        everything = QueueSink()
        session.subscribe(emerging_only, kinds={EventKind.EMERGING})
        session.subscribe(everything)
        initial, update = figure1_messages()
        session.process_quantum(initial)
        session.process_quantum(update)
        assert all(e.kind is EventKind.EMERGING for e in emerging_only)
        assert len(everything) > len(emerging_only)

    def test_plain_callable_is_wrapped(self):
        session = open_session(exact_config())
        seen = []
        session.subscribe(seen.append)
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert len(seen) == 1 and seen[0].kind is EventKind.EMERGING

    def test_unsubscribe_stops_delivery(self):
        session = open_session(exact_config())
        sink = QueueSink()
        subscription = session.subscribe(sink)
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        subscription.unsubscribe()
        subscription.unsubscribe()  # idempotent
        session.process_quantum(burst(["x1", "y1", "z1"], range(6)))
        assert len(sink.drain()) == 1

    def test_top_k_filter(self):
        """A top-1 subscription only hears about the leading event."""
        session = open_session(exact_config())
        sink = QueueSink()
        session.subscribe(sink, kinds={EventKind.EMERGING}, top_k=1)
        # two disjoint clusters with different support -> different ranks
        session.process_quantum(
            burst(["a1", "b1", "c1"], range(6))
            + burst(["x1", "y1", "z1"], range(10, 13))
        )
        events = sink.drain()
        assert len(events) == 1
        assert events[0].keywords == {"a1", "b1", "c1"}

    def test_growing_fires_on_equal_size_turnover(self):
        """GROWING tracks keyword *joins*, not size: a cluster swapping one
        keyword for another at constant size still notifies."""
        session = open_session(
            exact_config(quantum_size=12, window_quanta=1)
        )
        sink = QueueSink()
        session.subscribe(sink, kinds={EventKind.GROWING})
        session.process_quantum(
            burst(["core1", "core2", "old1"], range(6))
        )
        session.process_quantum(
            burst(["core1", "core2", "new1"], range(6))
        )
        growing = sink.drain()
        assert len(growing) == 1
        assert "new1" in growing[0].keywords
        assert growing[0].size == growing[0].previous_size == 3

    def test_top_k_announces_event_climbing_into_view(self):
        """An event that emerges outside the top-k and later climbs into it
        is announced (as EMERGING) when it enters the view — a top-k
        subscriber never tracks an event it was never told about."""
        session = open_session(exact_config(quantum_size=16))
        sink = QueueSink()
        session.subscribe(sink, top_k=1)
        # quantum 0: strong cluster (6 users) tops weak cluster (3 users)
        session.process_quantum(
            burst(["s1", "s2", "s3"], range(6))
            + burst(["w1", "w2", "w3"], range(10, 13))
        )
        first = sink.drain()
        assert [e.event_id for e in first if e.kind is EventKind.EMERGING] \
            and all("s1" in e.keywords for e in first)
        # quantum 1: the weak cluster overtakes (8 users vs 4)
        session.process_quantum(
            burst(["s1", "s2", "s3"], range(4))
            + burst(["w1", "w2", "w3"], range(10, 18))
        )
        second = sink.drain()
        emerged = [e for e in second if e.kind is EventKind.EMERGING]
        assert len(emerged) == 1
        assert emerged[0].keywords == {"w1", "w2", "w3"}

    def test_top_k_announces_passive_entry_when_leader_dies(self):
        """An unchanged event inheriting a vacated top-k slot is announced:
        view membership, not the event's own transitions, drives it."""
        session = open_session(
            exact_config(quantum_size=16, window_quanta=2)
        )
        sink = QueueSink()
        session.subscribe(sink, top_k=1)
        strong = burst(["s1", "s2", "s3"], range(6))
        weak = burst(["w1", "w2", "w3"], range(10, 13))
        session.process_quantum(strong + weak)
        assert all("s1" in e.keywords for e in sink.drain())
        # the leader's keywords go silent while the weak cluster repeats
        # identically (stays clean); when the leader dies, the weak cluster
        # inherits top-1 without any transition of its own
        session.process_quantum(
            list(weak) + [Message(f"n{i}", tokens=(f"q{i}",)) for i in range(13)]
        )
        session.process_quantum(
            list(weak) + [Message(f"m{i}", tokens=(f"p{i}",)) for i in range(13)]
        )
        events = sink.drain()
        emerged = [e for e in events if e.kind is EventKind.EMERGING]
        assert any(e.keywords == {"w1", "w2", "w3"} for e in emerged)
        died = [e for e in events if e.kind is EventKind.DYING]
        assert any(e.keywords == {"s1", "s2", "s3"} for e in died)

    def test_resume_rejects_oracle_flags(self, tmp_path):
        session = open_session(exact_config())
        path = tmp_path / "o.ckpt"
        session.snapshot(path)
        with pytest.raises(CheckpointError, match="oracle"):
            open_session(resume=path, oracle_ranking=True)
        with pytest.raises(CheckpointError, match="oracle"):
            open_session(resume=path, oracle_akg=True)

    def test_top_k_dying_only_for_announced_events(self):
        session = open_session(
            exact_config(quantum_size=16, window_quanta=1)
        )
        sink = QueueSink()
        session.subscribe(sink, top_k=1)
        session.process_quantum(
            burst(["s1", "s2", "s3"], range(6))
            + burst(["w1", "w2", "w3"], range(10, 13))
        )
        sink.drain()
        # both clusters die; only the announced (top-1) one notifies DYING
        session.process_quantum(
            [Message(f"n{i}", tokens=(f"q{i}a",)) for i in range(16)]
        )
        dying = [e for e in sink.drain() if e.kind is EventKind.DYING]
        assert len(dying) == 1
        assert dying[0].keywords == {"s1", "s2", "s3"}

    def test_suppressed_clusters_do_not_notify(self):
        session = open_session(exact_config(rank_threshold_scale=100.0))
        sink = QueueSink()
        session.subscribe(sink)
        report = session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert report.suppressed and not report.reported
        assert sink.drain() == []

    def test_notifications_identical_with_and_without_sinks(self):
        """The notified state must not depend on who is listening: a sink
        attached late sees the same transitions as one attached early."""
        early = open_session(exact_config())
        late = open_session(exact_config())
        early_sink = QueueSink()
        early.subscribe(early_sink)
        initial, update = figure1_messages()
        early.process_quantum(initial)
        late.process_quantum(list(initial))
        late_sink = QueueSink()
        late.subscribe(late_sink)
        early_sink.drain()  # drop quantum-0 events
        early.process_quantum(update)
        late.process_quantum(list(update))
        key = lambda e: (e.kind, e.event_id, e.rank, e.size, e.previous_rank)
        assert [key(e) for e in early_sink.drain()] == [
            key(e) for e in late_sink.drain()
        ]


class TestClose:
    def test_close_is_idempotent(self):
        session = open_session(exact_config())
        session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        session.close()
        assert session.closed
        session.close()  # second close is a no-op, not an error
        assert session.closed

    def test_ingest_after_close_raises(self):
        from repro.errors import PipelineError

        session = open_session(exact_config(quantum_size=3))
        session.close()
        with pytest.raises(PipelineError, match="closed"):
            session.process_quantum(burst(["a1", "b1", "c1"], range(3)))

    def test_close_safe_mid_quantum(self):
        # A partial quantum buffered in the batcher must not block close,
        # and the buffered messages stay snapshot-able right up to close.
        session = open_session(exact_config(quantum_size=4))
        list(session.ingest_many(burst(["a1", "b1"], range(6))))
        assert session.batcher.pending == 2
        session.close()
        assert session.closed

    def test_close_with_delta_log_closes_writer(self, tmp_path):
        session = open_session(
            exact_config(quantum_size=3), delta_log=tmp_path / "delta"
        )
        session.process_quantum(burst(["a1", "b1", "c1"], range(3)))
        session.close()
        session.close()  # must not double-close the writer
        assert session.closed

    def test_context_manager_still_closes_once(self):
        with open_session(exact_config()) as session:
            session.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        assert session.closed
        session.close()


class TestSinks:
    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit("x")
        assert seen == ["x"]

    def test_queue_sink_bounded(self):
        sink = QueueSink(maxlen=2)
        for i in range(5):
            sink.emit(i)
        assert sink.drain() == [3, 4]
        assert sink.dropped == 3

    def test_queue_sink_never_exceeds_maxlen_even_transiently(self):
        # emit used to append first and evict after, so a bounded sink
        # momentarily held maxlen + 1 events — observable from a sink
        # subclass (or a concurrent drain).  Instrument the underlying
        # deque to record the high-water mark across every append.
        from collections import deque

        observed = []

        class SpyingDeque(deque):
            def append(self, event):
                super().append(event)
                observed.append(len(self))

        sink = QueueSink(maxlen=3)
        sink._events = SpyingDeque()
        for i in range(10):
            sink.emit(i)
        assert max(observed) == 3
        assert sink.drain() == [7, 8, 9]
        assert sink.dropped == 7

    def test_queue_sink_maxlen_zero_drops_everything(self):
        sink = QueueSink(maxlen=0)
        for i in range(4):
            sink.emit(i)
        assert len(sink) == 0
        assert sink.drain() == []
        assert sink.dropped == 4

    def test_queue_sink_on_drop_sees_evictions(self):
        evicted = []
        sink = QueueSink(maxlen=2, on_drop=evicted.append)
        for i in range(5):
            sink.emit(i)
        assert evicted == [0, 1, 2]
        assert sink.drain() == [3, 4]
        assert sink.dropped == 3

    def test_queue_sink_on_drop_maxlen_zero_gets_the_event_itself(self):
        evicted = []
        sink = QueueSink(maxlen=0, on_drop=evicted.append)
        for i in range(3):
            sink.emit(i)
        assert evicted == [0, 1, 2]

    def test_queue_sink_on_drop_not_called_within_bound(self):
        evicted = []
        sink = QueueSink(maxlen=10, on_drop=evicted.append)
        for i in range(5):
            sink.emit(i)
        assert evicted == []
        assert sink.dropped == 0

    def test_queue_sink_iteration_preserves_buffer(self):
        sink = QueueSink()
        sink.emit(1)
        sink.emit(2)
        assert list(sink) == [1, 2]
        assert len(sink) == 2
        assert sink.drain() == [1, 2]
        assert len(sink) == 0
