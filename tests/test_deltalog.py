"""Delta checkpoints: diff/patch exactness, framing, writer, v4 reader.

The load-bearing guarantee is ``patch_tree(a, diff_trees(a, b)) == b`` at
the *byte* level of the canonical checkpoint codec — that single property
is what makes base+delta replay bit-identical to a monolithic snapshot, so
it gets both deterministic corner cases and a seeded structural fuzzer.
Framing is tested the way crashes tear it: truncation at every byte offset
of a real log must yield a consistent prefix, never an exception and never
a wrong record.
"""

import json
import random
import struct

import pytest

from repro.api import open_session
from repro.api.checkpoint import (
    decode_state,
    encode_state,
    load_checkpoint,
    save_checkpoint,
)
from repro.api.deltalog import (
    _LOG_MAGIC,
    DeltaCheckpointWriter,
    FileTailTransport,
    apply_record,
    decode_frames,
    diff_trees,
    encode_frame,
    patch_tree,
    read_manifest,
)
from repro.errors import CheckpointError

from test_api_checkpoint import bursty_stream, make_config


def canon(tree):
    """Canonical bytes of a state tree through the checkpoint codec."""
    return json.dumps(
        encode_state(tree), sort_keys=True, separators=(",", ":")
    )


def roundtrip(a, b):
    """Assert diff/patch reproduces ``b`` exactly, bytes included."""
    op = diff_trees(a, b)
    patched = patch_tree(a, op)
    assert canon(patched) == canon(b)
    return op


# ---------------------------------------------------------------- diff/patch


class TestDiffPatch:
    def test_identical_trees_diff_to_none(self):
        tree = {"a": [1, 2, {3}], "b": (1.5, "x")}
        assert diff_trees(tree, {"a": [1, 2, {3}], "b": (1.5, "x")}) is None

    def test_patch_none_is_identity(self):
        tree = {"a": 1}
        assert patch_tree(tree, None) is tree

    def test_scalar_replacement(self):
        roundtrip(1, 2)
        roundtrip("a", "b")
        roundtrip(None, 0)

    def test_type_switch_is_replacement(self):
        # 1 == 1.0 and True == 1 under ==, but they serialize differently;
        # the diff must not treat them as equal.
        for a, b in [(1, 1.0), (1.0, 1), (True, 1), (0, False)]:
            op = diff_trees(a, b)
            assert op is not None
            assert canon(patch_tree(a, op)) == canon(b)

    def test_negative_zero_is_a_change(self):
        assert diff_trees(0.0, -0.0) is not None
        roundtrip(0.0, -0.0)
        roundtrip([0.0], [-0.0])

    def test_dict_set_delete_nested(self):
        a = {"keep": 1, "drop": 2, "edit": {"x": [1, 2]}}
        b = {"keep": 1, "new": 3, "edit": {"x": [1, 2, 3]}}
        roundtrip(a, b)

    def test_set_add_remove(self):
        roundtrip({1, 2, 3}, {2, 3, 4})
        roundtrip(frozenset({("a", 1)}), frozenset({("a", 1), ("b", 2)}))

    def test_list_head_expiry_tail_append(self):
        # the sliding-window shape: drop from the head, append at the tail
        a = list(range(100))
        b = list(range(10, 110))
        op = roundtrip(a, b)
        # the edit script must be splice-sized, not a wholesale replace:
        # only the 10 appended elements ride the op
        assert op[0] == "l"
        inserted = sum(
            len(edit[1]) for edit in op[1] if edit[0] == "i"
        )
        assert inserted == 10

    def test_list_single_element_edit_is_small(self):
        a = [["k%d" % i, [i, i + 1]] for i in range(200)]
        b = [list(pair) for pair in a]
        b[77] = ["k77", [77, 999]]
        op = roundtrip(a, b)
        assert len(canon(op)) < len(canon(b)) / 10

    def test_tuple_preserved_through_patch(self):
        a = {"t": (1, 2, 3)}
        b = {"t": (1, 2, 4)}
        patched = patch_tree(a, diff_trees(a, b))
        assert isinstance(patched["t"], tuple)

    def test_frozenset_preserved_through_patch(self):
        a = frozenset({1})
        patched = patch_tree(a, diff_trees(a, frozenset({1, 2})))
        assert isinstance(patched, frozenset)

    def test_patch_does_not_mutate_input(self):
        a = {"x": [1, 2], "s": {1}}
        snapshot = canon(a)
        patch_tree(a, diff_trees(a, {"x": [1, 2, 3], "s": {1, 2}}))
        assert canon(a) == snapshot

    def test_misapplied_patch_raises(self):
        # nested edit against a key the state does not have (the inner
        # dict is padded so the script beats plain replacement and stays
        # a nested edit instead of shrinking to a replace op)
        pad = {f"pad{i}": i for i in range(30)}
        op = diff_trees(
            {"a": {"x": 1, **pad}}, {"a": {"x": 2, **pad}}
        )
        with pytest.raises(CheckpointError):
            patch_tree({"b": {"x": 1, **pad}}, op)
        # deleting a key the state does not have
        op = diff_trees({"a": 1, **pad}, pad)
        with pytest.raises(CheckpointError):
            patch_tree(pad, op)
        # removing a set member the state does not have
        big = set(range(40))
        op = diff_trees(big | {99}, big)
        with pytest.raises(CheckpointError):
            patch_tree(big, op)
        # dict edit against a non-dict
        op = diff_trees(
            {"a": 1, **pad}, {"a": 2, **pad}
        )
        with pytest.raises(CheckpointError):
            patch_tree([1, 2], op)

    def test_malformed_op_raises(self):
        for bad in [[], ["nope", 1], ["l", [["?", 1]]], 42]:
            with pytest.raises(CheckpointError):
                patch_tree({"a": 1}, bad)

    def test_op_round_trips_through_the_wire_codec(self):
        from repro.api.deltalog import decode_op, encode_op

        a = {"m": {("u", 1): {1.5, 2.5}}, "l": [1, "x", None]}
        b = {"m": {("u", 1): {1.5, 3.5}, ("v", 2): {9.0}}, "l": [1, "y"]}
        op = diff_trees(a, b)
        revived = decode_op(
            json.loads(json.dumps(encode_op(op), sort_keys=True))
        )
        assert canon(patch_tree(a, revived)) == canon(b)

    def test_wire_codec_rejects_garbage(self):
        from repro.api.deltalog import decode_op

        for bad in [["?", 1], 42, ["l", [["?", 1]]]]:
            with pytest.raises(CheckpointError):
                decode_op(bad)


def random_tree(rng, depth=0):
    kind = rng.randrange(8 if depth < 3 else 5)
    if kind == 0:
        return rng.randrange(-50, 50)
    if kind == 1:
        return rng.choice([None, True, False])
    if kind == 2:
        return rng.choice([0.0, -0.0, 1.5, 2.25, -3.125, 1e300])
    if kind == 3:
        return "s%d" % rng.randrange(30)
    if kind == 4:
        return frozenset(rng.sample(range(20), rng.randrange(4)))
    if kind == 5:
        return [random_tree(rng, depth + 1) for _ in range(rng.randrange(5))]
    if kind == 6:
        return tuple(
            random_tree(rng, depth + 1) for _ in range(rng.randrange(4))
        )
    return {
        "k%d" % i: random_tree(rng, depth + 1)
        for i in range(rng.randrange(4))
    }


def mutate_tree(rng, tree, depth=0):
    """A structurally similar tree: edit some substructure in place."""
    if rng.random() < 0.25 or not isinstance(tree, (list, tuple, dict)):
        return random_tree(rng, depth)
    if isinstance(tree, dict):
        out = dict(tree)
        for key in list(out):
            roll = rng.random()
            if roll < 0.15:
                del out[key]
            elif roll < 0.5:
                out[key] = mutate_tree(rng, out[key], depth + 1)
        if rng.random() < 0.4:
            out["k%d" % rng.randrange(8)] = random_tree(rng, depth + 1)
        return out
    items = [
        mutate_tree(rng, x, depth + 1) if rng.random() < 0.4 else x
        for x in tree
    ]
    if rng.random() < 0.4 and items:
        del items[rng.randrange(len(items))]
    if rng.random() < 0.4:
        items.insert(
            rng.randrange(len(items) + 1), random_tree(rng, depth + 1)
        )
    return tuple(items) if isinstance(tree, tuple) else items


class TestDiffPatchFuzz:
    @pytest.mark.parametrize("seed", range(30))
    def test_patch_of_diff_is_exact_on_random_trees(self, seed):
        rng = random.Random(seed)
        a = random_tree(rng)
        b = mutate_tree(rng, a)
        roundtrip(a, b)
        roundtrip(b, a)

    def test_chained_patches_track_a_drifting_tree(self):
        rng = random.Random(99)
        current = random_tree(rng)
        follower = current
        for _ in range(40):
            nxt = mutate_tree(rng, current)
            follower = patch_tree(follower, diff_trees(current, nxt))
            current = nxt
        assert canon(follower) == canon(current)


# ------------------------------------------------------------------ framing


class TestFraming:
    def records(self):
        return [
            {"q": 1, "op": {"t": "dict", "v": []}},
            {"q": 2, "op": None},
            {"q": 3, "op": {"t": "list", "v": [1, 2, "x"]}},
        ]

    def test_round_trip(self):
        data = b"".join(encode_frame(r) for r in self.records())
        out, end = decode_frames(data)
        assert out == self.records()
        assert end == len(data)

    def test_truncation_at_every_byte_yields_consistent_prefix(self):
        frames = [encode_frame(r) for r in self.records()]
        data = b"".join(frames)
        boundaries = [0]
        for frame in frames:
            boundaries.append(boundaries[-1] + len(frame))
        for cut in range(len(data) + 1):
            out, end = decode_frames(data[:cut])
            complete = max(i for i, b in enumerate(boundaries) if b <= cut)
            assert out == self.records()[:complete]
            assert end == boundaries[complete]

    def test_corrupt_payload_byte_stops_at_crc(self):
        data = b"".join(encode_frame(r) for r in self.records())
        header = struct.Struct(">II").size
        corrupt = bytearray(data)
        corrupt[header + 2] ^= 0xFF  # inside the first payload
        out, end = decode_frames(bytes(corrupt))
        assert out == []
        assert end == 0

    def test_crc_valid_garbage_json_raises(self):
        import zlib

        payload = b"not json {"
        frame = struct.Struct(">II").pack(
            len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(CheckpointError, match="not valid JSON"):
            decode_frames(frame)

    def test_absurd_length_is_a_torn_tail(self):
        frame = struct.Struct(">II").pack(1 << 31, 0) + b"x"
        out, end = decode_frames(frame)
        assert out == [] and end == 0


# ---------------------------------------------------- writer + v4 reader


def session_states(n_quanta, config=None, seed=3, messages=None):
    """State trees of a real session at consecutive quantum boundaries."""
    config = config or make_config()
    if messages is None:
        messages = bursty_stream(seed, n_quanta * config.quantum_size)
    session = open_session(config)
    states = []
    for i in range(n_quanta):
        list(
            session.ingest_many(
                messages[
                    i * config.quantum_size : (i + 1) * config.quantum_size
                ]
            )
        )
        states.append(session._state_tree())
    return states


class TestWriterAndReader:
    def test_replay_equals_monolithic(self, tmp_path):
        states = session_states(8)
        writer = DeltaCheckpointWriter(tmp_path / "d", compact_ratio=1e9)
        writer.start(states[0])
        for state in states[1:]:
            writer.append(state)
        writer.close()
        save_checkpoint(tmp_path / "mono.ckpt", states[-1])
        assert canon(load_checkpoint(tmp_path / "d")) == canon(
            load_checkpoint(tmp_path / "mono.ckpt")
        )

    def test_compaction_rolls_generation_and_truncates(self, tmp_path):
        states = session_states(8)
        writer = DeltaCheckpointWriter(tmp_path / "d", compact_ratio=0.5)
        writer.start(states[0])
        for state in states[1:]:
            writer.append(state)
        assert writer.compactions > 0
        manifest = read_manifest(tmp_path / "d")
        assert manifest["generation"] == writer.generation > 0
        # old-generation files are gone, current ones exist
        names = {p.name for p in (tmp_path / "d").iterdir()}
        assert manifest["base"] in names and manifest["log"] in names
        assert not any(
            n.startswith(("base-0", "deltas-0")) for n in names
        )
        writer.close()
        assert canon(load_checkpoint(tmp_path / "d")) == canon(states[-1])

    def test_attach_starts_a_fresh_generation(self, tmp_path):
        states = session_states(6)
        first = DeltaCheckpointWriter(tmp_path / "d")
        first.start(states[0])
        first.append(states[1])
        first.close()
        second = DeltaCheckpointWriter(tmp_path / "d")
        second.start(states[1])
        assert second.generation == first.generation + 1
        second.append(states[2])
        second.close()
        assert canon(load_checkpoint(tmp_path / "d")) == canon(states[2])

    def test_append_before_start_raises(self, tmp_path):
        writer = DeltaCheckpointWriter(tmp_path / "d")
        with pytest.raises(CheckpointError, match="not started"):
            writer.append({"quantum": 0})

    def test_nonpositive_compact_ratio_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            DeltaCheckpointWriter(tmp_path / "d", compact_ratio=0)

    def test_delta_records_are_small(self, tmp_path):
        # A quantum that touches a small fraction of a wide window — the
        # regime delta checkpoints exist for.  (The bursty fixture churns
        # its whole 6-keyword state every quantum, so it exercises
        # correctness, not size.)  Each quantum uses one of 20 rotating
        # keyword groups, so most per-keyword window state sits untouched.
        # The hard <=10% gate lives in the benchmark at 20k-message
        # windows.
        from repro.stream.messages import Message

        rng = random.Random(5)
        config = make_config(quantum_size=40, window_quanta=12)
        n_quanta = 30
        groups = [
            [f"g{g}k{i}" for i in range(8)] for g in range(20)
        ]
        messages = []
        for q in range(n_quanta):
            group = groups[q % 20]
            for _ in range(config.quantum_size):
                messages.append(
                    Message(
                        f"u{rng.randrange(200)}",
                        tokens=tuple(rng.sample(group, 2)),
                    )
                )
        states = session_states(
            n_quanta, config=config, messages=messages
        )
        writer = DeltaCheckpointWriter(tmp_path / "d", compact_ratio=1e9)
        writer.start(states[0])
        sizes = [writer.append(s) for s in states[1:]]
        writer.close()
        # compare steady-state deltas to a full snapshot at the same
        # stream position (the gen-0 base predates the full window)
        save_checkpoint(tmp_path / "full.ckpt", states[-1])
        full = (tmp_path / "full.ckpt").stat().st_size
        assert max(sizes[12:]) < full / 2

    def test_delta_record_never_larger_than_replacement(self, tmp_path):
        # worst case — total churn: the edit script falls back to
        # replacement-sized ops instead of paying per-edit overhead
        states = session_states(6)  # tiny window, ~full churn per quantum
        writer = DeltaCheckpointWriter(tmp_path / "d", compact_ratio=1e9)
        writer.start(states[0])
        sizes = [writer.append(s) for s in states[1:]]
        writer.close()
        assert max(sizes) < writer.base_bytes * 1.25

    def test_discontinuous_record_raises(self):
        state = {"quantum": 5}
        with pytest.raises(CheckpointError, match="discontinuous"):
            apply_record(state, {"q": 7, "op": None})
        with pytest.raises(CheckpointError, match="malformed"):
            apply_record(state, {"op": None})

    def test_transport_rejects_bad_magic(self, tmp_path):
        d = tmp_path / "d"
        d.mkdir()
        (d / "deltas-0.log").write_bytes(b"XXXX")
        transport = FileTailTransport(d)
        with pytest.raises(CheckpointError, match="bad magic"):
            transport.read_records(
                {"log": "deltas-0.log", "base": "x", "generation": 0},
                0,
            )
        assert (d / "deltas-0.log").read_bytes()[:4] != _LOG_MAGIC[:3] + b"?"


class TestSessionIntegration:
    def test_session_delta_log_equals_session_snapshot(self, tmp_path):
        config = make_config()
        messages = bursty_stream(11, 600)
        with open_session(config, delta_log=tmp_path / "d") as session:
            list(session.ingest_many(messages))
            session.snapshot(tmp_path / "mono.ckpt")
        assert canon(load_checkpoint(tmp_path / "d")) == canon(
            load_checkpoint(tmp_path / "mono.ckpt")
        )

    def test_resume_from_delta_directory_is_bit_identical(self, tmp_path):
        from test_api_checkpoint import report_key

        config = make_config()
        messages = bursty_stream(13, 900)
        whole = open_session(config)
        expected = [report_key(r) for r in whole.ingest_many(messages)]

        with open_session(config, delta_log=tmp_path / "d") as leader:
            got = [report_key(r) for r in leader.ingest_many(messages[:600])]
        resumed = open_session(resume=tmp_path / "d")
        got += [report_key(r) for r in resumed.ingest_many(messages[600:])]
        assert got == expected

    def test_enable_delta_log_twice_raises(self, tmp_path):
        with open_session(make_config(), delta_log=tmp_path / "d") as s:
            with pytest.raises(CheckpointError):
                s.enable_delta_log(tmp_path / "d2")

    def test_delta_log_is_execution_agnostic(self, tmp_path):
        """Serial and sharded leaders produce equivalent delta checkpoints
        (equal up to wall-clock timings, exactly like monolithic ones)."""
        import golden

        config = make_config()
        messages = bursty_stream(17, 400)
        with open_session(config, delta_log=tmp_path / "serial") as a:
            list(a.ingest_many(messages))
        with open_session(
            config, workers=2, delta_log=tmp_path / "sharded"
        ) as b:
            list(b.ingest_many(messages))
        assert golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "serial")
        ) == golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "sharded")
        )
