"""Evaluation harness: matching, filtering, metrics, quality, reporting."""

import pytest

from repro.config import DetectorConfig
from repro.core.events import EventRecord, EventSnapshot
from repro.datasets.events import GroundTruthEvent
from repro.eval.filtering import reported_records
from repro.eval.matching import MatchCriteria, match_events
from repro.eval.metrics import precision_recall
from repro.eval.quality import quality_stats
from repro.eval.reporting import render_grid, render_table
from repro.text.pos import NounTagger


def record(event_id, quanta_keywords, ranks=None, born=None):
    """EventRecord from [(quantum, keywords)] plus optional ranks."""
    rec = EventRecord(event_id, born if born is not None else quanta_keywords[0][0])
    for i, (quantum, keywords) in enumerate(quanta_keywords):
        rank = ranks[i] if ranks else 10.0
        rec.snapshots.append(
            EventSnapshot(quantum, frozenset(keywords), rank, 20.0, 4)
        )
    return rec


def truth(event_id, keywords, start=0, end=4000, spurious=False, rate=0.1):
    return GroundTruthEvent(
        event_id=event_id,
        keywords=tuple(keywords),
        start_message=start,
        end_message=end,
        total_messages=100,
        n_users=30,
        headlined=False,
        headline_message=None,
        spurious=spurious,
        peak_keyword_rate=rate,
    )


QUANTUM, WINDOW = 160, 30


class TestMatching:
    def test_basic_match(self):
        records = [record(1, [(0, ["a", "b", "c"])])]
        truths = [truth("e1", ["a", "b", "c", "d"])]
        match = match_events(records, truths, QUANTUM, WINDOW)
        assert match.detected_to_truth == {1: "e1"}
        assert match.truth_to_detected == {"e1": [1]}

    def test_min_overlap_enforced(self):
        records = [record(1, [(0, ["a", "x", "y"])])]
        truths = [truth("e1", ["a", "b", "c"])]
        match = match_events(records, truths, QUANTUM, WINDOW)
        assert match.detected_to_truth == {}

    def test_cluster_fraction_blocks_giant_clusters(self):
        giant = record(1, [(0, [f"w{i}" for i in range(18)] + ["a", "b"])])
        truths = [truth("e1", ["a", "b", "c"])]
        match = match_events(
            giant and [giant], truths, QUANTUM, WINDOW,
            MatchCriteria(min_overlap=2, min_cluster_fraction=0.34),
        )
        assert match.detected_to_truth == {}

    def test_temporal_overlap_required(self):
        # event lives at messages 0-1000; record first seen at quantum 60
        records = [record(1, [(60, ["a", "b", "c"])])]
        truths = [truth("e1", ["a", "b", "c"], start=0, end=1000)]
        match = match_events(records, truths, QUANTUM, window_quanta=2)
        assert match.detected_to_truth == {}

    def test_best_overlap_wins(self):
        records = [record(1, [(0, ["a", "b", "c", "d"])])]
        truths = [
            truth("e1", ["a", "b", "x"]),
            truth("e2", ["a", "b", "c", "d"]),
        ]
        match = match_events(records, truths, QUANTUM, WINDOW)
        assert match.detected_to_truth[1] == "e2"

    def test_evolution_keywords_count(self):
        """Matching uses everything the event ever contained."""
        records = [record(1, [(0, ["a", "b"]), (1, ["b", "c"])])]
        truths = [truth("e1", ["a", "b", "c"])]
        match = match_events(records, truths, QUANTUM, WINDOW)
        assert match.detected_to_truth == {1: "e1"}

    def test_first_detection_quantum(self):
        records = [
            record(1, [(5, ["a", "b", "c"])]),
            record(2, [(3, ["a", "b", "d"])]),
        ]
        truths = [truth("e1", ["a", "b", "c", "d"])]
        match = match_events(records, truths, QUANTUM, WINDOW)
        assert match.first_detection_quantum["e1"] == 3
        assert match.first_detection_message("e1", QUANTUM) == 4 * QUANTUM


class TestFiltering:
    def config(self, **overrides):
        base = dict(high_state_threshold=4, ec_threshold=0.2)
        base.update(overrides)
        return DetectorConfig(**base)

    def test_rank_floor(self):
        # floor = 4 * 1.4 = 5.6
        low = record(1, [(0, ["a", "b", "c"]), (1, ["a", "b", "c", "d"])], ranks=[1.0, 2.0])
        high = record(2, [(0, ["x", "y", "z"]), (1, ["x", "y", "z", "w"])], ranks=[1.0, 9.0])
        out = reported_records([low, high], self.config())
        assert [r.event_id for r in out] == [2]

    def test_noun_filter(self):
        tagger = NounTagger({"a": "verb", "b": "adj", "x": "noun", "y": "verb"})
        rec1 = record(1, [(0, ["a", "b"]), (1, ["a", "b", "a2"])], ranks=[9.0, 10.0])
        rec2 = record(2, [(0, ["x", "y"]), (1, ["x", "y", "x2"])], ranks=[9.0, 10.0])
        tagger.extend_lexicon({"a2": "verb", "x2": "verb"})
        out = reported_records([rec1, rec2], self.config(), tagger)
        assert [r.event_id for r in out] == [2]

    def test_posthoc_decay_rule(self):
        decaying = record(1, [(q, ["a", "b", "c"]) for q in range(4)],
                          ranks=[12.0, 10.0, 8.0, 6.0])
        evolving = record(2, [(0, ["x", "y", "z"]), (1, ["x", "y", "z", "w"])],
                          ranks=[12.0, 10.0])
        out = reported_records([decaying, evolving], self.config())
        assert [r.event_id for r in out] == [2]
        out_all = reported_records(
            [decaying, evolving], self.config(), apply_posthoc=False
        )
        assert len(out_all) == 2

    def test_empty_records_skipped(self):
        empty = EventRecord(1, 0)
        assert reported_records([empty], self.config()) == []


class TestMetrics:
    def test_perfect_run(self):
        records = [record(1, [(0, ["a", "b", "c"])])]
        truths = [truth("e1", ["a", "b", "c"])]
        match = match_events(records, truths, QUANTUM, WINDOW)
        pr = precision_recall(records, match, truths, QUANTUM, theta=4)
        assert pr.precision == 1.0
        assert pr.recall == 1.0
        assert pr.f1 == 1.0

    def test_spurious_detection_hurts_precision(self):
        records = [
            record(1, [(0, ["a", "b", "c"])]),
            record(2, [(0, ["s1", "s2", "s3"])]),
        ]
        truths = [
            truth("e1", ["a", "b", "c"]),
            truth("spur", ["s1", "s2", "s3"], spurious=True),
        ]
        match = match_events(records, truths, QUANTUM, WINDOW)
        pr = precision_recall(records, match, truths, QUANTUM, theta=4)
        assert pr.precision == 0.5
        assert pr.recall == 1.0

    def test_unmatched_detection_hurts_precision(self):
        records = [record(1, [(0, ["junk1", "junk2", "junk3"])])]
        truths = [truth("e1", ["a", "b", "c"])]
        match = match_events(records, truths, QUANTUM, WINDOW)
        pr = precision_recall(records, match, truths, QUANTUM, theta=4)
        assert pr.precision == 0.0
        assert pr.recall == 0.0

    def test_undiscoverable_events_excluded_from_recall(self):
        """The paper's 27 sub-threshold headline events are not misses."""
        records = [record(1, [(0, ["a", "b", "c"])])]
        truths = [
            truth("e1", ["a", "b", "c"], rate=0.1),
            truth("tiny", ["t1", "t2"], rate=0.001),  # 0.16 < theta at 160
        ]
        match = match_events(records, truths, QUANTUM, WINDOW)
        pr = precision_recall(records, match, truths, QUANTUM, theta=4)
        assert pr.n_truth_discoverable == 1
        assert pr.recall == 1.0

    def test_f1_zero_when_empty(self):
        match = match_events([], [], QUANTUM, WINDOW)
        pr = precision_recall([], match, [], QUANTUM, theta=4)
        assert pr.f1 == 0.0


class TestQuality:
    def test_stats(self):
        records = [
            record(1, [(0, ["a", "b", "c"]), (1, ["a", "b", "c", "d"])],
                   ranks=[10.0, 20.0]),
            record(2, [(0, ["x", "y"])], ranks=[8.0]),
        ]
        stats = quality_stats(records)
        assert stats.n_events == 2
        assert stats.avg_cluster_size == pytest.approx((3.5 + 2) / 2)
        assert stats.avg_rank == pytest.approx((15.0 + 8.0) / 2)
        assert stats.avg_peak_rank == pytest.approx(14.0)

    def test_empty(self):
        stats = quality_stats([])
        assert stats.n_events == 0
        assert stats.avg_rank == 0.0


class TestReporting:
    def test_render_table(self):
        out = render_table(
            ["Scheme", "P"], [["SCP", 0.911], ["BC", 0.795]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) <= {"-", " "}  # header rule
        assert "SCP" in lines[3] and "0.911" in lines[3]

    def test_render_grid(self):
        out = render_grid(
            "gamma", [0.1, 0.2], "delta", [80, 160],
            [[0.9, 0.8], [0.7, 0.6]],
        )
        assert "gamma" in out and "80" in out and "0.900" in out

    def test_number_formats(self):
        out = render_table(["x"], [[12345.6], [0.123456], [42]])
        assert "12,346" in out
        assert "0.123" in out
        assert "42" in out
