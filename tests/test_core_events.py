"""Event lifecycle tracking and the Section 7.2.2 post-hoc spurious rule."""

import pytest

from repro.core.changelog import ChangeBatch, ClusterMerged
from repro.core.clusters import Cluster
from repro.core.events import EventRecord, EventSnapshot, EventTracker


def cluster(cid, nodes, edges=None, born=0):
    return Cluster(cid, set(nodes), set(edges or ()), born)


def snap(quantum, keywords, rank, support=10.0, edges=3):
    return EventSnapshot(quantum, frozenset(keywords), rank, support, edges)


class TestEventRecord:
    def test_keyword_evolution_detected(self):
        record = EventRecord(1, 0)
        record.snapshots = [snap(0, "ab", 5.0), snap(1, "abc", 6.0)]
        assert record.evolved()
        assert record.all_keywords == frozenset("abc")
        assert record.current_keywords == frozenset("abc")

    def test_no_evolution(self):
        record = EventRecord(1, 0)
        record.snapshots = [snap(0, "ab", 5.0), snap(1, "ab", 4.0)]
        assert not record.evolved()

    def test_rank_monotonically_decreasing(self):
        record = EventRecord(1, 0)
        record.snapshots = [snap(0, "ab", 9.0), snap(1, "ab", 7.0), snap(2, "ab", 7.0)]
        assert record.rank_monotonically_decreasing()
        record.snapshots.append(snap(3, "ab", 8.0))
        assert not record.rank_monotonically_decreasing()

    def test_spurious_burst_and_die(self):
        """No evolution + monotone decay = spurious (ad / rumour shape)."""
        record = EventRecord(1, 0)
        record.snapshots = [snap(q, "ab", 10.0 - q) for q in range(4)]
        assert record.is_spurious()

    def test_real_event_not_spurious(self):
        """Build-up / wind-down with evolution = real."""
        record = EventRecord(1, 0)
        record.snapshots = [
            snap(0, "ab", 4.0),
            snap(1, "abc", 9.0),
            snap(2, "abc", 12.0),
            snap(3, "ab", 6.0),
        ]
        assert not record.is_spurious()

    def test_non_monotone_rank_without_evolution_not_spurious(self):
        record = EventRecord(1, 0)
        record.snapshots = [snap(0, "ab", 4.0), snap(1, "ab", 9.0), snap(2, "ab", 5.0)]
        assert not record.is_spurious()

    def test_one_shot_cluster_spurious(self):
        record = EventRecord(1, 0)
        record.snapshots = [snap(0, "ab", 10.0)]
        assert record.is_spurious()

    def test_peak_rank_and_lifetime(self):
        record = EventRecord(1, 0)
        record.snapshots = [snap(2, "ab", 4.0), snap(5, "ab", 9.0)]
        assert record.peak_rank == 9.0
        assert record.lifetime_quanta == 4


class TestEventTracker:
    def test_birth_and_snapshotting(self):
        tracker = EventTracker()
        tracker.observe_quantum(0, [(cluster(1, "abc"), 5.0, 12.0)])
        assert len(tracker) == 1
        record = tracker.get(1)
        assert record.born_quantum == 0
        assert record.snapshots[0].keywords == frozenset("abc")

    def test_death_detected(self):
        tracker = EventTracker()
        tracker.observe_quantum(0, [(cluster(1, "abc"), 5.0, 12.0)])
        tracker.observe_quantum(1, [])
        record = tracker.get(1)
        assert not record.alive
        assert record.died_quantum == 1

    def test_absorption_attributed(self):
        tracker = EventTracker()
        tracker.observe_quantum(
            0,
            [(cluster(1, "abc"), 5.0, 12.0), (cluster(2, "xyz"), 4.0, 9.0)],
        )
        tracker.observe_quantum(
            1,
            [(cluster(1, set("abcxyz")), 8.0, 20.0)],
            changes=[ClusterMerged(survivor=1, absorbed=(2,))],
        )
        dead = tracker.get(2)
        assert dead.absorbed_into == 1

    def test_absorption_attributed_from_change_batch(self):
        """The engine path hands the tracker a drained ChangeBatch."""
        tracker = EventTracker()
        tracker.observe_quantum(
            0,
            [(cluster(1, "abc"), 5.0, 12.0), (cluster(2, "xyz"), 4.0, 9.0)],
        )
        tracker.observe_quantum(
            1,
            [(cluster(1, set("abcxyz")), 8.0, 20.0)],
            changes=ChangeBatch((ClusterMerged(survivor=1, absorbed=(2,)),)),
        )
        assert tracker.get(2).absorbed_into == 1

    def test_reopen_after_false_death(self):
        tracker = EventTracker()
        tracker.observe_quantum(0, [(cluster(1, "abc"), 5.0, 12.0)])
        tracker.observe_quantum(1, [])
        tracker.observe_quantum(2, [(cluster(1, "abd"), 6.0, 12.0)])
        record = tracker.get(1)
        assert record.alive

    def test_alive_and_top_events(self):
        tracker = EventTracker()
        tracker.observe_quantum(
            0,
            [
                (cluster(1, "abc"), 5.0, 12.0),
                (cluster(2, "def"), 9.0, 14.0),
                (cluster(3, "ghi"), 2.0, 5.0),
            ],
        )
        top = tracker.top_events(2)
        assert [r.event_id for r in top] == [2, 1]
        assert len(tracker.alive_events()) == 3

    def test_real_events_filter(self):
        tracker = EventTracker()
        for q in range(3):
            tracker.observe_quantum(
                q,
                [
                    (cluster(1, "abc" if q < 2 else "abcd"), 5.0 + q, 12.0),
                    (cluster(2, "xyz"), 9.0 - q, 14.0),
                ],
            )
        real = tracker.real_events()
        assert [r.event_id for r in real] == [1]
