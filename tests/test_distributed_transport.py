"""The socket shard transport: TCP workers bit-identical to local ones.

DESIGN.md Section 12: shard workers hosted by ``repro shard-worker``
daemons over length-prefixed CRC-framed TCP must be indistinguishable —
to the bit — from the fork/thread/serial backends: reports, sink events,
histories, and checkpoints all reuse the golden-fingerprint machinery of
``test_parallel_shard_invariance``.  Fault injection rides along: a
worker that dies between scatter and gather (remote *or* forked) must
surface a readable :class:`~repro.errors.PipelineError`, never a hang,
and the session must stay closeable.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from test_parallel_shard_invariance import (
    bursty_stream,
    make_config,
    run_session,
    uniform_stream,
)

from repro.api import open_session
from repro.errors import ConfigError, PipelineError
from repro.parallel import (
    RemoteShardTransport,
    ShardWorkerServer,
    TransportError,
    make_pool,
)
from repro.parallel.shard_state import ShardParams
from repro.parallel.transport import (
    PROTOCOL_MAGIC,
    recv_frame,
    send_frame,
)

PARAMS = ShardParams(
    window_quanta=3, minhash_size=16, seed=0, theta=3, use_minhash=True
)


@contextmanager
def worker_daemons(count):
    """``count`` in-process shard-worker daemons; yields 'host:port,...'."""
    servers, threads = [], []
    try:
        for _ in range(count):
            server = ShardWorkerServer()
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            servers.append(server)
            threads.append(thread)
        yield ",".join(server.endpoint for server in servers)
    finally:
        for server in servers:
            server.stop()
        for thread in threads:
            thread.join(timeout=5)


def spawn_worker_process():
    """A real ``repro shard-worker`` daemon process; returns (proc, endpoint)."""
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-u",
            "-c",
            "from repro.parallel.remote import serve_shard_worker; "
            "serve_shard_worker("
            "announce=lambda s: print(s.endpoint, flush=True))",
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    endpoint = proc.stdout.readline().strip()
    assert ":" in endpoint, f"daemon failed to announce itself: {endpoint!r}"
    return proc, endpoint


# ------------------------------------------------------- golden parity


@pytest.mark.parametrize(
    "workers,shards", [(2, 4), (3, 5)], ids=["W2-S4", "W3-S5"]
)
def test_remote_workers_bit_identical_to_serial(workers, shards, tmp_path):
    """TCP-hosted shards equal the plain serial session on every surface:
    reports, sink notifications, histories, and the checkpoint tree."""
    stream = bursty_stream(11, 700)
    reference = run_session(stream, tmp_path, "reference")
    with worker_daemons(workers) as endpoints:
        fingerprint = run_session(
            stream, tmp_path, f"remote-{workers}", workers=endpoints,
            shard_count=shards,
        )
    names = ("reports", "notifications", "histories", "checkpoint")
    for part, ref, name in zip(fingerprint, reference, names):
        assert part == ref, (
            f"{name} diverged from serial over TCP (W={workers}, S={shards})"
        )


def test_remote_equals_process_backend(tmp_path):
    """The transport seam itself: remote and fork answers are the same
    bytes for the same shard layout."""
    stream = uniform_stream(9, 400)
    local = run_session(stream, tmp_path, "process", workers=2, shard_count=4)
    with worker_daemons(2) as endpoints:
        remote = run_session(
            stream, tmp_path, "remote", workers=endpoints, shard_count=4
        )
    assert remote == local


def test_remote_session_resumes_from_checkpoint(tmp_path):
    """A snapshot taken under TCP workers restores under any backend."""
    stream = bursty_stream(5, 400)
    split = 200
    reference = open_session(make_config())
    ref_reports = list(reference.ingest_many(stream))
    with worker_daemons(2) as endpoints:
        first = open_session(make_config(), workers=endpoints, shard_count=4)
        reports = [r for m in stream[:split] if (r := first.ingest(m))]
        mid = tmp_path / "mid.ckpt"
        first.snapshot(mid)
        first.close()
    resumed = open_session(resume=mid)  # plain serial resume
    reports += [r for m in stream[split:] if (r := resumed.ingest(m))]
    assert [r.quantum for r in reports] == [r.quantum for r in ref_reports]
    assert [
        sorted(e.event_id for e in r.reported) for r in reports
    ] == [sorted(e.event_id for e in r.reported) for r in ref_reports]
    resumed.close()
    reference.close()


# ------------------------------------------------------- frame codec


def test_frame_codec_round_trip():
    a, b = socket.socketpair()
    try:
        message = {"op": "ingest", "args": [1, "два", 3.5, None]}
        send_frame(a, message)
        assert recv_frame(b) == message
    finally:
        a.close()
        b.close()


def test_frame_crc_mismatch_detected():
    a, b = socket.socketpair()
    try:
        send_frame(a, {"op": "ping"})
        raw = bytearray(b.recv(4096))
        raw[-1] ^= 0xFF  # flip a payload byte; CRC no longer matches
        a.sendall(bytes(raw))
        with pytest.raises(TransportError, match="CRC"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_frame_rejects_non_object_payload():
    a, b = socket.socketpair()
    try:
        import json
        import struct
        import zlib

        payload = json.dumps([1, 2, 3]).encode()
        a.sendall(
            struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        )
        with pytest.raises(TransportError, match="JSON object"):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_daemon_drops_bad_magic():
    """A stray client that is not a shard-worker peer is dropped, fast."""
    with worker_daemons(1) as endpoint:
        host, _, port = endpoint.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=5) as sock:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n"[:4])
            sock.settimeout(5)
            assert sock.recv(1) == b""  # connection closed, no reply


# ------------------------------------------------ connect/retry/refusal


def test_connect_retries_until_daemon_appears():
    """The client retries inside connect_timeout — launch order between a
    session and its shard workers must not matter."""
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    port = placeholder.getsockname()[1]
    placeholder.close()  # free the port; nothing is listening now

    started = threading.Event()

    def late_server():
        time.sleep(0.4)
        server = ShardWorkerServer(port=port)
        started.server = server
        started.set()
        server.serve_forever()

    thread = threading.Thread(target=late_server, daemon=True)
    thread.start()
    transport = RemoteShardTransport(
        f"127.0.0.1:{port}", [0], PARAMS, connect_timeout=10.0
    )
    try:
        transport.connect()  # must survive the 0.4s window with no listener
    finally:
        transport.close()
        started.wait(timeout=5)
        started.server.stop()
        thread.join(timeout=5)


def test_connect_timeout_is_readable():
    placeholder = socket.socket()
    placeholder.bind(("127.0.0.1", 0))
    port = placeholder.getsockname()[1]
    placeholder.close()
    transport = RemoteShardTransport(
        f"127.0.0.1:{port}", [0], PARAMS, connect_timeout=0.3
    )
    with pytest.raises(TransportError, match="repro shard-worker"):
        transport.connect()


def test_protocol_version_mismatch_refused():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def stale_daemon():
        conn, _ = listener.accept()
        with conn:
            assert conn.recv(len(PROTOCOL_MAGIC)) == PROTOCOL_MAGIC
            recv_frame(conn)  # the init message
            send_frame(conn, {"ok": True, "protocol": 999})

    thread = threading.Thread(target=stale_daemon, daemon=True)
    thread.start()
    transport = RemoteShardTransport(f"127.0.0.1:{port}", [0], PARAMS)
    try:
        with pytest.raises(TransportError, match="protocol"):
            transport.connect()
    finally:
        transport.close()
        listener.close()
        thread.join(timeout=5)


def test_invalid_endpoint_rejected():
    for bad in ("nohost", ":123", "host:notaport"):
        with pytest.raises(PipelineError, match="endpoint"):
            RemoteShardTransport(bad, [0], PARAMS)


def test_remote_transport_refuses_extract():
    transport = RemoteShardTransport("127.0.0.1:1", [0], PARAMS)
    with pytest.raises(PipelineError, match="extract"):
        transport.begin("extract", ((), 5, 1, {}))


def test_make_pool_backend_endpoint_conflict():
    with pytest.raises(ConfigError, match="remote backend"):
        make_pool(4, 2, PARAMS, backend="thread", endpoints=["h:1"])
    with pytest.raises(ConfigError, match="endpoints"):
        make_pool(4, 2, PARAMS, backend="remote")


def test_remote_pool_extracts_parent_side():
    with worker_daemons(2) as endpoints:
        pool = make_pool(4, 2, PARAMS, endpoints=endpoints.split(","))
        try:
            assert pool.backend == "remote"
            assert pool.can_extract is False
        finally:
            pool.close()
        session = open_session(make_config(), workers=endpoints)
        try:
            from repro.parallel import ShardedExtractStage

            assert not isinstance(
                session.pipeline.stage("extract"), ShardedExtractStage
            )
        finally:
            session.close()


# ------------------------------------------------------ fault injection


def test_remote_worker_death_raises_readable_error():
    """kill -9 a real shard-worker daemon mid-session: the next quantum
    fails with a readable PipelineError (no hang), and the session still
    closes cleanly."""
    proc_a, endpoint_a = spawn_worker_process()
    proc_b, endpoint_b = spawn_worker_process()
    session = None
    try:
        session = open_session(
            make_config(), workers=f"{endpoint_a},{endpoint_b}", shard_count=4
        )
        stream = bursty_stream(17, 200)
        for message in stream[:100]:  # a few healthy quanta first
            session.ingest(message)
        proc_b.send_signal(signal.SIGKILL)
        proc_b.wait(timeout=10)
        with pytest.raises(PipelineError, match="shard worker"):
            for message in stream[100:]:
                session.ingest(message)
        session.close()  # must not raise after the failure
        session = None
    finally:
        if session is not None:
            session.close()
        for proc in (proc_a, proc_b):
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)


def test_forked_worker_death_raises_readable_error():
    """Same contract for the fork backend: a SIGKILLed worker process
    surfaces 'died during ... (between scatter and gather)'."""
    session = open_session(make_config(), workers=2, shard_count=4)
    try:
        stream = bursty_stream(19, 200)
        for message in stream[:100]:
            session.ingest(message)
        pool = session.pipeline.stage("akg_update").frontend.pool
        assert pool.backend == "process"
        for transport in pool.transports:
            for pid in list(transport._executor._processes):
                os.kill(pid, signal.SIGKILL)
        # surfaces at gather ("died during ...") or at the next scatter
        # ("is gone; cannot submit ...") depending on when the pool notices
        with pytest.raises(PipelineError, match="shard worker process"):
            for message in stream[100:]:
                session.ingest(message)
    finally:
        session.close()  # must not raise after the failure
