"""DetectorConfig validation and derived parameters."""

import pytest

from repro.config import DetectorConfig, NOMINAL_CONFIG
from repro.errors import ConfigError, ReproError


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("quantum_size", 0),
            ("window_quanta", 0),
            ("high_state_threshold", 0),
            ("ec_threshold", 0.0),
            ("ec_threshold", 1.5),
            ("minhash_size", 0),
            ("min_cluster_size", 1),
            ("node_grace_quanta", -1),
            ("rank_threshold_scale", -0.1),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DetectorConfig(**{field: value})

    def test_config_error_is_repro_and_value_error(self):
        with pytest.raises(ReproError):
            DetectorConfig(quantum_size=0)
        with pytest.raises(ValueError):
            DetectorConfig(quantum_size=0)

    def test_nominal_matches_table2(self):
        assert NOMINAL_CONFIG.quantum_size == 160
        assert NOMINAL_CONFIG.high_state_threshold == 4
        assert NOMINAL_CONFIG.ec_threshold == pytest.approx(0.20)
        assert NOMINAL_CONFIG.window_quanta == 30


class TestDerivedParameters:
    def test_minhash_size_formula(self):
        """p = min(theta / 2, 1 / gamma) per Section 3.2.2."""
        config = DetectorConfig(high_state_threshold=4, ec_threshold=0.2)
        assert config.effective_minhash_size == 2  # min(2, 5)
        config = DetectorConfig(high_state_threshold=20, ec_threshold=0.25)
        assert config.effective_minhash_size == 4  # min(10, 4)

    def test_minhash_size_at_least_one(self):
        config = DetectorConfig(high_state_threshold=1, ec_threshold=0.9)
        assert config.effective_minhash_size == 1

    def test_minhash_override(self):
        config = DetectorConfig(minhash_size=7)
        assert config.effective_minhash_size == 7

    def test_window_messages(self):
        config = DetectorConfig(quantum_size=160, window_quanta=30)
        assert config.window_messages == 4800  # the paper's 4800 tweets

    def test_with_overrides(self):
        config = NOMINAL_CONFIG.with_overrides(quantum_size=80)
        assert config.quantum_size == 80
        assert config.ec_threshold == NOMINAL_CONFIG.ec_threshold
        with pytest.raises(ConfigError):
            NOMINAL_CONFIG.with_overrides(quantum_size=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NOMINAL_CONFIG.quantum_size = 10
