"""DetectorConfig validation and derived parameters."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.config import DetectorConfig, NOMINAL_CONFIG
from repro.errors import ConfigError, ReproError


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("quantum_size", 0),
            ("window_quanta", 0),
            ("high_state_threshold", 0),
            ("ec_threshold", 0.0),
            ("ec_threshold", 1.5),
            ("minhash_size", 0),
            ("min_cluster_size", 1),
            ("node_grace_quanta", -1),
            ("rank_threshold_scale", -0.1),
        ],
    )
    def test_out_of_range_rejected(self, field, value):
        with pytest.raises(ConfigError):
            DetectorConfig(**{field: value})

    def test_config_error_is_repro_and_value_error(self):
        with pytest.raises(ReproError):
            DetectorConfig(quantum_size=0)
        with pytest.raises(ValueError):
            DetectorConfig(quantum_size=0)

    def test_nominal_matches_table2(self):
        assert NOMINAL_CONFIG.quantum_size == 160
        assert NOMINAL_CONFIG.high_state_threshold == 4
        assert NOMINAL_CONFIG.ec_threshold == pytest.approx(0.20)
        assert NOMINAL_CONFIG.window_quanta == 30


class TestDerivedParameters:
    def test_minhash_size_formula(self):
        """p = min(theta / 2, 1 / gamma) per Section 3.2.2."""
        config = DetectorConfig(high_state_threshold=4, ec_threshold=0.2)
        assert config.effective_minhash_size == 2  # min(2, 5)
        config = DetectorConfig(high_state_threshold=20, ec_threshold=0.25)
        assert config.effective_minhash_size == 4  # min(10, 4)

    def test_minhash_size_at_least_one(self):
        config = DetectorConfig(high_state_threshold=1, ec_threshold=0.9)
        assert config.effective_minhash_size == 1

    def test_minhash_override(self):
        config = DetectorConfig(minhash_size=7)
        assert config.effective_minhash_size == 7

    def test_window_messages(self):
        config = DetectorConfig(quantum_size=160, window_quanta=30)
        assert config.window_messages == 4800  # the paper's 4800 tweets

    def test_with_overrides(self):
        config = NOMINAL_CONFIG.with_overrides(quantum_size=80)
        assert config.quantum_size == 80
        assert config.ec_threshold == NOMINAL_CONFIG.ec_threshold
        with pytest.raises(ConfigError):
            NOMINAL_CONFIG.with_overrides(quantum_size=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            NOMINAL_CONFIG.quantum_size = 10


class TestDictRoundTrip:
    """to_dict/from_dict — the checkpoint serialization path."""

    def test_nominal_round_trip(self):
        data = NOMINAL_CONFIG.to_dict()
        assert data["quantum_size"] == 160
        assert DetectorConfig.from_dict(data) == NOMINAL_CONFIG

    def test_dict_is_json_serializable(self):
        import json

        restored = DetectorConfig.from_dict(
            json.loads(json.dumps(NOMINAL_CONFIG.to_dict()))
        )
        assert restored == NOMINAL_CONFIG

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="hyperdrive"):
            DetectorConfig.from_dict({"hyperdrive": True})

    def test_missing_fields_fall_back_to_defaults(self):
        restored = DetectorConfig.from_dict({"quantum_size": 80})
        assert restored == DetectorConfig(quantum_size=80)

    def test_out_of_range_values_still_validated(self):
        with pytest.raises(ConfigError):
            DetectorConfig.from_dict({"quantum_size": 0})

    @given(
        overrides=st.fixed_dictionaries(
            {},
            optional={
                "quantum_size": st.integers(1, 5000),
                "window_quanta": st.integers(1, 100),
                "high_state_threshold": st.integers(1, 50),
                "ec_threshold": st.floats(
                    0.001, 1.0, exclude_min=False, allow_nan=False
                ),
                "minhash_size": st.one_of(st.none(), st.integers(1, 64)),
                "use_minhash_filter": st.booleans(),
                "min_cluster_size": st.integers(2, 20),
                "node_grace_quanta": st.integers(0, 10),
                "rank_threshold_scale": st.floats(
                    0.0, 100.0, allow_nan=False
                ),
                "require_noun": st.booleans(),
                "max_tokens_per_message": st.integers(1, 200),
                "track_ckg_stats": st.booleans(),
                "oracle_akg": st.booleans(),
                "oracle_ranking": st.booleans(),
                "seed": st.integers(0, 2**62),
            },
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_with_overrides_survives_round_trip(self, overrides):
        """Property: any with_overrides-built config round-trips exactly,
        including through a JSON encode (the checkpoint path)."""
        import json

        config = NOMINAL_CONFIG.with_overrides(**overrides)
        assert DetectorConfig.from_dict(config.to_dict()) == config
        assert (
            DetectorConfig.from_dict(json.loads(json.dumps(config.to_dict())))
            == config
        )
