"""The entity-extractor contract: registry, built-ins, config and session
integration, and the non-text end-to-end path."""

import pytest

from repro.api import open_session
from repro.config import DetectorConfig
from repro.datasets.entity_streams import (
    build_edge_stream_trace,
    build_structured_trace,
)
from repro.errors import ConfigError
from repro.extract import (
    EdgeStreamAdapter,
    EntityExtractor,
    FieldExtractor,
    KeywordExtractor,
    extractor_names,
    extractor_spec,
    is_reconstructible,
    make_extractor,
    register_extractor,
)
from repro.stream.messages import Message
from repro.stream.sources import message_from_record, message_to_record
from repro.stream.window import (
    actor_entities_of_quantum,
    invert_actor_entities,
)
from repro.text.tokenize import tokenize


class TestRegistry:
    def test_builtins_registered(self):
        assert {"keyword", "fields", "edges"} <= set(extractor_names())

    def test_make_extractor_round_trips_spec(self):
        for name in ("keyword", "fields", "edges"):
            extractor = make_extractor(name)
            spec = extractor_spec(extractor)
            rebuilt = make_extractor(spec["name"], spec["options"])
            assert type(rebuilt) is type(extractor)
            assert rebuilt.options() == extractor.options()
            assert is_reconstructible(extractor)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError, match="unknown extractor"):
            make_extractor("telepathy")

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigError, match="invalid options"):
            make_extractor("edges", {"no_such_option": 1})

    def test_custom_registration(self):
        class Upper:
            name = "upper"
            textual = True
            custom = False

            def entities(self, message):
                return tuple(t.upper() for t in message.tokens or ())

            def options(self):
                return {}

        register_extractor("upper", Upper)
        try:
            extractor = make_extractor("upper")
            assert isinstance(extractor, EntityExtractor)
            assert extractor.entities(Message("u", tokens=("a",))) == ("A",)
            assert is_reconstructible(extractor)
        finally:
            from repro.extract.base import _REGISTRY

            del _REGISTRY["upper"]


class TestKeywordExtractor:
    def test_matches_tokenizer_on_text(self):
        text = "Earthquake of 5.9 struck Eastern Turkey! http://t.co/x"
        extractor = KeywordExtractor()
        assert extractor.entities(Message("u", text=text)) == tuple(
            tokenize(text)
        )
        assert extractor.textual and not extractor.custom

    def test_pretokenized_passthrough(self):
        message = Message("u", tokens=("quake", "turkey"))
        assert KeywordExtractor().entities(message) == ("quake", "turkey")

    def test_fields_only_record_yields_nothing(self):
        message = Message("u", fields={"entities": ["a", "b"]})
        assert KeywordExtractor().entities(message) == ()

    def test_custom_tokenizer_marks_custom(self):
        extractor = KeywordExtractor(tokenizer=str.split)
        assert extractor.custom
        assert not is_reconstructible(extractor)


class TestFieldExtractor:
    def test_scalar_and_list_values(self):
        extractor = FieldExtractor(fields=("tags", "channel"))
        message = Message(
            "u", fields={"tags": ["a", "b"], "channel": "web", "other": "x"}
        )
        assert extractor.entities(message) == (
            "tags:a",
            "tags:b",
            "channel:web",
        )

    def test_without_namespacing(self):
        extractor = FieldExtractor(fields=("tags",), include_field=False)
        message = Message("u", fields={"tags": ["a", 7]})
        assert extractor.entities(message) == ("a", "7")

    def test_missing_fields_and_payload(self):
        extractor = FieldExtractor(fields=("tags",))
        assert extractor.entities(Message("u", fields={"x": 1})) == ()
        assert extractor.entities(Message("u", tokens=("t",))) == ()

    def test_empty_field_list_rejected(self):
        with pytest.raises(ConfigError):
            FieldExtractor(fields=())


class TestEdgeStreamAdapter:
    def test_fields_payload(self):
        message = Message("buyer", fields={"entities": ["sku1", "sku2"]})
        assert EdgeStreamAdapter().entities(message) == ("sku1", "sku2")

    def test_token_wire_form(self):
        message = Message("buyer", tokens=("sku1", "sku2"))
        assert EdgeStreamAdapter().entities(message) == ("sku1", "sku2")

    def test_custom_field_name(self):
        adapter = EdgeStreamAdapter(entities_field="cites")
        message = Message("paper", fields={"cites": ["w1"]})
        assert adapter.entities(message) == ("w1",)

    def test_non_string_entities_stringified(self):
        message = Message("u", fields={"entities": [17, "x"]})
        assert EdgeStreamAdapter().entities(message) == ("17", "x")

    def test_token_wire_form_coerced_like_fields(self):
        """{"k": [1001]} and {"entities": [1001]} must land on the same
        graph node: both paths emit canonical strings."""
        via_tokens = EdgeStreamAdapter().entities(Message("u", tokens=(1001, "x")))
        via_fields = EdgeStreamAdapter().entities(
            Message("u", fields={"entities": [1001, "x"]})
        )
        assert via_tokens == via_fields == ("1001", "x")


class TestWindowHelpers:
    def test_actor_entities_aggregates_per_actor(self):
        messages = [
            Message("a", fields={"entities": ["x", "y"]}),
            Message("a", fields={"entities": ["y", "z"]}),
            Message("b", fields={"entities": ["x"]}),
        ]
        mapping = actor_entities_of_quantum(messages, EdgeStreamAdapter())
        assert mapping == {"a": {"x", "y", "z"}, "b": {"x"}}
        assert invert_actor_entities(mapping) == {
            "x": {"a", "b"},
            "y": {"a"},
            "z": {"a"},
        }

    def test_max_entities_cap_is_per_record(self):
        messages = [Message("a", fields={"entities": ["1", "2", "3"]})]
        mapping = actor_entities_of_quantum(
            messages, EdgeStreamAdapter(), max_entities_per_record=2
        )
        assert mapping == {"a": {"1", "2"}}


class TestConfigIntegration:
    def test_extractor_validated_at_construction(self):
        with pytest.raises(ConfigError, match="unknown extractor"):
            DetectorConfig(extractor="telepathy")
        with pytest.raises(ConfigError, match="invalid options"):
            DetectorConfig(extractor="edges", extractor_options={"bad": 1})
        with pytest.raises(ConfigError, match="mapping"):
            DetectorConfig(extractor_options=["not-a-mapping"])

    def test_round_trips_through_dict(self):
        import json

        config = DetectorConfig(
            extractor="fields",
            extractor_options={"fields": ["tags"], "include_field": False},
            require_noun=False,
        )
        data = json.loads(json.dumps(config.to_dict()))
        assert DetectorConfig.from_dict(data) == config

    def test_options_are_isolated_from_caller_aliasing(self):
        """The options mapping is the extractor's checkpoint identity —
        neither the constructor argument nor to_dict() may share mutable
        structure with the frozen config."""
        opts = {"fields": ["tags"]}
        config = DetectorConfig(
            extractor="fields", extractor_options=opts, require_noun=False
        )
        opts["fields"].append("bogus")
        assert config.extractor_options == {"fields": ["tags"]}
        exported = config.to_dict()
        exported["extractor_options"]["fields"].append("bogus")
        assert config.extractor_options == {"fields": ["tags"]}

    def test_non_json_options_rejected(self):
        with pytest.raises(ConfigError, match="JSON-serializable"):
            DetectorConfig(
                extractor="fields",
                extractor_options={"fields": ("tags",), "sep": object()},
            )


class TestSessionIntegration:
    def config(self, **overrides):
        base = dict(
            quantum_size=20,
            window_quanta=3,
            high_state_threshold=3,
            ec_threshold=0.2,
            require_noun=False,
        )
        base.update(overrides)
        return DetectorConfig(**base)

    def interactions(self, n=200):
        """A burst of co-interactions on one entity bundle plus noise."""
        import random

        rng = random.Random(7)
        out = []
        for i in range(n):
            if i % 2 == 0:
                entities = rng.sample(["p1", "p2", "p3", "p4"], 3)
                actor = f"hot{rng.randrange(12)}"
            else:
                entities = [f"cold{rng.randrange(50)}"]
                actor = f"bg{rng.randrange(40)}"
            out.append(Message(actor, fields={"entities": entities}))
        return out

    def test_edge_stream_detects_bundle(self):
        session = open_session(self.config(extractor="edges"))
        reported = set()
        for report in session.ingest_many(self.interactions(), flush=True):
            for event in report.reported:
                reported |= event.keywords
        assert {"p1", "p2", "p3", "p4"} <= reported

    def test_extractor_and_tokenizer_mutually_exclusive(self):
        with pytest.raises(ConfigError):
            open_session(
                self.config(),
                extractor=EdgeStreamAdapter(),
                tokenizer=str.split,
            )

    def test_explicit_extractor_instance_overrides_config(self):
        session = open_session(
            self.config(), extractor=EdgeStreamAdapter(entities_field="e")
        )
        assert session.extractor.entities_field == "e"
        assert not session._custom_extractor  # registry-reconstructible

    def test_noun_filter_only_applies_to_textual_extractors(self):
        # same stream, require_noun on: non-textual entities must survive
        session = open_session(
            self.config(extractor="edges", require_noun=True)
        )
        reported = set()
        for report in session.ingest_many(self.interactions(), flush=True):
            for event in report.reported:
                reported |= event.keywords
        assert {"p1", "p2", "p3", "p4"} <= reported

    def test_sharded_matches_serial_for_edge_stream(self):
        def run(**kwargs):
            session = open_session(self.config(extractor="edges"), **kwargs)
            out = []
            with session:
                for report in session.ingest_many(self.interactions(800)):
                    out.append(
                        sorted(
                            (e.event_id, tuple(sorted(e.keywords)), e.rank)
                            for e in report.reported
                        )
                    )
            return out

        serial = run()
        assert run(workers=2, worker_backend="thread") == serial
        assert run(workers=4, shard_count=5, worker_backend="thread") == serial

    def test_resume_accepts_matching_registered_instance(self, tmp_path):
        """Re-passing an equivalent registered extractor on resume is fine
        (the docstring says 'pass the same objects'); a spec mismatch or a
        custom tokenizer against a registered checkpoint is refused."""
        from repro.errors import CheckpointError

        session = open_session(
            self.config(), extractor=FieldExtractor(fields=("tags",))
        )
        list(session.ingest_many(self.interactions(60)))
        path = tmp_path / "fields.ckpt"
        session.snapshot(path)
        resumed = open_session(
            resume=path, extractor=FieldExtractor(fields=("tags",))
        )
        assert resumed.extractor.fields == ("tags",)
        with pytest.raises(CheckpointError, match="does not match"):
            open_session(
                resume=path, extractor=FieldExtractor(fields=("other",))
            )
        with pytest.raises(CheckpointError, match="tokenizer"):
            open_session(resume=path, tokenizer=str.split)

    def test_custom_checkpoint_refuses_registered_extractor(self, tmp_path):
        """A custom-extractor checkpoint demands the custom object back; a
        registered extractor cannot be it and must not slip through (the
        next snapshot would launder the divergence)."""
        from repro.errors import CheckpointError

        session = open_session(self.config(), tokenizer=str.split)
        session.process_quantum(
            [Message(f"u{u}", text="alpha beta gamma") for u in range(6)]
        )
        path = tmp_path / "custom.ckpt"
        session.snapshot(path)
        with pytest.raises(CheckpointError, match="cannot be it"):
            open_session(resume=path, extractor=KeywordExtractor())
        resumed = open_session(resume=path, tokenizer=str.split)
        assert resumed._custom_extractor

    def test_checkpoint_records_extractor_identity(self, tmp_path):
        stream = self.interactions(300)
        config = self.config(extractor="edges")
        whole = open_session(config)
        expected = [
            sorted(e.keywords for e in r.reported)
            for r in whole.ingest_many(stream)
        ]
        partial = open_session(config)
        actual = [
            sorted(e.keywords for e in r.reported)
            for r in partial.ingest_many(stream[:130])
        ]
        path = tmp_path / "edges.ckpt"
        partial.snapshot(path)
        resumed = open_session(resume=path)
        assert isinstance(resumed.extractor, EdgeStreamAdapter)
        actual += [
            sorted(e.keywords for e in r.reported)
            for r in resumed.ingest_many(stream[130:])
        ]
        assert actual == expected


class TestTracePersistence:
    def test_fields_payload_round_trips_jsonl(self):
        message = Message(
            "u1", fields={"entities": ["a", "b"], "n": 3}, timestamp=1.5
        )
        assert message_from_record(message_to_record(message)) == message

    def test_non_object_fields_rejected(self):
        import pytest as _pytest

        from repro.errors import StreamError

        with _pytest.raises(StreamError, match="fields"):
            message_from_record({"u": "u1", "f": ["not", "an", "object"]})


class TestEntityStreamDatasets:
    @pytest.mark.parametrize(
        "builder,extractor",
        [
            (build_edge_stream_trace, "edges"),
            (build_structured_trace, "fields"),
        ],
    )
    def test_planted_events_discoverable(self, builder, extractor):
        trace = builder(total_messages=6000, n_events=3, seed=5)
        assert len(trace.messages) >= 6000 - 1
        config = DetectorConfig(
            quantum_size=80,
            window_quanta=10,
            high_state_threshold=3,
            extractor=extractor,
            require_noun=False,
        )
        session = open_session(config)
        reported = set()
        for report in session.ingest_many(trace.messages, flush=True):
            for event in report.reported:
                reported |= event.keywords
        hits = sum(
            1
            for truth in trace.ground_truth
            if len(set(truth.keywords) & reported) >= 3
        )
        assert hits >= 2, f"planted bundles not found: {sorted(reported)[:20]}"

    def test_deterministic_given_seed(self):
        a = build_edge_stream_trace(total_messages=2000, n_events=2, seed=3)
        b = build_edge_stream_trace(total_messages=2000, n_events=2, seed=3)
        assert [m.fields for m in a.messages] == [m.fields for m in b.messages]
        assert [m.user_id for m in a.messages] == [
            m.user_id for m in b.messages
        ]
