"""The paper's formal claims as executable checks.

Theorem 1  — every MQC (gamma >= 1/2) satisfies the short-cycle property.
Theorem 2  — clusters discovered through SCP are biconnected.
Theorem 3  — local maintenance yields the unique global decomposition
             (exercised continuously by the state machine in
             test_core_maintenance_properties; spot checks here).
Lemma 6    — aMQCs sharing an edge merge.
Section 4.1's asymmetries:
  * SCP necessary but NOT sufficient for MQC;
  * SCP sufficient but NOT necessary for biconnectivity.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atoms import satisfies_scp
from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.graph.biconnected import is_biconnected
from repro.graph.dynamic_graph import edge_key
from repro.graph.generators import (
    complete_clique,
    cycle_graph,
    glued_cycles,
    gnp_random_graph,
    random_mqc,
    two_triangles_bowtie,
)
from repro.graph.quasi_clique import is_majority_quasi_clique

from helpers import graph_from_edges


def full_edge_set(graph):
    return {edge_key(u, v) for u, v, _ in graph.edges()}


def adjacency_sets(graph):
    return {n: set(graph.neighbors(n)) for n in graph.nodes()}


class TestTheorem1:
    """MQC => SCP for *strict* majority quasi cliques (degree > (N-1)/2).

    The paper's verbal definition — "each node of the cluster is connected
    with a majority of the remaining nodes" — is the strict reading, under
    which the theorem holds.  The numeric boundary gamma == 1/2 exactly
    (degree == (N-1)/2, only possible at odd N) admits counterexamples: the
    5-cycle is the canonical one (tested below).  Even-N boundary MQCs are
    safe because ceil((N-1)/2) > (N-1)/2 there.
    """

    @given(n=st.integers(4, 10), seed=st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_strict_mqcs_satisfy_scp(self, n, seed):
        graph = random_mqc(n, seed=seed, strict=True)
        assert is_majority_quasi_clique(graph)
        assert satisfies_scp(adjacency_sets(graph), full_edge_set(graph))

    @given(n=st.sampled_from([4, 6, 8, 10]), seed=st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_even_n_boundary_mqcs_satisfy_scp(self, n, seed):
        graph = random_mqc(n, seed=seed, strict=False)
        assert is_majority_quasi_clique(graph)
        assert satisfies_scp(adjacency_sets(graph), full_edge_set(graph))

    @given(seed=st.integers(0, 100_000))
    @settings(max_examples=60, deadline=None)
    def test_any_random_graph_that_is_strict_mqc_satisfies_scp(self, seed):
        graph = gnp_random_graph(7, 0.6, seed=seed)
        n = graph.num_nodes
        if not all(graph.degree(v) > (n - 1) / 2 for v in graph.nodes()):
            return
        assert satisfies_scp(adjacency_sets(graph), full_edge_set(graph))

    def test_complete_clique(self):
        graph = complete_clique(5)
        assert satisfies_scp(adjacency_sets(graph), full_edge_set(graph))

    def test_c5_boundary_counterexample(self):
        """The 5-cycle meets gamma >= 1/2 numerically (degree 2 = (N-1)/2)
        but has no cycle shorter than 5 — the literal Theorem 1 statement
        does not cover this tight odd-N boundary.  Recorded as a documented
        deviation; the SCP machinery correctly reports no cluster here."""
        graph = cycle_graph(5)
        assert is_majority_quasi_clique(graph)  # numeric boundary reading
        assert not satisfies_scp(adjacency_sets(graph), full_edge_set(graph))
        assert decompose_graph(graph) == []

    def test_scp_not_sufficient_for_mqc(self):
        """Converse fails: glued squares satisfy SCP without being an MQC."""
        graph, _ = glued_cycles([4, 4, 4], seed=0)
        assert satisfies_scp(adjacency_sets(graph), full_edge_set(graph))
        assert not is_majority_quasi_clique(graph)


class TestTheorem2:
    """Clusters discovered through SCP are biconnected."""

    @given(seed=st.integers(0, 100_000), p=st.floats(0.1, 0.5))
    @settings(max_examples=60, deadline=None)
    def test_every_discovered_cluster_biconnected(self, seed, p):
        graph = gnp_random_graph(12, p, seed=seed)
        for nodes, edges in decompose_graph(graph):
            adjacency = {n: set() for n in nodes}
            for u, v in edges:
                adjacency[u].add(v)
                adjacency[v].add(u)
            assert is_biconnected(adjacency)

    def test_scp_not_necessary_for_biconnectivity(self):
        """A 5-cycle is biconnected but has no SCP cluster."""
        graph = cycle_graph(5)
        assert is_biconnected(graph)
        assert decompose_graph(graph) == []


class TestTheorem3:
    """Spot checks of local == global (the state machine covers depth)."""

    def test_bowtie_two_clusters(self):
        graph = two_triangles_bowtie()
        groups = decompose_graph(graph)
        assert len(groups) == 2
        node_sets = {frozenset(nodes) for nodes, _ in groups}
        assert node_sets == {frozenset({0, 1, 2}), frozenset({2, 3, 4})}

    def test_glued_chain_single_cluster(self):
        graph, cycles = glued_cycles([3, 4, 3, 4], seed=1)
        groups = decompose_graph(graph)
        assert len(groups) == 1
        all_nodes = set().union(*(set(c) for c in cycles))
        assert groups[0][0] == all_nodes

    def test_incremental_equals_global_after_churn(self):
        maintainer = ClusterMaintainer()
        graph = gnp_random_graph(15, 0.25, seed=9)
        for n in graph.nodes():
            maintainer.graph.ensure_node(n)
        edges = [(u, v) for u, v, _ in graph.edges()]
        for u, v in edges:
            maintainer.add_edge(u, v)
        for u, v in edges[::3]:
            maintainer.remove_edge(u, v)
        for node in (1, 5, 9):
            if maintainer.graph.has_node(node):
                maintainer.remove_node(node)
        maintainer.check_against_oracle()


class TestLemma6:
    def test_shared_edge_merges(self):
        maintainer = ClusterMaintainer()
        for n in ("a", "b", "c", "d"):
            maintainer.graph.ensure_node(n)
        maintainer.add_edge("a", "b")
        maintainer.add_edge("b", "c")
        maintainer.add_edge("a", "c")  # triangle 1
        maintainer.add_edge("b", "d")
        maintainer.add_edge("c", "d")  # triangle 2 shares edge (b, c)
        assert len(maintainer.registry) == 1

    def test_shared_node_does_not_merge(self):
        graph = two_triangles_bowtie()
        maintainer = ClusterMaintainer()
        for n in graph.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in graph.edges():
            maintainer.add_edge(u, v)
        assert len(maintainer.registry) == 2


class TestClusterPropertiesP1P2P3:
    """Section 4.3 summary: P1 (SCP), P2 (biconnected), P3 (unique) for
    clusters produced by incremental maintenance on random graphs."""

    @pytest.mark.parametrize("seed", range(6))
    def test_all_properties(self, seed):
        graph = gnp_random_graph(14, 0.25, seed=seed)
        maintainer = ClusterMaintainer()
        for n in graph.nodes():
            maintainer.graph.ensure_node(n)
        for u, v, _ in graph.edges():
            maintainer.add_edge(u, v)
        for cluster in maintainer.registry:
            adjacency = cluster.adjacency()
            assert satisfies_scp(adjacency, cluster.edges)  # P1
            assert is_biconnected(adjacency)  # P2
        maintainer.check_against_oracle()  # P3
