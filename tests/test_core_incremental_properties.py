"""Property-based verification of incremental ranking (DESIGN.md Section 3).

A hypothesis state machine performs arbitrary interleavings of node/edge
additions and deletions *and* node/edge weight changes, propagating the
maintainer's typed change batches into an :class:`IncrementalRanker`.  After
every step it asserts that the incremental ranks equal a from-scratch oracle
ranker's ranks exactly — the ranking counterpart of Theorem 3's decomposition
oracle in ``test_core_maintenance_properties.py``.  Any missing dirty-marking
rule (a mutation whose effect on some cluster's rank is not propagated)
diverges here.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.changelog import NodeWeightChanged
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer

NODE_POOL = list(range(10))


class IncrementalRankingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.maintainer = ClusterMaintainer()
        self.weights = {}

        def weight_fn(nodes):
            return {n: self.weights.get(n, 1.0) for n in nodes}

        self.incremental = IncrementalRanker(
            self.maintainer.registry, self.maintainer.graph, weight_fn,
            min_cluster_size=3,
        )
        self.oracle = IncrementalRanker(
            self.maintainer.registry, self.maintainer.graph, weight_fn,
            min_cluster_size=3, oracle=True,
        )

    # ------------------------------------------------------------- helpers

    @property
    def graph(self):
        return self.maintainer.graph

    def present_nodes(self):
        return [n for n in NODE_POOL if self.graph.has_node(n)]

    def missing_edges(self):
        nodes = self.present_nodes()
        return [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not self.graph.has_edge(u, v)
        ]

    def present_edges(self):
        return [(u, v) for u, v, _ in self.graph.edges()]

    # --------------------------------------------------------------- rules

    @rule(index=st.integers(0, len(NODE_POOL) - 1))
    def add_node(self, index):
        node = NODE_POOL[index]
        if not self.graph.has_node(node):
            self.maintainer.add_node(node)

    @precondition(lambda self: self.missing_edges())
    @rule(data=st.data(), weight=st.floats(0.1, 1.0, allow_nan=False))
    def add_edge(self, data, weight):
        u, v = data.draw(st.sampled_from(self.missing_edges()))
        self.maintainer.add_edge(u, v, weight)

    @rule(data=st.data(), size=st.integers(4, 5))
    def build_clique(self, data, size):
        """Jump straight to a dense region: deletions inside cliques are the
        states where a shrink re-glues into a single 'intact-looking'
        cluster, which single-edge growth rarely reaches in 30 steps."""
        nodes = data.draw(
            st.lists(st.sampled_from(NODE_POOL), min_size=size,
                     max_size=size, unique=True)
        )
        for n in nodes:
            self.graph.ensure_node(n)
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if not self.graph.has_edge(u, v):
                    self.maintainer.add_edge(u, v)

    @precondition(lambda self: self.present_edges())
    @rule(data=st.data())
    def remove_edge(self, data):
        u, v = data.draw(st.sampled_from(self.present_edges()))
        self.maintainer.remove_edge(u, v)

    @precondition(lambda self: self.present_nodes())
    @rule(data=st.data())
    def remove_node(self, data):
        node = data.draw(st.sampled_from(self.present_nodes()))
        self.maintainer.remove_node(node)
        self.weights.pop(node, None)

    @precondition(lambda self: self.present_edges())
    @rule(data=st.data(), weight=st.floats(0.1, 1.0, allow_nan=False))
    def change_edge_weight(self, data, weight):
        """Correlation refresh: the graph's weight-listener hook records the
        delta into the changelog automatically."""
        u, v = data.draw(st.sampled_from(self.present_edges()))
        self.maintainer.set_edge_weight(u, v, weight)

    @precondition(lambda self: self.present_nodes())
    @rule(data=st.data(), weight=st.integers(1, 20))
    def change_node_weight(self, data, weight):
        """Window-support change: recorded as a typed delta, the way the
        AKG builder reports id-set slides."""
        node = data.draw(st.sampled_from(self.present_nodes()))
        old = self.weights.get(node, 1.0)
        if float(weight) == old:
            return
        self.weights[node] = float(weight)
        self.maintainer.changelog.record(
            NodeWeightChanged(node, old, float(weight))
        )

    # ---------------------------------------------------------- invariants

    @invariant()
    def incremental_ranks_equal_oracle(self):
        batch = self.maintainer.drain_changes()
        self.incremental.apply(batch)
        incremental = {
            c.cluster_id: (rank, support)
            for c, rank, support in self.incremental.rank_all()
        }
        oracle = {
            c.cluster_id: (rank, support)
            for c, rank, support in self.oracle.rank_all()
        }
        assert incremental == oracle, (
            f"incremental ranking diverged from oracle:\n"
            f"  incremental: {incremental}\n"
            f"  oracle:      {oracle}\n"
            f"  batch:       {batch.events}"
        )

    @invariant()
    def cache_is_never_stale(self):
        """Once a quantum's batch is applied, no clean cache entry is stale.

        The guarantee is per-drain (the engine drains exactly once per
        quantum), so the check only applies when no events are pending.
        """
        if self.maintainer.changelog:
            return  # un-drained mutations; staleness is expected until apply
        self.incremental.verify_against_oracle()


IncrementalRankingMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestIncrementalRankingMachine = IncrementalRankingMachine.TestCase
