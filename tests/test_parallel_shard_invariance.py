"""Worker-count invariance of the keyword-range-sharded front-end.

The headline contract of :mod:`repro.parallel` (DESIGN.md Section 7): for
any ``workers`` / ``shard_count`` / backend, a sharded session emits
**bit-identical** ``QuantumReport``\\ s (including the AKG work counters),
sink notifications, event histories and checkpoints — identical to each
other *and* to the plain serial session, across the three stream regimes of
the AKG property tests.  Resume is execution-agnostic too: a mid-stream
snapshot taken under one worker count continues bit-identically under any
other.
"""

import random

import pytest

from repro.api import QueueSink, open_session
from repro.api.checkpoint import load_checkpoint
from repro.config import DetectorConfig
from repro.errors import ConfigError
from repro.stream.messages import Message

# ----------------------------------------------------------- stream regimes


def make_config(**overrides):
    base = dict(
        quantum_size=20,
        window_quanta=3,
        high_state_threshold=3,
        ec_threshold=0.2,
        node_grace_quanta=1,
        require_noun=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def bursty_stream(seed, n):
    rng = random.Random(seed)
    keywords = [f"k{i}" for i in range(6)]
    return [
        Message(
            f"u{rng.randrange(20)}",
            tokens=tuple(rng.sample(keywords, rng.randint(2, 4))),
        )
        for _ in range(n)
    ]


def uniform_stream(seed, n):
    rng = random.Random(seed)
    keywords = [f"w{i}" for i in range(40)]
    return [
        Message(
            f"u{rng.randrange(60)}",
            tokens=tuple(rng.sample(keywords, rng.randint(1, 3))),
        )
        for _ in range(n)
    ]


def reentry_stream(seed, n, config):
    rng = random.Random(seed)
    group_a = [f"a{i}" for i in range(4)]
    group_b = [f"b{i}" for i in range(4)]
    period = config.quantum_size * config.window_quanta
    return [
        Message(
            f"u{rng.randrange(15)}",
            tokens=tuple(
                rng.sample(
                    group_a if (i // period) % 2 == 0 else group_b,
                    rng.randint(2, 3),
                )
            ),
        )
        for i in range(n)
    ]


REGIMES = ["bursty", "uniform", "reentry"]


def regime_stream(regime, seed, n, config):
    if regime == "bursty":
        return bursty_stream(seed, n)
    if regime == "uniform":
        return uniform_stream(seed, n)
    return reentry_stream(seed, n, config)


# ------------------------------------------------------------- comparators


def report_key(report):
    stats = report.akg_stats
    return (
        report.quantum,
        report.messages_processed,
        sorted(
            (e.event_id, e.keywords, e.rank, e.support, e.size,
             e.num_edges, e.born_quantum)
            for e in report.reported
        ),
        sorted(
            (e.event_id, e.keywords, e.rank, e.support)
            for e in report.suppressed
        ),
        report.new_event_ids,
        report.dead_event_ids,
        report.changes,
        report.dirty_clusters,
        report.ranked_clusters,
        # the AKG work counters must not depend on the execution mode
        (stats.bursty_keywords, stats.nodes_added, stats.nodes_removed_stale,
         stats.nodes_removed_lazy, stats.edges_added, stats.edges_removed,
         stats.edges_refreshed, stats.node_weight_deltas,
         stats.candidate_pairs, stats.ec_computations,
         stats.removal_candidates, stats.akg_nodes, stats.akg_edges),
    )


def notification_key(event):
    return (
        event.kind,
        event.quantum,
        event.event_id,
        event.keywords,
        event.rank,
        event.size,
        event.previous_rank,
        event.previous_size,
    )


def history_key(record):
    return (
        record.event_id,
        record.born_quantum,
        record.died_quantum,
        record.absorbed_into,
        tuple(record.gaps),
        [
            (s.quantum, s.keywords, s.rank, s.support, s.num_edges)
            for s in record.snapshots
        ],
    )


def normalized_checkpoint(path):
    """Checkpoint state with the (wall-clock) timing floats zeroed."""
    state = load_checkpoint(path)
    state["total_seconds"] = 0.0
    state["timings"] = {key: 0.0 for key in state["timings"]}
    state["maintainer"]["clustering_seconds"] = 0.0
    return state


def run_session(stream, tmp_path, tag, **session_kwargs):
    session = open_session(make_config(), **session_kwargs)
    inbox = QueueSink()
    session.subscribe(inbox)
    reports = list(session.ingest_many(stream))
    path = tmp_path / f"{tag}.ckpt"
    session.snapshot(path)
    fingerprint = (
        [report_key(r) for r in reports],
        [notification_key(e) for e in inbox.drain()],
        sorted(history_key(r) for r in session.events()),
        normalized_checkpoint(path),
    )
    session.close()
    return fingerprint


# ------------------------------------------------------------------- tests


MODES = [
    ("serial-W1", dict(workers=1, shard_count=2)),
    ("thread-W2", dict(workers=2, worker_backend="thread")),
    ("process-W4", dict(workers=4)),
]


@pytest.mark.parametrize("regime", REGIMES)
def test_workers_1_2_4_bit_identical_to_serial(regime, tmp_path):
    """W in {1, 2, 4} (serial/thread/process backends) must all equal the
    plain unsharded session: reports, sink events, histories, checkpoints."""
    config = make_config()
    stream = regime_stream(regime, 11, 700, config)
    reference = run_session(stream, tmp_path, "reference")
    for tag, kwargs in MODES:
        fingerprint = run_session(stream, tmp_path, tag, **kwargs)
        for part, name in zip(
            fingerprint,
            ("reports", "notifications", "histories", "checkpoint"),
        ):
            assert part == reference[
                ("reports", "notifications", "histories", "checkpoint").index(
                    name
                )
            ], f"{name} diverged from serial under {tag} ({regime})"


def test_shard_count_invariance(tmp_path):
    """Results are independent of the partition granularity too."""
    stream = bursty_stream(3, 500)
    reference = run_session(stream, tmp_path, "s1", shard_count=1)
    for shards in (3, 5, 8):
        fingerprint = run_session(
            stream, tmp_path, f"s{shards}", shard_count=shards
        )
        assert fingerprint == reference, f"diverged at shard_count={shards}"


@pytest.mark.parametrize("regime", REGIMES)
@pytest.mark.parametrize("resume_workers", [1, 2])
def test_resume_under_changed_worker_count(regime, resume_workers, tmp_path):
    """Snapshot mid-stream (mid-quantum!) under W=4, resume under another W:
    the stitched run must equal an uninterrupted serial session."""
    config = make_config()
    stream = regime_stream(regime, 23, 700, config)
    split = 333  # not a quantum boundary: the buffer crosses the checkpoint

    reference = open_session(make_config())
    ref_inbox = QueueSink()
    reference.subscribe(ref_inbox)
    ref_reports = list(reference.ingest_many(stream))
    ref_path = tmp_path / "uninterrupted.ckpt"
    reference.snapshot(ref_path)

    first = open_session(make_config(), workers=4, worker_backend="thread")
    inbox_a = QueueSink()
    first.subscribe(inbox_a)
    reports = [r for m in stream[:split] if (r := first.ingest(m))]
    mid_path = tmp_path / "mid.ckpt"
    first.snapshot(mid_path)
    first.close()

    resumed = open_session(
        resume=mid_path,
        workers=resume_workers,
        worker_backend="thread" if resume_workers > 1 else None,
    )
    inbox_b = QueueSink()
    resumed.subscribe(inbox_b)
    reports += [r for m in stream[split:] if (r := resumed.ingest(m))]
    final_path = tmp_path / "final.ckpt"
    resumed.snapshot(final_path)

    assert [report_key(r) for r in reports] == [
        report_key(r) for r in ref_reports
    ]
    # Sink events across the stitch (minus the re-subscribe boundary noise):
    # notifications after the resume must match the reference tail.
    ref_notes = [notification_key(e) for e in ref_inbox.drain()]
    notes = [notification_key(e) for e in inbox_a.drain()] + [
        notification_key(e) for e in inbox_b.drain()
    ]
    assert notes == ref_notes
    assert sorted(history_key(r) for r in resumed.events()) == sorted(
        history_key(r) for r in reference.events()
    )
    assert normalized_checkpoint(final_path) == normalized_checkpoint(ref_path)
    resumed.close()


def test_checkpoint_bytes_identical_across_workers(tmp_path):
    """The strongest form: raw checkpoint files differ at most in timing
    floats — and not at all once a fixed stream prefix is snapshotted
    before any wall time accumulates... so compare the normalized states
    byte-for-byte via their JSON-decoded trees."""
    stream = uniform_stream(9, 400)
    states = []
    for tag, kwargs in [("a", {}), ("b", dict(workers=2, worker_backend="thread")),
                        ("c", dict(workers=4, shard_count=6))]:
        session = open_session(make_config(), **kwargs)
        list(session.ingest_many(stream))
        path = tmp_path / f"{tag}.ckpt"
        session.snapshot(path)
        states.append(normalized_checkpoint(path))
        session.close()
    assert states[0] == states[1] == states[2]


def test_oracle_akg_refuses_sharding():
    with pytest.raises(ConfigError):
        open_session(make_config(), workers=2, oracle_akg=True)
    with pytest.raises(ConfigError):
        make_config(oracle_akg=True, workers=2)


def test_custom_tokenizer_keeps_serial_extract_stage():
    """A custom tokenizer (a non-reconstructible extractor) cannot ride
    worker processes; the session must fall back to the serial extract
    stage but still shard the AKG work."""
    def tokenizer(text):
        return text.split()

    session = open_session(
        make_config(),
        workers=2,
        worker_backend="thread",
        tokenizer=tokenizer,
    )
    try:
        assert session.pipeline.names()[:2] == ["extract", "akg_update"]
        from repro.parallel import ShardedAkgUpdateStage, ShardedExtractStage
        from repro.pipeline.stages import ExtractStage

        assert isinstance(session.pipeline.stage("extract"), ExtractStage)
        assert not isinstance(
            session.pipeline.stage("extract"), ShardedExtractStage
        )
        assert isinstance(
            session.pipeline.stage("akg_update"), ShardedAkgUpdateStage
        )
        report = None
        for message in (
            Message("u1", text="alpha beta gamma"),
            *[
                Message(f"u{i}", text="alpha beta gamma")
                for i in range(2, 21)
            ],
        ):
            report = session.ingest(message) or report
        assert report is not None
    finally:
        session.close()
