"""Sliding-window id sets: expiry, support, Jaccard correlation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.akg.idsets import IdSetIndex
from repro.errors import StreamError


class TestWindowMechanics:
    def test_support_counts_distinct_users(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"kw": {1, 2, 3}})
        assert index.support("kw") == 3
        assert index.users("kw") == {1, 2, 3}

    def test_users_merge_across_quanta(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"kw": {1, 2}})
        index.add_quantum(1, {"kw": {2, 3}})
        assert index.users("kw") == {1, 2, 3}

    def test_expiry_after_window(self):
        index = IdSetIndex(window_quanta=2)
        index.add_quantum(0, {"kw": {1}})
        index.add_quantum(1, {"kw": {2}})
        index.add_quantum(2, {"other": {9}})
        assert index.users("kw") == {2}
        index.add_quantum(3, {"other": {9}})
        assert index.support("kw") == 0
        assert "kw" not in index

    def test_user_survives_until_last_mention_expires(self):
        index = IdSetIndex(window_quanta=2)
        index.add_quantum(0, {"kw": {1}})
        index.add_quantum(1, {"kw": {1}})
        index.add_quantum(2, {"x": {9}})
        # user 1's quantum-1 mention is still in the window
        assert index.users("kw") == {1}

    def test_out_of_order_quantum_rejected(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(5, {"kw": {1}})
        with pytest.raises(StreamError):
            index.add_quantum(5, {"kw": {2}})
        with pytest.raises(StreamError):
            index.add_quantum(3, {"kw": {2}})

    def test_invalid_window_rejected(self):
        with pytest.raises(StreamError):
            IdSetIndex(window_quanta=0)

    def test_keywords_iteration(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"a": {1}, "b": {2}})
        assert set(index.keywords()) == {"a", "b"}
        assert index.num_keywords == 2


class TestJaccard:
    def test_identical_sets(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"a": {1, 2}, "b": {1, 2}})
        assert index.jaccard("a", "b") == 1.0

    def test_disjoint_sets(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"a": {1, 2}, "b": {3, 4}})
        assert index.jaccard("a", "b") == 0.0

    def test_half_overlap(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"a": {1, 2, 3}, "b": {2, 3, 4}})
        assert index.jaccard("a", "b") == pytest.approx(2 / 4)

    def test_missing_keyword_zero(self):
        index = IdSetIndex(window_quanta=3)
        index.add_quantum(0, {"a": {1}})
        assert index.jaccard("a", "nope") == 0.0

    @given(
        sets=st.lists(
            st.tuples(
                st.sets(st.integers(0, 30), min_size=0, max_size=10),
                st.sets(st.integers(0, 30), min_size=0, max_size=10),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_direct_computation(self, sets):
        """Index Jaccard over a sliding window equals the direct Jaccard of
        the window-union sets."""
        window = 3
        index = IdSetIndex(window_quanta=window)
        for q, (ua, ub) in enumerate(sets):
            index.add_quantum(q, {"a": ua, "b": ub})
        live = sets[-window:]
        union_a = set().union(*(ua for ua, _ in live))
        union_b = set().union(*(ub for _, ub in live))
        if not union_a or not union_b:
            expected = 0.0
        else:
            expected = len(union_a & union_b) / len(union_a | union_b)
        assert index.jaccard("a", "b") == pytest.approx(expected)
        assert index.support("a") == len(union_a)
