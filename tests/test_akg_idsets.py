"""Sliding-window id sets: expiry, support, Jaccard, and the slide delta.

Every test runs against all three interchangeable engines — the reference
object index, the interned dict engine (the batched backend's pure-python
fallback), and the sorted-array engine (numpy) — because the backend
switch (DESIGN.md Section 9) promises they are contract-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.arrays as arrays
from repro.akg.idsets import ArrayIdSetIndex, BatchedIdSetIndex, IdSetIndex
from repro.akg.oracle import OracleIdSetIndex
from repro.errors import StreamError

ENGINES = [
    pytest.param(IdSetIndex, id="reference"),
    pytest.param(BatchedIdSetIndex, id="batched-dict"),
    pytest.param(
        ArrayIdSetIndex,
        id="batched-array",
        marks=pytest.mark.skipif(
            arrays.get_numpy() is None, reason="numpy not importable"
        ),
    ),
]


@pytest.fixture(params=ENGINES)
def Index(request):
    return request.param


class TestWindowMechanics:
    def test_support_counts_distinct_users(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"kw": {1, 2, 3}})
        assert index.support("kw") == 3
        assert index.users("kw") == {1, 2, 3}

    def test_users_merge_across_quanta(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"kw": {1, 2}})
        index.add_quantum(1, {"kw": {2, 3}})
        assert index.users("kw") == {1, 2, 3}

    def test_expiry_after_window(self, Index):
        index = Index(window_quanta=2)
        index.add_quantum(0, {"kw": {1}})
        index.add_quantum(1, {"kw": {2}})
        index.add_quantum(2, {"other": {9}})
        assert index.users("kw") == {2}
        index.add_quantum(3, {"other": {9}})
        assert index.support("kw") == 0
        assert "kw" not in index

    def test_user_survives_until_last_mention_expires(self, Index):
        index = Index(window_quanta=2)
        index.add_quantum(0, {"kw": {1}})
        index.add_quantum(1, {"kw": {1}})
        index.add_quantum(2, {"x": {9}})
        # user 1's quantum-1 mention is still in the window
        assert index.users("kw") == {1}

    def test_out_of_order_quantum_rejected(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(5, {"kw": {1}})
        with pytest.raises(StreamError):
            index.add_quantum(5, {"kw": {2}})
        with pytest.raises(StreamError):
            index.add_quantum(3, {"kw": {2}})

    def test_invalid_window_rejected(self, Index):
        with pytest.raises(StreamError):
            Index(window_quanta=0)

    def test_keywords_iteration(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"a": {1}, "b": {2}})
        assert set(index.keywords()) == {"a", "b"}
        assert index.num_keywords == 2


class TestSlideDelta:
    def test_appearance_reports_support_delta(self, Index):
        index = Index(window_quanta=3)
        delta = index.add_quantum(0, {"kw": {1, 2}})
        assert delta.appeared == {"kw"}
        assert delta.expired == frozenset()
        assert delta.support_deltas == {"kw": (0, 2)}
        assert delta.emptied == frozenset()
        assert delta.touched == {"kw"}

    def test_expiry_reports_emptied(self, Index):
        index = Index(window_quanta=2)
        index.add_quantum(0, {"kw": {1}})
        index.add_quantum(1, {"other": {9}})
        delta = index.add_quantum(2, {"other": {9}})
        assert delta.expired == {"kw"}
        assert delta.support_deltas == {"kw": (1, 0)}
        assert delta.emptied == {"kw"}

    def test_unchanged_support_not_reported(self, Index):
        """A keyword whose expiring users re-enter the same slide moves
        nothing and must not appear in support_deltas."""
        index = Index(window_quanta=2)
        index.add_quantum(0, {"kw": {1}})
        index.add_quantum(1, {"kw": {1}})
        delta = index.add_quantum(2, {"kw": {1}})
        assert delta.appeared == {"kw"}
        assert delta.expired == {"kw"}
        assert delta.support_deltas == {}
        assert delta.emptied == frozenset()

    def test_empty_user_sets_do_not_appear(self, Index):
        index = Index(window_quanta=2)
        delta = index.add_quantum(0, {"kw": set()})
        assert delta.appeared == frozenset()
        assert index.support("kw") == 0

    def test_same_quantum_expiry_and_reentry_single_entry(self, Index):
        """Stale + re-enter in one slide must not leak a duplicate deque
        entry: the expired entry is popped, the fresh one alone remains."""
        index = Index(window_quanta=2)
        index.add_quantum(0, {"kw": {1, 2}})
        index.add_quantum(1, {"x": {9}})
        delta = index.add_quantum(2, {"kw": {3}})
        assert delta.appeared == {"kw"} and delta.expired == {"kw"}
        assert delta.support_deltas == {"kw": (2, 1)}
        assert index.entries("kw") == ((2, frozenset({3})),)
        assert index.users("kw") == {3}

    def test_skipped_quanta_expire_together(self, Index):
        """Quantum numbers may skip; every overdue entry expires in one
        slide and each keyword still holds at most one entry per quantum."""
        index = Index(window_quanta=3)
        index.add_quantum(0, {"a": {1}})
        index.add_quantum(1, {"a": {2}, "b": {5}})
        delta = index.add_quantum(7, {"a": {3}})
        assert delta.expired == {"a", "b"}
        assert delta.emptied == {"b"}
        assert delta.support_deltas == {"a": (2, 1), "b": (1, 0)}
        assert index.entries("a") == ((7, frozenset({3})),)

    @pytest.mark.parametrize("Engine", ENGINES)
    @given(
        quanta=st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.sets(st.integers(0, 10), min_size=0, max_size=4),
                max_size=3,
            ),
            min_size=1,
            max_size=12,
        ),
        window=st.integers(1, 4),
    )
    @settings(max_examples=50, deadline=None)
    def test_delta_matches_from_scratch_oracle(self, Engine, quanta, window):
        """The O(changes) slide delta equals the oracle's full-diff delta."""
        fast = Engine(window_quanta=window)
        oracle = OracleIdSetIndex(window_quanta=window)
        for q, content in enumerate(quanta):
            fast_delta = fast.add_quantum(q, content)
            oracle_delta = oracle.add_quantum(q, content)
            assert fast_delta == oracle_delta
            for kw in ("a", "b", "c"):
                assert fast.support(kw) == oracle.support(kw)
                assert fast.users(kw) == oracle.users(kw)
            assert set(fast.keywords()) == set(oracle.keywords())


class TestJaccard:
    def test_identical_sets(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"a": {1, 2}, "b": {1, 2}})
        assert index.jaccard("a", "b") == 1.0

    def test_disjoint_sets(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"a": {1, 2}, "b": {3, 4}})
        assert index.jaccard("a", "b") == 0.0

    def test_half_overlap(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"a": {1, 2, 3}, "b": {2, 3, 4}})
        assert index.jaccard("a", "b") == pytest.approx(2 / 4)

    def test_missing_keyword_zero(self, Index):
        index = Index(window_quanta=3)
        index.add_quantum(0, {"a": {1}})
        assert index.jaccard("a", "nope") == 0.0

    @pytest.mark.parametrize("Engine", ENGINES)
    @given(
        sets=st.lists(
            st.tuples(
                st.sets(st.integers(0, 30), min_size=0, max_size=10),
                st.sets(st.integers(0, 30), min_size=0, max_size=10),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_direct_computation(self, Engine, sets):
        """Index Jaccard over a sliding window equals the direct Jaccard of
        the window-union sets."""
        window = 3
        index = Engine(window_quanta=window)
        for q, (ua, ub) in enumerate(sets):
            index.add_quantum(q, {"a": ua, "b": ub})
        live = sets[-window:]
        union_a = set().union(*(ua for ua, _ in live))
        union_b = set().union(*(ub for _, ub in live))
        if not union_a or not union_b:
            expected = 0.0
        else:
            expected = len(union_a & union_b) / len(union_a | union_b)
        assert index.jaccard("a", "b") == pytest.approx(expected)
        assert index.support("a") == len(union_a)
