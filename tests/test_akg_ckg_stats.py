"""Full-CKG counters for the Section 7.4 reduction study."""

import pytest

from repro.akg.ckg_stats import CkgStatsTracker
from repro.akg.correlation import exact_jaccard


class TestCkgStats:
    def test_nodes_and_edges_counted(self):
        tracker = CkgStatsTracker(window_quanta=3)
        tracker.add_quantum(0, {1: {"a", "b", "c"}})
        assert tracker.ckg_nodes == 3
        assert tracker.ckg_edges == 3  # triangle of co-occurrence

    def test_edges_require_same_user(self):
        tracker = CkgStatsTracker(window_quanta=3)
        tracker.add_quantum(0, {1: {"a", "b"}, 2: {"c", "d"}})
        assert tracker.ckg_nodes == 4
        assert tracker.ckg_edges == 2  # (a,b) and (c,d) only

    def test_window_expiry(self):
        tracker = CkgStatsTracker(window_quanta=2)
        tracker.add_quantum(0, {1: {"a", "b"}})
        tracker.add_quantum(1, {2: {"c", "d"}})
        tracker.add_quantum(2, {3: {"e", "f"}})
        assert tracker.ckg_nodes == 4  # a, b expired
        assert tracker.ckg_edges == 2

    def test_duplicate_pairs_counted_once(self):
        tracker = CkgStatsTracker(window_quanta=3)
        tracker.add_quantum(0, {1: {"a", "b"}, 2: {"a", "b"}})
        assert tracker.ckg_edges == 1

    def test_pair_cap_limits_flooding(self):
        tracker = CkgStatsTracker(window_quanta=3, max_pairs_per_user=10)
        tracker.add_quantum(0, {1: {f"w{i}" for i in range(30)}})
        assert tracker.ckg_edges <= 10
        assert tracker.truncated_users == 1

    def test_reduction_ratios(self):
        tracker = CkgStatsTracker(window_quanta=3)
        tracker.add_quantum(0, {u: {f"w{u}a", f"w{u}b"} for u in range(50)})
        ratios = tracker.reduction_ratios(akg_nodes=5, akg_edges=1)
        assert ratios["node_ratio"] == pytest.approx(5 / 100)
        assert ratios["edge_ratio"] == pytest.approx(1 / 50)

    def test_empty_ratios(self):
        tracker = CkgStatsTracker(window_quanta=2)
        assert tracker.reduction_ratios(0, 0) == {
            "node_ratio": 0.0,
            "edge_ratio": 0.0,
        }


class TestExactJaccard:
    def test_basic(self):
        assert exact_jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)

    def test_empty_sets(self):
        assert exact_jaccard(set(), {1}) == 0.0
        assert exact_jaccard(set(), set()) == 0.0

    def test_symmetry(self):
        a, b = {1, 2, 3}, {3, 4}
        assert exact_jaccard(a, b) == exact_jaccard(b, a)
