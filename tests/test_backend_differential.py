"""Backend differential: batched must be bit-identical to reference.

The batched backend (PR 6) re-implements the extract + AKG hot path over
interned array columns — a wholly different execution strategy whose
*observable* behaviour must be indistinguishable from the reference
object path.  These tests pin that contract three ways:

* golden fingerprints over the three stream regimes — reports, sink
  notes, event histories, and normalized checkpoints all hash identically
  for reference, batched (numpy), and batched (pure-python fallback);
* cross-backend checkpoint resume — a stream snapshotted under either
  backend continues identically under either backend, because
  ``backend`` is an execution field that never enters the checkpoint;
* config validation — the backend switch rejects unknown values and the
  contradictory ``oracle_akg`` + batched combination up front.

The pure-python fallback is forced through ``repro.arrays.FORCE_PURE``
(the switch behind ``REPRO_PURE_PYTHON``), so the numpy and fallback
engines are exercised in the same process regardless of the environment.
"""

import pytest

import repro.arrays as arrays
from golden import (
    bursty_stream,
    fingerprint,
    reentry_stream,
    run_structure,
    uniform_stream,
)
from repro.api import QueueSink, open_session
from repro.config import DetectorConfig
from repro.errors import ConfigError
from repro.stream.messages import Message

BASE = dict(
    quantum_size=20,
    window_quanta=3,
    high_state_threshold=3,
    ec_threshold=0.2,
    node_grace_quanta=1,
)

REGIMES = {
    "bursty": lambda: bursty_stream(11, 600),
    "uniform": lambda: uniform_stream(13, 600),
    "reentry": lambda: reentry_stream(17, 600, 120),
}

# Golden fingerprints of the reference backend over the three regimes.
# The batched backend (both engines) must reproduce these exactly; any
# drift in ranks, supports, lifecycle events, AKG counters, or checkpoint
# layout flips a hash.
GOLDEN = {
    "bursty": "5395aedf79f7276c296c0442bed9fe9e96e52ffad46470ee90ec080536a56e83",
    "uniform": "b3f772d72dfa5692a88ec31c2c1f6183017538223f88734e9f66d10039b593fd",
    "reentry": "ff3614f2a4416ce4b3112a904b98194dab8f48764464d96e743463616357f119",
}

BACKENDS = ("reference", "batched", "batched-pure")


def _structure(backend, messages, ckpt_path, **session_kwargs):
    """run_structure under the named backend variant."""
    pure = backend == "batched-pure"
    config = DetectorConfig(
        **BASE, backend="batched" if pure else backend
    )
    if pure:
        arrays.FORCE_PURE = True
    try:
        return run_structure(messages, config, ckpt_path, **session_kwargs)
    finally:
        arrays.FORCE_PURE = False


class TestGoldenParity:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_matches_golden_fingerprint(
        self, regime, backend, tmp_path
    ):
        structure = _structure(
            backend, REGIMES[regime](), str(tmp_path / "ck")
        )
        assert fingerprint(structure) == GOLDEN[regime], (
            f"{backend} backend drifted from the golden structure on the "
            f"{regime} regime"
        )


class TestCrossBackendResume:
    """``backend`` is an execution field: checkpoints neither record it nor
    depend on it, so any backend can continue any snapshot."""

    @pytest.mark.parametrize("first", ["reference", "batched"])
    @pytest.mark.parametrize("second", ["reference", "batched"])
    def test_resume_across_backends(self, first, second, tmp_path):
        messages = [
            Message(u, tokens=t) for u, t in REGIMES["bursty"]()
        ]
        half = len(messages) // 2

        session = open_session(DetectorConfig(**BASE, backend=first))
        inbox = QueueSink()
        session.subscribe(inbox)
        reports = list(
            session.ingest_many(iter(messages[:half]), flush=False)
        )
        notes = list(inbox.drain())
        ckpt = str(tmp_path / "half.ckpt")
        session.snapshot(ckpt)
        session.close()

        resumed = open_session(resume=ckpt, backend=second)
        inbox2 = QueueSink()
        resumed.subscribe(inbox2)
        reports += list(resumed.ingest_many(iter(messages[half:])))
        notes += list(inbox2.drain())
        histories = sorted(
            (r.event_id, r.born_quantum, r.died_quantum)
            for r in resumed.events()
        )
        resumed.close()

        oracle = open_session(DetectorConfig(**BASE, backend="reference"))
        oracle_inbox = QueueSink()
        oracle.subscribe(oracle_inbox)
        oracle_reports = list(oracle.ingest_many(iter(messages)))
        oracle_notes = list(oracle_inbox.drain())
        oracle_histories = sorted(
            (r.event_id, r.born_quantum, r.died_quantum)
            for r in oracle.events()
        )
        oracle.close()

        def rendered(rs):
            return [
                (
                    r.quantum,
                    sorted(
                        (e.event_id, tuple(sorted(e.keywords)), e.rank)
                        for e in r.reported
                    ),
                    sorted(r.new_event_ids),
                    sorted(r.dead_event_ids),
                )
                for r in rs
            ]

        assert rendered(reports) == rendered(oracle_reports)
        assert [
            (n.kind, n.quantum, n.event_id) for n in notes
        ] == [(n.kind, n.quantum, n.event_id) for n in oracle_notes]
        assert histories == oracle_histories


class TestBackendConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            DetectorConfig(backend="turbo")

    def test_oracle_akg_requires_reference(self):
        with pytest.raises(ConfigError, match="oracle_akg"):
            DetectorConfig(backend="batched", oracle_akg=True)

    def test_backend_absent_from_checkpoint_config(self, tmp_path):
        from repro.api.checkpoint import load_checkpoint

        session = open_session(DetectorConfig(**BASE, backend="batched"))
        list(
            session.ingest_many(
                Message(u, tokens=t) for u, t in bursty_stream(3, 40)
            )
        )
        ckpt = str(tmp_path / "c.ckpt")
        session.snapshot(ckpt)
        session.close()
        state = load_checkpoint(ckpt)
        assert "backend" not in state["config"]
