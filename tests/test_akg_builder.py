"""AKG builder: the Section 3 node/edge lifecycle rules."""

import pytest

from repro.akg.builder import AkgBuilder
from repro.config import DetectorConfig
from repro.core.maintenance import ClusterMaintainer


def make_builder(**overrides):
    base = dict(
        quantum_size=8,
        window_quanta=3,
        high_state_threshold=2,
        ec_threshold=0.3,
        use_minhash_filter=False,
        node_grace_quanta=1,
    )
    base.update(overrides)
    maintainer = ClusterMaintainer()
    return AkgBuilder(DetectorConfig(**base), maintainer), maintainer


def quantum(*pairs):
    """Build keyword -> user-set mapping from (keyword, users) pairs."""
    return {kw: set(users) for kw, users in pairs}


class TestNodeLifecycle:
    def test_bursty_keyword_enters_akg(self):
        builder, maintainer = make_builder()
        stats = builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        assert maintainer.graph.has_node("hot")
        assert stats.nodes_added == 1
        assert stats.bursty_keywords == 1

    def test_sub_threshold_keyword_stays_out(self):
        builder, maintainer = make_builder()
        builder.process_quantum(0, quantum(("cool", [1])))
        assert not maintainer.graph.has_node("cool")

    def test_stale_node_removed(self):
        builder, maintainer = make_builder(window_quanta=2)
        builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        builder.process_quantum(1, quantum(("x", [9])))
        stats = builder.process_quantum(2, quantum(("y", [9])))
        assert not maintainer.graph.has_node("hot")
        assert stats.nodes_removed_stale >= 1

    def test_lazy_drop_of_unclustered_node(self):
        """A non-clustered keyword that stops bursting is dropped after the
        grace period even while still inside the window."""
        builder, maintainer = make_builder(window_quanta=5, node_grace_quanta=1)
        builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        builder.process_quantum(1, quantum(("hot", [1])))  # below theta
        stats = builder.process_quantum(2, quantum(("hot", [1])))
        assert not maintainer.graph.has_node("hot")
        assert stats.nodes_removed_lazy >= 1

    def test_clustered_node_survives_without_bursting(self):
        """'A keyword which has moved to AKG remains in AKG as long as it is
        part of an event cluster irrespective of its frequency.'"""
        builder, maintainer = make_builder(window_quanta=6)
        users = [1, 2, 3, 4]
        full = quantum(("a", users), ("b", users), ("c", users))
        builder.process_quantum(0, full)
        assert len(maintainer.registry) == 1
        # keywords keep appearing (no staleness) but below theta
        trickle = quantum(("a", [1]), ("b", [1]), ("c", [1]))
        for q in (1, 2, 3):
            builder.process_quantum(q, trickle)
        assert maintainer.graph.has_node("a")
        assert len(maintainer.registry) == 1


class TestEdgeLifecycle:
    def test_edge_between_cobursty_keywords(self):
        builder, maintainer = make_builder()
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        assert maintainer.graph.has_edge("a", "b")
        assert maintainer.graph.edge_weight("a", "b") == pytest.approx(1.0)

    def test_no_edge_below_gamma(self):
        builder, maintainer = make_builder(ec_threshold=0.9)
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [3, 4, 5])))
        assert not maintainer.graph.has_edge("a", "b")

    def test_new_edges_only_among_currently_bursty(self):
        """Set (1) of Section 3.2.1: a pair gains a new edge only in a
        quantum where both keywords burst."""
        builder, maintainer = make_builder(window_quanta=5)
        builder.process_quantum(0, quantum(("a", [1, 2, 3])))
        # 'b' bursts later; 'a' stays in window but is not re-bursting:
        # correlation exists in the window but no edge may form
        builder.process_quantum(1, quantum(("b", [1, 2, 3]), ("a", [1])))
        assert not maintainer.graph.has_edge("a", "b")
        # both burst together -> edge forms
        builder.process_quantum(2, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        assert maintainer.graph.has_edge("a", "b")

    def test_edge_refresh_updates_weight(self):
        """Set (2): edges of keywords seen this quantum are recomputed."""
        builder, maintainer = make_builder(window_quanta=2)
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        w0 = maintainer.graph.edge_weight("a", "b")
        builder.process_quantum(1, quantum(("a", [1, 2, 3, 4, 5]), ("b", [1])))
        w1 = maintainer.graph.edge_weight("a", "b")
        assert w1 < w0

    def test_edge_dropped_when_correlation_decays(self):
        builder, maintainer = make_builder(window_quanta=2, ec_threshold=0.5)
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        assert maintainer.graph.has_edge("a", "b")
        builder.process_quantum(
            1, quantum(("a", [4, 5, 6, 7]), ("b", [8, 9, 10, 11]))
        )
        builder.process_quantum(
            2, quantum(("a", [4, 5, 6, 7]), ("b", [8, 9, 10, 11]))
        )
        assert not maintainer.graph.has_edge("a", "b")

    def test_stats_counters(self):
        builder, _ = make_builder()
        stats = builder.process_quantum(
            0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3]), ("c", [9]))
        )
        assert stats.akg_nodes == 2
        assert stats.akg_edges == 1
        assert stats.edges_added == 1
        assert stats.ec_computations >= 1


class TestMinhashFilterIntegration:
    def test_exact_and_filtered_agree_on_strong_pairs(self):
        """With identical id sets (J = 1) the MinHash filter must not lose
        the pair (collision probability 1)."""
        exact_builder, exact_m = make_builder(use_minhash_filter=False)
        mh_builder, mh_m = make_builder(use_minhash_filter=True)
        data = quantum(("a", [1, 2, 3]), ("b", [1, 2, 3]), ("c", [1, 2, 3]))
        exact_builder.process_quantum(0, data)
        mh_builder.process_quantum(0, data)
        assert exact_m.graph.num_edges == mh_m.graph.num_edges == 3

    def test_filter_reduces_candidate_pairs(self):
        """Disjoint-user keywords are never even EC-checked under MinHash."""
        mh_builder, _ = make_builder(use_minhash_filter=True)
        data = quantum(
            ("a", [1, 2, 3]),
            ("b", [4, 5, 6]),
            ("c", [7, 8, 9]),
            ("d", [10, 11, 12]),
        )
        stats = mh_builder.process_quantum(0, data)
        assert stats.candidate_pairs == 0

    def test_node_weights(self):
        builder, _ = make_builder()
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2])))
        weights = builder.node_weights(["a", "b"])
        assert weights == {"a": 3, "b": 2}
