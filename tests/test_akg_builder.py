"""AKG builder: the Section 3 node/edge lifecycle rules."""

import pytest

from repro.akg.builder import AkgBuilder
from repro.config import DetectorConfig
from repro.core.changelog import NodeWeightChanged
from repro.core.maintenance import ClusterMaintainer


def make_builder(**overrides):
    base = dict(
        quantum_size=8,
        window_quanta=3,
        high_state_threshold=2,
        ec_threshold=0.3,
        use_minhash_filter=False,
        node_grace_quanta=1,
    )
    base.update(overrides)
    maintainer = ClusterMaintainer()
    return AkgBuilder(DetectorConfig(**base), maintainer), maintainer


def quantum(*pairs):
    """Build keyword -> user-set mapping from (keyword, users) pairs."""
    return {kw: set(users) for kw, users in pairs}


class TestNodeLifecycle:
    def test_bursty_keyword_enters_akg(self):
        builder, maintainer = make_builder()
        stats = builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        assert maintainer.graph.has_node("hot")
        assert stats.nodes_added == 1
        assert stats.bursty_keywords == 1

    def test_sub_threshold_keyword_stays_out(self):
        builder, maintainer = make_builder()
        builder.process_quantum(0, quantum(("cool", [1])))
        assert not maintainer.graph.has_node("cool")

    def test_stale_node_removed(self):
        builder, maintainer = make_builder(window_quanta=2)
        builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        builder.process_quantum(1, quantum(("x", [9])))
        stats = builder.process_quantum(2, quantum(("y", [9])))
        assert not maintainer.graph.has_node("hot")
        assert stats.nodes_removed_stale >= 1

    def test_lazy_drop_of_unclustered_node(self):
        """A non-clustered keyword that stops bursting is dropped after the
        grace period even while still inside the window."""
        builder, maintainer = make_builder(window_quanta=5, node_grace_quanta=1)
        builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        builder.process_quantum(1, quantum(("hot", [1])))  # below theta
        stats = builder.process_quantum(2, quantum(("hot", [1])))
        assert not maintainer.graph.has_node("hot")
        assert stats.nodes_removed_lazy >= 1

    def test_clustered_node_survives_without_bursting(self):
        """'A keyword which has moved to AKG remains in AKG as long as it is
        part of an event cluster irrespective of its frequency.'"""
        builder, maintainer = make_builder(window_quanta=6)
        users = [1, 2, 3, 4]
        full = quantum(("a", users), ("b", users), ("c", users))
        builder.process_quantum(0, full)
        assert len(maintainer.registry) == 1
        # keywords keep appearing (no staleness) but below theta
        trickle = quantum(("a", [1]), ("b", [1]), ("c", [1]))
        for q in (1, 2, 3):
            builder.process_quantum(q, trickle)
        assert maintainer.graph.has_node("a")
        assert len(maintainer.registry) == 1


class TestSameQuantumReentry:
    def test_no_duplicate_entry_and_single_weight_delta(self):
        """A keyword whose last window entry expires in the same quantum it
        re-appears must keep exactly one id-set entry and emit exactly one
        NodeWeightChanged — not a stale-then-readd double account."""
        builder, maintainer = make_builder(window_quanta=2, ec_threshold=0.1)
        users = [1, 2, 3]
        builder.process_quantum(
            0, quantum(("hot", users), ("warm", users))
        )  # hot/warm burst -> AKG edge, no cluster (only 2 nodes)
        builder.process_quantum(1, quantum(("hot", [1]), ("warm", [1])))
        maintainer.drain_changes()
        # quantum 2: the quantum-0 entries expire AND both re-appear
        stats = builder.process_quantum(
            2, quantum(("hot", [1, 9]), ("warm", [1, 9]))
        )
        assert builder.idsets.entries("hot") == (
            (1, frozenset({1})),
            (2, frozenset({1, 9})),
        )
        events = [
            e
            for e in maintainer.drain_changes().events
            if isinstance(e, NodeWeightChanged) and e.node == "hot"
        ]
        assert len(events) == 1
        assert (events[0].old, events[0].new) == (3, 2)
        assert stats.nodes_removed_stale == 0
        assert maintainer.graph.has_node("hot")

    def test_reentry_after_full_expiry_rejoins_cleanly(self):
        """Silence for exactly the window length: the keyword's last entry
        expires in the quantum it bursts again, so it must stay in the AKG
        without ever being counted stale."""
        builder, maintainer = make_builder(window_quanta=2)
        builder.process_quantum(0, quantum(("hot", [1, 2, 3])))
        builder.process_quantum(1, quantum(("x", [1, 2])))
        stats = builder.process_quantum(2, quantum(("hot", [4, 5, 6])))
        assert maintainer.graph.has_node("hot")
        assert stats.nodes_removed_stale == 0
        assert builder.idsets.support("hot") == 3
        assert builder.idsets.entries("hot") == ((2, frozenset({4, 5, 6})),)


class TestDeltaDrivenRemoval:
    def test_unclustered_transition_triggers_lazy_drop(self):
        """A clustered keyword that outlives its grace period is dropped in
        the quantum it loses its last cluster — discovered through the
        registry's unclustered listener, not a graph sweep."""
        builder, maintainer = make_builder(
            window_quanta=3, node_grace_quanta=1, ec_threshold=0.4
        )
        users = [1, 2, 3, 4]
        builder.process_quantum(
            0, quantum(("a", users), ("b", users), ("c", users))
        )
        assert len(maintainer.registry) == 1
        # keep the keywords in-window but below theta; grace expires while
        # the triangle still protects them
        for q in (1, 2, 3):
            builder.process_quantum(
                q, quantum(("a", [1]), ("b", [1]), ("c", [1]))
            )
        assert maintainer.graph.has_node("a")
        # disjoint users crash the correlations -> edges drop -> cluster
        # dissolves -> all three become unclustered and past grace
        stats = builder.process_quantum(
            4, quantum(("a", [5]), ("b", [6]), ("c", [7]))
        )
        assert stats.nodes_removed_lazy == 3
        assert not maintainer.graph.has_node("a")
        assert len(maintainer.registry) == 0

    def test_removal_work_tracks_candidates_not_graph(self):
        """The dead-node pass must examine only the delta-sized candidate
        pool: with a large stable clustered vocabulary and one dying
        keyword, candidates stay O(1), not O(nodes)."""
        builder, maintainer = make_builder(
            window_quanta=6, node_grace_quanta=0, ec_threshold=0.1
        )
        users = list(range(4))
        stable = {f"s{i}": set(users) for i in range(30)}
        builder.process_quantum(0, {**stable, "loner": {101, 102, 103}})
        assert maintainer.graph.num_nodes == 31
        # quantum 1: stable keywords burst again (deadlines re-armed, all
        # clustered); the loner's grace deadline fires and it is dropped.
        # The candidate pool is the 31 quantum-0 deadlines, never the
        # vocabulary sweep the oracle does.
        stats = builder.process_quantum(1, stable)
        assert stats.removal_candidates <= 31
        assert not maintainer.graph.has_node("loner")
        # steady state: only the re-armed deadline checks fire
        for q in (2, 3):
            stats = builder.process_quantum(q, stable)
            assert stats.removal_candidates <= 30
        assert maintainer.graph.num_nodes == 30


class TestEdgeLifecycle:
    def test_edge_between_cobursty_keywords(self):
        builder, maintainer = make_builder()
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        assert maintainer.graph.has_edge("a", "b")
        assert maintainer.graph.edge_weight("a", "b") == pytest.approx(1.0)

    def test_no_edge_below_gamma(self):
        builder, maintainer = make_builder(ec_threshold=0.9)
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [3, 4, 5])))
        assert not maintainer.graph.has_edge("a", "b")

    def test_new_edges_only_among_currently_bursty(self):
        """Set (1) of Section 3.2.1: a pair gains a new edge only in a
        quantum where both keywords burst."""
        builder, maintainer = make_builder(window_quanta=5)
        builder.process_quantum(0, quantum(("a", [1, 2, 3])))
        # 'b' bursts later; 'a' stays in window but is not re-bursting:
        # correlation exists in the window but no edge may form
        builder.process_quantum(1, quantum(("b", [1, 2, 3]), ("a", [1])))
        assert not maintainer.graph.has_edge("a", "b")
        # both burst together -> edge forms
        builder.process_quantum(2, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        assert maintainer.graph.has_edge("a", "b")

    def test_edge_refresh_updates_weight(self):
        """Set (2): edges of keywords seen this quantum are recomputed."""
        builder, maintainer = make_builder(window_quanta=2)
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        w0 = maintainer.graph.edge_weight("a", "b")
        builder.process_quantum(1, quantum(("a", [1, 2, 3, 4, 5]), ("b", [1])))
        w1 = maintainer.graph.edge_weight("a", "b")
        assert w1 < w0

    def test_edge_dropped_when_correlation_decays(self):
        builder, maintainer = make_builder(window_quanta=2, ec_threshold=0.5)
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3])))
        assert maintainer.graph.has_edge("a", "b")
        builder.process_quantum(
            1, quantum(("a", [4, 5, 6, 7]), ("b", [8, 9, 10, 11]))
        )
        builder.process_quantum(
            2, quantum(("a", [4, 5, 6, 7]), ("b", [8, 9, 10, 11]))
        )
        assert not maintainer.graph.has_edge("a", "b")

    def test_stats_counters(self):
        builder, _ = make_builder()
        stats = builder.process_quantum(
            0, quantum(("a", [1, 2, 3]), ("b", [1, 2, 3]), ("c", [9]))
        )
        assert stats.akg_nodes == 2
        assert stats.akg_edges == 1
        assert stats.edges_added == 1
        assert stats.ec_computations >= 1


class TestMinhashFilterIntegration:
    def test_exact_and_filtered_agree_on_strong_pairs(self):
        """With identical id sets (J = 1) the MinHash filter must not lose
        the pair (collision probability 1)."""
        exact_builder, exact_m = make_builder(use_minhash_filter=False)
        mh_builder, mh_m = make_builder(use_minhash_filter=True)
        data = quantum(("a", [1, 2, 3]), ("b", [1, 2, 3]), ("c", [1, 2, 3]))
        exact_builder.process_quantum(0, data)
        mh_builder.process_quantum(0, data)
        assert exact_m.graph.num_edges == mh_m.graph.num_edges == 3

    def test_filter_reduces_candidate_pairs(self):
        """Disjoint-user keywords are never even EC-checked under MinHash."""
        mh_builder, _ = make_builder(use_minhash_filter=True)
        data = quantum(
            ("a", [1, 2, 3]),
            ("b", [4, 5, 6]),
            ("c", [7, 8, 9]),
            ("d", [10, 11, 12]),
        )
        stats = mh_builder.process_quantum(0, data)
        assert stats.candidate_pairs == 0

    def test_node_weights(self):
        builder, _ = make_builder()
        builder.process_quantum(0, quantum(("a", [1, 2, 3]), ("b", [1, 2])))
        weights = builder.node_weights(["a", "b"])
        assert weights == {"a": 3, "b": 2}
