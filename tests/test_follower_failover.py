"""Hot-standby failover: a promoted follower equals the uninterrupted run.

The contract under test (DESIGN.md Section 10): a ``FollowerSession``
tailing a leader's delta log, promoted mid-stream and fed the stream from
the last logged quantum boundary, produces reports, sink notifications,
event histories, and a final checkpoint bit-identical to a session that
never stopped — across serial/sharded execution and batched/reference
backends, for both the leader and the promoted session.  A crashed leader
(SIGKILL mid-append in a subprocess) must leave a log the follower loads
to a consistent quantum boundary.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

import golden
from repro.api import FollowerSession, QueueSink, open_session
from repro.errors import CheckpointError

from test_api_checkpoint import (
    bursty_stream,
    history_key,
    make_config,
    notification_key,
    report_key,
)


def uninterrupted_run(config, messages, **kwargs):
    session = open_session(config, **kwargs)
    sink = QueueSink()
    session.subscribe(sink)
    reports = [report_key(r) for r in session.ingest_many(messages)]
    notes = [notification_key(e) for e in sink.drain()]
    return reports, notes, session


# Leader execution x promoted execution: the delta log is execution-
# agnostic, so any leader's log must promote identically under any mode.
MATRIX = [
    ({}, {}),
    ({"workers": 2}, {}),
    ({}, {"workers": 2}),
    ({"backend": "batched"}, {}),
    ({}, {"backend": "batched"}),
]


class TestPromoteParity:
    @pytest.mark.parametrize("leader_kwargs,promote_kwargs", MATRIX)
    def test_promoted_follower_equals_uninterrupted(
        self, leader_kwargs, promote_kwargs, tmp_path
    ):
        config = make_config()
        messages = bursty_stream(21, 900)
        expected_reports, expected_notes, whole = uninterrupted_run(
            config, messages
        )
        whole.snapshot(tmp_path / "whole.ckpt")

        # leader runs the first 600 messages (30 quanta), then "dies"
        with open_session(
            config, delta_log=tmp_path / "d", **leader_kwargs
        ) as leader:
            lead_sink = QueueSink()
            leader.subscribe(lead_sink)
            reports = [
                report_key(r) for r in leader.ingest_many(messages[:600])
            ]
            notes = [notification_key(e) for e in lead_sink.drain()]

        follower = FollowerSession(tmp_path / "d")
        takeover = follower.current_quantum
        assert takeover == 29  # all 30 leader quanta were logged
        session = follower.promote(**promote_kwargs)
        sink = QueueSink()
        session.subscribe(sink)
        reports += [
            report_key(r)
            for r in session.ingest_many(
                messages[(takeover + 1) * config.quantum_size :]
            )
        ]
        notes += [notification_key(e) for e in sink.drain()]

        assert reports == expected_reports
        assert notes == expected_notes
        assert [history_key(r) for r in session.events()] == [
            history_key(r) for r in whole.events()
        ]
        session.snapshot(tmp_path / "prom.ckpt")
        assert golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "prom.ckpt")
        ) == golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "whole.ckpt")
        )
        session.close()

    def test_live_tail_while_leader_runs(self, tmp_path):
        """catch_up() mid-stream tracks the leader quantum by quantum,
        across compactions (generation flips)."""
        config = make_config()
        messages = bursty_stream(23, 800)
        with open_session(
            config, delta_log=tmp_path / "d", delta_compact_ratio=1.0
        ) as leader:
            list(leader.ingest_many(messages[:200]))
            follower = FollowerSession(tmp_path / "d")
            assert follower.current_quantum == leader.current_quantum
            for lo in range(200, 800, 100):
                list(leader.ingest_many(messages[lo : lo + 100]))
                follower.catch_up()
                assert follower.current_quantum == leader.current_quantum
            assert leader.delta_writer.compactions > 0
            assert follower.generations_seen > 1

    def test_chained_failover(self, tmp_path):
        """The promoted session can itself lead: enable a delta log, die,
        and promote a second follower — still equal to the straight run."""
        config = make_config()
        messages = bursty_stream(27, 900)
        expected_reports, _, whole = uninterrupted_run(config, messages)
        whole.snapshot(tmp_path / "whole.ckpt")

        with open_session(config, delta_log=tmp_path / "d1") as first:
            reports = [
                report_key(r) for r in first.ingest_many(messages[:300])
            ]
        second = FollowerSession(tmp_path / "d1").promote()
        q1 = second.current_quantum
        second.enable_delta_log(tmp_path / "d2")
        reports += [
            report_key(r)
            for r in second.ingest_many(
                messages[(q1 + 1) * config.quantum_size : 600]
            )
        ]
        second.close()
        third = FollowerSession(tmp_path / "d2").promote()
        q2 = third.current_quantum
        reports += [
            report_key(r)
            for r in third.ingest_many(
                messages[(q2 + 1) * config.quantum_size :]
            )
        ]
        assert reports == expected_reports
        third.snapshot(tmp_path / "final.ckpt")
        assert golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "final.ckpt")
        ) == golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "whole.ckpt")
        )
        third.close()

    def test_mid_quantum_death_loses_only_the_pending_buffer(
        self, tmp_path
    ):
        """A leader dying mid-quantum loses exactly its partial pending
        buffer: the follower stands at the last completed quantum, and
        re-feeding from that boundary reproduces the uninterrupted run."""
        config = make_config()
        messages = bursty_stream(29, 900)
        expected_reports, _, _ = uninterrupted_run(config, messages)

        split = 617  # mid-quantum: 617 = 30 * 20 + 17
        with open_session(config, delta_log=tmp_path / "d") as leader:
            reports = [
                report_key(r) for r in leader.ingest_many(messages[:split])
            ]
            assert leader.batcher.pending == 17
        follower = FollowerSession(tmp_path / "d")
        assert follower.current_quantum == 29  # quantum 30 never completed
        session = follower.promote()
        reports += [
            report_key(r)
            for r in session.ingest_many(
                messages[(follower.current_quantum + 1) * 20 :]
            )
        ]
        assert reports == expected_reports
        session.close()


class TestFollowerLifecycle:
    def test_promote_is_one_shot(self, tmp_path):
        config = make_config()
        with open_session(config, delta_log=tmp_path / "d") as leader:
            list(leader.ingest_many(bursty_stream(1, 100)))
        follower = FollowerSession(tmp_path / "d")
        follower.promote().close()
        assert follower.promoted
        with pytest.raises(CheckpointError, match="promoted"):
            follower.promote()
        with pytest.raises(CheckpointError, match="promoted"):
            follower.catch_up()

    def test_follower_snapshot_resumes_like_any_checkpoint(self, tmp_path):
        config = make_config()
        messages = bursty_stream(31, 600)
        expected_reports, _, _ = uninterrupted_run(config, messages)
        with open_session(config, delta_log=tmp_path / "d") as leader:
            reports = [
                report_key(r) for r in leader.ingest_many(messages[:400])
            ]
        follower = FollowerSession(tmp_path / "d")
        follower.snapshot(tmp_path / "standby.ckpt")
        resumed = open_session(resume=tmp_path / "standby.ckpt")
        reports += [
            report_key(r) for r in resumed.ingest_many(messages[400:])
        ]
        assert reports == expected_reports

    def test_missing_directory_is_a_readable_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="MANIFEST"):
            FollowerSession(tmp_path / "nothing")

    def test_needs_path_or_transport(self):
        with pytest.raises(CheckpointError, match="path"):
            FollowerSession()

    def test_wait_for_quantum_times_out_readably(self, tmp_path):
        config = make_config()
        with open_session(config, delta_log=tmp_path / "d") as leader:
            list(leader.ingest_many(bursty_stream(1, 100)))
        follower = FollowerSession(tmp_path / "d")
        with pytest.raises(CheckpointError, match="timed out"):
            follower.wait_for_quantum(
                follower.current_quantum + 1, timeout=0.05, poll=0.01
            )


class TestCrashedLeader:
    def test_sigkilled_leader_leaves_a_loadable_log(self, tmp_path):
        """SIGKILL a real leader process mid-stream; the follower must load
        a consistent quantum boundary and continue to the exact same final
        state as an uninterrupted run over the same seeded stream."""
        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, {src!r})
            sys.path.insert(0, {tests!r})
            from repro.api import open_session
            from test_api_checkpoint import bursty_stream, make_config

            session = open_session(
                make_config(), delta_log={dlog!r}
            )
            messages = bursty_stream(37, 100000)
            print("ready", flush=True)
            for message in messages:
                session.ingest(message)
            """
        ).format(
            src=str(Path("src").resolve()),
            tests=str(Path("tests").resolve()),
            dlog=str(tmp_path / "d"),
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            assert proc.stdout.readline().strip() == b"ready"
            # let it log a few quanta, then kill it without ceremony
            deadline = time.monotonic() + 30
            log_dir = tmp_path / "d"
            while time.monotonic() < deadline:
                logs = list(log_dir.glob("deltas-*.log"))
                if logs and max(p.stat().st_size for p in logs) > 2000:
                    break
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        follower = FollowerSession(tmp_path / "d")
        q = follower.current_quantum
        assert q >= 1  # it logged something before dying

        # reference: uninterrupted run over the same prefix of the stream
        config = make_config()
        messages = bursty_stream(37, (q + 1) * config.quantum_size)
        reference = open_session(config)
        list(reference.ingest_many(messages))
        reference.snapshot(tmp_path / "ref.ckpt")
        promoted = follower.promote()
        promoted.snapshot(tmp_path / "prom.ckpt")
        assert golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "prom.ckpt")
        ) == golden.fingerprint(
            golden.normalized_checkpoint_state(tmp_path / "ref.ckpt")
        )
        promoted.close()
