"""Offline biconnected baseline, snapshot tracking, trending strawman."""

import pytest

from repro.baselines.offline_bc import OfflineBcObserver
from repro.baselines.tracking import SnapshotEventTracker
from repro.baselines.trending import TrendingTopicsBaseline
from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.errors import ConfigError
from repro.stream.messages import Message


def exact_config(**overrides):
    base = dict(
        quantum_size=6,
        window_quanta=4,
        high_state_threshold=2,
        ec_threshold=0.1,
        use_minhash_filter=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


def burst(keywords, users):
    return [Message(f"u{u}", tokens=tuple(keywords)) for u in users]


class TestSnapshotEventTracker:
    def test_identity_by_overlap(self):
        tracker = SnapshotEventTracker()
        tracker.observe_quantum(0, [(frozenset("abc"), 5.0, 10.0, 3)])
        tracker.observe_quantum(1, [(frozenset("abcd"), 6.0, 12.0, 4)])
        events = tracker.all_events()
        assert len(events) == 1
        assert len(events[0].snapshots) == 2

    def test_insufficient_overlap_opens_new_event(self):
        tracker = SnapshotEventTracker(min_overlap=2)
        tracker.observe_quantum(0, [(frozenset("abc"), 5.0, 10.0, 3)])
        tracker.observe_quantum(1, [(frozenset("cxy"), 5.0, 10.0, 3)])
        assert len(tracker) == 2

    def test_death_recorded(self):
        tracker = SnapshotEventTracker()
        tracker.observe_quantum(0, [(frozenset("abc"), 5.0, 10.0, 3)])
        tracker.observe_quantum(1, [])
        assert not tracker.all_events()[0].alive

    def test_greedy_prefers_largest_overlap(self):
        tracker = SnapshotEventTracker()
        tracker.observe_quantum(
            0,
            [
                (frozenset("abcd"), 5.0, 10.0, 4),
                (frozenset("cdxy"), 5.0, 10.0, 4),
            ],
        )
        ids = {
            frozenset(r.snapshots[0].keywords): r.event_id
            for r in tracker.all_events()
        }
        tracker.observe_quantum(1, [(frozenset("abcde"), 6.0, 11.0, 5)])
        survivor = [r for r in tracker.all_events() if r.alive]
        assert len(survivor) == 1
        assert survivor[0].event_id == ids[frozenset("abcd")]

    def test_one_event_per_cluster_per_quantum(self):
        tracker = SnapshotEventTracker()
        tracker.observe_quantum(0, [(frozenset("abc"), 5.0, 10.0, 3)])
        tracker.observe_quantum(
            1,
            [
                (frozenset("abx"), 5.0, 10.0, 3),
                (frozenset("acy"), 5.0, 10.0, 3),
            ],
        )
        # only one of the two split fragments may inherit the identity
        assert len(tracker) == 2


class TestOfflineBcObserver:
    def test_same_graph_same_clusters_simple_case(self):
        """On a single clean triangle, SCP and BC agree exactly."""
        detector = EventDetector(exact_config())
        observer = OfflineBcObserver(detector)
        detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        snapshot = observer.observe_quantum()
        assert len(snapshot.clusters) == 1
        nodes, edges = snapshot.clusters[0]
        assert nodes == {"a1", "b1", "c1"}
        assert len(edges) == 3

    def test_bridge_reported_as_edge_cluster(self):
        """An edge outside every biconnected cluster becomes a size-2
        cluster in the +Edges variant (Section 7.3)."""
        detector = EventDetector(exact_config())
        observer = OfflineBcObserver(detector)
        # one triangle plus one isolated correlated pair
        messages = burst(["a1", "b1", "c1"], range(6)) + burst(
            ["p1", "q1"], range(10, 14)
        )
        detector.process_quantum(messages)
        snapshot = observer.observe_quantum()
        assert len(snapshot.clusters) == 1
        assert len(snapshot.edge_clusters) == 1
        assert snapshot.num_with_edges == 2

    def test_pentagon_is_bc_but_not_scp(self):
        """A 5-cycle is one biconnected cluster yet no SCP cluster — SCP is
        sufficient, not necessary, for biconnectivity (Section 4.3)."""
        detector = EventDetector(exact_config())
        observer = OfflineBcObserver(detector)
        ring = ["r1", "r2", "r3", "r4", "r5"]
        messages = []
        for i, kw in enumerate(ring):
            nxt = ring[(i + 1) % 5]
            messages.extend(
                Message(f"u{i}_{j}", tokens=(kw, nxt)) for j in range(3)
            )
        detector.process_quantum(messages)
        snapshot = observer.observe_quantum()
        assert len(detector.registry) == 0  # SCP finds nothing
        assert any(len(nodes) == 5 for nodes, _ in snapshot.clusters)

    def test_events_tracked_across_quanta(self):
        detector = EventDetector(exact_config())
        observer = OfflineBcObserver(detector)
        for _ in range(3):
            detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
            observer.observe_quantum()
        events = observer.events()
        assert len(events) == 1
        assert len(events[0].snapshots) == 3

    def test_timing_accumulated(self):
        detector = EventDetector(exact_config())
        observer = OfflineBcObserver(detector)
        detector.process_quantum(burst(["a1", "b1", "c1"], range(6)))
        observer.observe_quantum()
        assert observer.total_seconds > 0


class TestTrendingBaseline:
    def test_needs_sustained_volume(self):
        baseline = TrendingTopicsBaseline(
            quantum_size=10,
            window_quanta=10,
            trend_threshold=30,
            sustain_quanta=2,
        )
        messages = [
            Message(f"u{i}", tokens=("storm",)) for i in range(60)
        ]
        topics = baseline.run(messages)
        assert topics, "a sustained flood should eventually trend"
        first = topics[0]
        # it must NOT trend in the first quantum: counts build over time
        assert first.quantum >= 2

    def test_small_burst_never_trends(self):
        baseline = TrendingTopicsBaseline(
            quantum_size=10, trend_threshold=1000
        )
        messages = [Message(f"u{i}", tokens=("blip",)) for i in range(50)]
        assert baseline.run(messages) == []

    def test_keyword_reported_once(self):
        baseline = TrendingTopicsBaseline(
            quantum_size=10, trend_threshold=20, sustain_quanta=1
        )
        messages = [Message(f"u{i}", tokens=("storm",)) for i in range(100)]
        topics = baseline.run(messages)
        assert len([t for t in topics if t.keyword == "storm"]) == 1

    def test_first_trending_message_position(self):
        baseline = TrendingTopicsBaseline(
            quantum_size=10, trend_threshold=20, sustain_quanta=1
        )
        messages = [Message(f"u{i}", tokens=("storm",)) for i in range(100)]
        topics = baseline.run(messages)
        position = baseline.first_trending_message("storm", topics)
        assert position is not None and position >= 20
        assert baseline.first_trending_message("never", topics) is None

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            TrendingTopicsBaseline(trend_threshold=0)
        with pytest.raises(ConfigError):
            TrendingTopicsBaseline(sustain_quanta=0)

    def test_scp_beats_trending_to_detection(self):
        """The motivating claim: the detector reports the event far earlier
        than the popularity-based trending policy."""
        keywords = ("quake", "coast", "alarm")
        messages = []
        for i in range(300):
            messages.append(Message(f"u{i}", tokens=keywords))
        detector = EventDetector(exact_config())
        detection_message = None
        for q, report in enumerate(detector.process_stream(messages)):
            if report.reported and detection_message is None:
                detection_message = (q + 1) * detector.config.quantum_size
        baseline = TrendingTopicsBaseline(
            quantum_size=6, trend_threshold=150, sustain_quanta=3
        )
        topics = baseline.run(messages)
        trending_message = baseline.first_trending_message("quake", topics)
        assert detection_message is not None
        assert trending_message is None or detection_message < trending_message
