"""Message records, quantum batching, and trace I/O."""

import pytest

from repro.errors import StreamError
from repro.stream.messages import Message
from repro.stream.sources import (
    TraceReadStats,
    read_jsonl_trace,
    write_jsonl_trace,
)
from repro.stream.window import (
    QuantumBatcher,
    invert_user_keywords,
    keyword_users_of_quantum,
    user_keywords_of_quantum,
)
from repro.text.tokenize import tokenize


class TestMessage:
    def test_needs_tokens_or_text(self):
        with pytest.raises(StreamError):
            Message(user_id=1)

    def test_pretokenized_fast_path(self):
        message = Message(1, tokens=("a", "b"))
        assert message.keyword_tuple(tokenize) == ("a", "b")

    def test_text_tokenised_on_demand(self):
        message = Message(1, text="Earthquake struck Turkey!")
        assert message.keyword_tuple(tokenize) == (
            "earthquake",
            "struck",
            "turkey",
        )

    def test_frozen(self):
        message = Message(1, tokens=("a",))
        with pytest.raises(AttributeError):
            message.user_id = 2


class TestQuantumBatcher:
    def test_push_emits_full_quantum(self):
        batcher = QuantumBatcher(3)
        m = Message(1, tokens=("a",))
        assert batcher.push(m) is None
        assert batcher.push(m) is None
        batch = batcher.push(m)
        assert batch is not None and len(batch) == 3
        assert batcher.pending == 0

    def test_flush_partial(self):
        batcher = QuantumBatcher(3)
        batcher.push(Message(1, tokens=("a",)))
        assert len(batcher.flush()) == 1
        assert batcher.flush() == []

    def test_batches_yields_trailing_partial(self):
        batcher = QuantumBatcher(4)
        messages = [Message(i, tokens=("a",)) for i in range(10)]
        batches = list(batcher.batches(messages))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_invalid_size(self):
        with pytest.raises(StreamError):
            QuantumBatcher(0)


class TestAggregation:
    MESSAGES = [
        Message("u1", tokens=("storm", "coast")),
        Message("u1", tokens=("storm", "warning")),
        Message("u2", tokens=("storm",)),
    ]

    def test_user_keywords(self):
        result = user_keywords_of_quantum(self.MESSAGES, tokenize)
        assert result == {
            "u1": {"storm", "coast", "warning"},
            "u2": {"storm"},
        }

    def test_keyword_users(self):
        result = keyword_users_of_quantum(self.MESSAGES, tokenize)
        assert result["storm"] == {"u1", "u2"}
        assert result["coast"] == {"u1"}

    def test_inversion_consistent(self):
        by_user = user_keywords_of_quantum(self.MESSAGES, tokenize)
        assert invert_user_keywords(by_user) == keyword_users_of_quantum(
            self.MESSAGES, tokenize
        )

    def test_empty_messages_skipped(self):
        result = user_keywords_of_quantum(
            [Message("u1", tokens=())], tokenize
        )
        assert result == {}


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        messages = [
            Message("u1", tokens=("a", "b"), timestamp=1.5),
            Message("u2", text="hello world message"),
            Message(3, tokens=("c",)),
        ]
        count = write_jsonl_trace(path, messages)
        assert count == 3
        loaded = list(read_jsonl_trace(path))
        assert loaded[0].user_id == "u1"
        assert loaded[0].tokens == ("a", "b")
        assert loaded[0].timestamp == 1.5
        assert loaded[1].text == "hello world message"
        assert loaded[2].user_id == 3

    def test_invalid_json_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(StreamError):
            list(read_jsonl_trace(path, on_malformed="raise"))

    def test_missing_user_raises_in_strict_mode(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"k": ["a"]}\n')
        with pytest.raises(StreamError):
            list(read_jsonl_trace(path, on_malformed="raise"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"u": 1, "k": ["a"]}\n\n{"u": 2, "k": ["b"]}\n')
        assert len(list(read_jsonl_trace(path))) == 2


class TestHardenedJsonlReader:
    """Skip-and-count semantics for malformed lines (production feeds)."""

    def test_malformed_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"u": 1, "k": ["a"]}\n'
            "not json at all\n"
            '{"k": ["orphan"]}\n'
            '{"u": 2, "k": ["b"]}\n'
            "[1, 2, 3]\n"
        )
        stats = TraceReadStats()
        messages = list(read_jsonl_trace(path, stats=stats))
        assert [m.user_id for m in messages] == [1, 2]
        assert stats.lines == 5
        assert stats.messages == 2
        assert stats.malformed == 3
        assert any("invalid JSON" in e for e in stats.errors)
        assert any("missing user id" in e for e in stats.errors)

    def test_truncated_final_line_skipped(self, tmp_path):
        """A crash mid-write leaves a partial JSON object on the last line;
        the reader must deliver everything before it."""
        path = tmp_path / "trace.jsonl"
        path.write_text('{"u": 1, "k": ["a"]}\n{"u": 2, "k": ["b')
        stats = TraceReadStats()
        messages = list(read_jsonl_trace(path, stats=stats))
        assert [m.user_id for m in messages] == [1]
        assert stats.malformed == 1

    def test_unicode_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        originals = [
            Message("üser", tokens=("café", "日本語", "terremoto")),
            Message("u2", text="séisme à Port-au-Prince 地震"),
        ]
        write_jsonl_trace(path, originals)
        loaded = list(read_jsonl_trace(path, on_malformed="raise"))
        assert loaded[0].tokens == ("café", "日本語", "terremoto")
        assert loaded[1].text == "séisme à Port-au-Prince 地震"

    def test_undecodable_bytes_cost_one_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "wb") as fh:
            fh.write(b'{"u": 1, "k": ["a"]}\n')
            fh.write(b'{"u": 9, "k": ["\xff\xfe broken"]}\n')
            fh.write(b'{"u": 2, "k": ["b"]}\n')
        stats = TraceReadStats()
        messages = list(read_jsonl_trace(path, stats=stats))
        assert [m.user_id for m in messages] == [1, 2]
        assert stats.malformed == 1
        assert any("undecodable" in e for e in stats.errors)

    def test_strict_mode_reports_line_number(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"u": 1, "k": ["a"]}\nbroken\n')
        with pytest.raises(StreamError, match=":2:"):
            list(read_jsonl_trace(path, on_malformed="raise"))

    def test_invalid_mode_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(StreamError):
            list(read_jsonl_trace(path, on_malformed="ignore"))

    def test_error_log_capped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("junk\n" * 100)
        stats = TraceReadStats()
        assert list(read_jsonl_trace(path, stats=stats)) == []
        assert stats.malformed == 100
        assert len(stats.errors) <= 20
