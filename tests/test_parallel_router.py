"""Units for the shard router and the worker pool plumbing."""

import pytest

from repro.errors import ConfigError
from repro.parallel.pool import WorkerPool, default_backend, make_pool
from repro.parallel.router import (
    ShardRouter,
    keyword_hash,
    worker_assignments,
)
from repro.parallel.shard_state import ShardParams, ShardState


class TestShardRouter:
    def test_shard_of_is_stable_and_in_range(self):
        router = ShardRouter(4)
        keywords = [f"kw{i}" for i in range(200)]
        shards = [router.shard_of(kw) for kw in keywords]
        assert all(0 <= s < 4 for s in shards)
        assert shards == [router.shard_of(kw) for kw in keywords]
        # all shards get some traffic at this scale
        assert set(shards) == {0, 1, 2, 3}

    def test_ranges_are_contiguous_and_cover_the_hash_space(self):
        router = ShardRouter(3)
        ranges = [router.range_of(s) for s in range(3)]
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 1 << 64
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        for kw in ("alpha", "beta", "gamma", "delta"):
            shard = router.shard_of(kw)
            lo, hi = router.range_of(shard)
            assert lo <= keyword_hash(kw) < hi

    def test_partition_is_exact(self):
        router = ShardRouter(3)
        mapping = {f"kw{i}": {i} for i in range(50)}
        slices = router.partition(mapping)
        assert sum(len(s) for s in slices) == 50
        for shard, piece in enumerate(slices):
            for kw in piece:
                assert router.shard_of(kw) == shard

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert all(router.shard_of(f"k{i}") == 0 for i in range(20))

    def test_invalid_counts(self):
        with pytest.raises(ConfigError):
            ShardRouter(0)
        with pytest.raises(ConfigError):
            worker_assignments(4, 0)


class TestWorkerAssignments:
    def test_contiguous_cover(self):
        for shards, workers in [(4, 4), (8, 3), (5, 2), (3, 7)]:
            assignment = worker_assignments(shards, workers)
            flat = [s for run in assignment for s in run]
            assert flat == list(range(shards))
            for run in assignment:
                assert run == list(range(run[0], run[0] + len(run))) if run else True


PARAMS = ShardParams(
    window_quanta=3, minhash_size=2, seed=7, theta=2, use_minhash=True
)


class TestPool:
    def test_default_backend_selection(self):
        assert default_backend(1) == "serial"
        assert default_backend(4) in ("process", "thread")

    def test_worker_count_clamped_to_shards(self):
        pool = make_pool(2, 8, PARAMS, backend="serial")
        assert pool.workers == 2
        pool.close()

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_ingest_and_state_round_trip(self, backend):
        pool = make_pool(3, 2, PARAMS, backend=backend)
        try:
            slices = [
                {"a": {1, 2}},
                {"b": {2, 3}},
                {"c": {3, 4}},
            ]
            updates = pool.ingest(0, slices)
            assert [u.shard for u in updates] == [0, 1, 2]
            assert updates[0].bursty == frozenset({"a"})
            answers = pool.exchange([(0, [], ["a"]), (1, [("b", "b")], [])])
            assert [a[0] for a in answers] == [0, 1]
            assert answers[0][2]["a"] == frozenset({1, 2})
            assert answers[1][1][("b", "b")] == 1.0  # intra-shard exact EC
            states = pool.export_states()
            assert [s[0] for s in states] == [0, 1, 2]
            # round-trip into a fresh pool (different backend shape)
            other = make_pool(3, 1, PARAMS, backend="serial")
            other.load_states(states)
            assert other.export_states() == states
            other.close()
        finally:
            pool.close()

    def test_empty_slices_still_slide_the_window(self):
        pool = make_pool(2, 1, PARAMS, backend="serial")
        try:
            pool.ingest(0, [{"a": {1, 2}}, {}])
            for quantum in range(1, 4):
                updates = pool.ingest(quantum, [{}, {}])
            # quantum 3 slides quantum 0 out: "a" must report emptied
            emptied = set()
            for update in updates:
                emptied |= update.emptied
            assert emptied == {"a"}
        finally:
            pool.close()

    def test_shard_state_ingest_matches_serial_index(self):
        from repro.akg.idsets import IdSetIndex

        state = ShardState(0, PARAMS)
        serial = IdSetIndex(PARAMS.window_quanta)
        for quantum, content in enumerate(
            [{"a": {1, 2}, "b": {2}}, {"a": {3}}, {}, {"b": {4, 5}}]
        ):
            state.ingest(quantum, content)
            serial.add_quantum(quantum, content)
        assert state.idsets.to_state() == serial.to_state()
