"""Stateful model check of the delta-aware burstiness automaton.

The production :class:`~repro.akg.burstiness.BurstinessTracker` is advanced
only for keywords *touched* in a quantum and answers every state query in
closed form from the last recorded burst.  The model here is the automaton
the paper actually describes, stepped explicitly: **every** keyword is
advanced **every** quantum, keeping a literal low/high state and an age
counter.  The machine feeds the tracker only the touched subset while
stepping the model over the full vocabulary, then asserts all queries agree
— proving the closed-form catch-up equals the step-by-step automaton.
Extends the model-check pattern of ``tests/test_akg_idsets_stateful.py``.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.akg.burstiness import BurstinessTracker

KEYWORDS = ["alpha", "beta", "gamma", "delta"]
THETA = 2
GRACES = [0, 1, 2, 3]


class _SteppedAutomaton:
    """Reference implementation: per-keyword state advanced one quantum at a
    time, for the whole vocabulary, with explicit counters."""

    def __init__(self):
        self.last_bursty = {}
        self.bursts = {}
        self.age = {}  # quanta since last burst, stepped explicitly

    def step(self, quantum, counts):
        for kw in KEYWORDS:
            if counts.get(kw, 0) >= THETA:
                self.last_bursty[kw] = quantum
                self.bursts[kw] = self.bursts.get(kw, 0) + 1
                self.age[kw] = 0
            elif kw in self.age:
                self.age[kw] += 1

    def forget(self, kw):
        self.last_bursty.pop(kw, None)
        self.bursts.pop(kw, None)
        self.age.pop(kw, None)


class BurstinessModelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tracker = BurstinessTracker(theta=THETA)
        self.model = _SteppedAutomaton()
        self.quantum = -1

    @rule(
        counts=st.dictionaries(
            st.sampled_from(KEYWORDS),
            st.integers(0, 2 * THETA),
            max_size=len(KEYWORDS),
        )
    )
    def observe_quantum(self, counts):
        self.quantum += 1
        self.model.step(self.quantum, counts)
        # The tracker sees only the touched keywords — the delta contract.
        touched = {kw: c for kw, c in counts.items() if c > 0}
        bursty = self.tracker.observe_quantum(self.quantum, touched)
        assert bursty == {
            kw for kw, c in counts.items() if c >= THETA
        }

    @rule(kw=st.sampled_from(KEYWORDS))
    def forget(self, kw):
        self.tracker.forget([kw])
        self.model.forget(kw)

    @invariant()
    def closed_form_matches_stepped_automaton(self):
        if self.quantum < 0:
            return
        for kw in KEYWORDS:
            expected_last = self.model.last_bursty.get(kw)
            assert self.tracker.last_bursty_quantum(kw) == expected_last
            assert self.tracker.burst_count(kw) == self.model.bursts.get(kw, 0)
            assert self.tracker.is_bursty_now(kw) == (
                expected_last == self.quantum
            )
            assert self.tracker.is_bursty_at(kw, self.quantum) == (
                expected_last == self.quantum
            )
            expected_age = self.model.age.get(kw)
            assert self.tracker.quanta_since_bursty(kw) == expected_age
            for grace in GRACES:
                # Closed form vs the explicitly stepped age counter.
                stepped = expected_age is None or expected_age > grace
                assert (
                    self.tracker.aged_out(kw, self.quantum, grace) == stepped
                ), (
                    f"aged_out({kw!r}, q={self.quantum}, grace={grace}) "
                    f"disagrees with the stepped automaton (age={expected_age})"
                )
            deadline = self.tracker.first_droppable_quantum(kw, GRACES[-1])
            if expected_last is not None:
                assert deadline == expected_last + GRACES[-1] + 1
                # The schedule is tight: not droppable before, droppable at.
                assert not self.tracker.aged_out(kw, deadline - 1, GRACES[-1])
                assert self.tracker.aged_out(kw, deadline, GRACES[-1])
            else:
                assert deadline is None


BurstinessModelMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestBurstinessModel = BurstinessModelMachine.TestCase
