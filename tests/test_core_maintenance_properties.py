"""Property-based verification of Theorem 3 (uniqueness / consistency).

A hypothesis state machine performs arbitrary interleavings of node/edge
additions and deletions and asserts after every step that the incremental
registry equals the from-scratch global decomposition and that all internal
indexes are consistent.  This is the strongest correctness evidence in the
suite: any divergence between the local Section 5 algorithms and the global
model would be found here.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.atoms import satisfies_scp
from repro.core.maintenance import ClusterMaintainer
from repro.graph.biconnected import is_biconnected

NODE_POOL = list(range(12))


class MaintenanceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.maintainer = ClusterMaintainer()

    # ------------------------------------------------------------- helpers

    @property
    def graph(self):
        return self.maintainer.graph

    def absent_nodes(self):
        return [n for n in NODE_POOL if not self.graph.has_node(n)]

    def present_nodes(self):
        return [n for n in NODE_POOL if self.graph.has_node(n)]

    def missing_edges(self):
        nodes = self.present_nodes()
        return [
            (u, v)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if not self.graph.has_edge(u, v)
        ]

    def present_edges(self):
        return [(u, v) for u, v, _ in self.graph.edges()]

    # --------------------------------------------------------------- rules

    @rule(index=st.integers(0, len(NODE_POOL) - 1))
    def add_node(self, index):
        node = NODE_POOL[index]
        if not self.graph.has_node(node):
            self.maintainer.add_node(node)

    @precondition(lambda self: self.missing_edges())
    @rule(data=st.data())
    def add_edge(self, data):
        u, v = data.draw(st.sampled_from(self.missing_edges()))
        self.maintainer.add_edge(u, v)

    @precondition(lambda self: self.present_edges())
    @rule(data=st.data())
    def remove_edge(self, data):
        u, v = data.draw(st.sampled_from(self.present_edges()))
        self.maintainer.remove_edge(u, v)

    @precondition(lambda self: self.present_nodes())
    @rule(data=st.data())
    def remove_node(self, data):
        node = data.draw(st.sampled_from(self.present_nodes()))
        self.maintainer.remove_node(node)

    @precondition(lambda self: len(self.absent_nodes()) > 0)
    @rule(data=st.data(), k=st.integers(0, 4))
    def add_node_with_edges(self, data, k):
        node = data.draw(st.sampled_from(self.absent_nodes()))
        others = self.present_nodes()
        if others:
            chosen = data.draw(
                st.lists(st.sampled_from(others), max_size=k, unique=True)
            )
        else:
            chosen = []
        self.maintainer.add_node_with_edges(node, {o: 1.0 for o in chosen})

    # ---------------------------------------------------------- invariants

    @invariant()
    def matches_global_oracle(self):
        self.maintainer.check_against_oracle()

    @invariant()
    def registry_indexes_consistent(self):
        self.maintainer.registry.check_integrity()

    @invariant()
    def clusters_satisfy_scp_and_biconnectivity(self):
        """P1 and P2 of Section 4.3 for every live cluster."""
        for cluster in self.maintainer.registry:
            adjacency = cluster.adjacency()
            assert satisfies_scp(adjacency, cluster.edges), (
                f"cluster {cluster.cluster_id} violates SCP"
            )
            assert is_biconnected(adjacency), (
                f"cluster {cluster.cluster_id} not biconnected"
            )


MaintenanceMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestMaintenanceMachine = MaintenanceMachine.TestCase
