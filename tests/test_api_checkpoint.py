"""Checkpoint/restore: codec round trips and the resume differential.

The headline guarantee (DESIGN.md Section 6): a session resumed from a
mid-stream snapshot emits *bit-identical* ``QuantumReport``s, sink
notifications and event histories to a session that never stopped.  The
differential harness below checks that across the three stream regimes of
the AKG property tests — bursty, uniform, and adversarial window-boundary
re-entry — with snapshot points deliberately not aligned to quantum
boundaries so the buffered partial quantum is exercised too.
"""

import json
import random
from pathlib import Path

import pytest

from repro.api import (
    CHECKPOINT_VERSION,
    QueueSink,
    decode_state,
    encode_state,
    open_session,
)
from repro.api.checkpoint import CHECKPOINT_FORMAT
from repro.config import DetectorConfig
from repro.errors import CheckpointError
from repro.stream.messages import Message


def make_config(**overrides):
    base = dict(
        quantum_size=20,
        window_quanta=3,
        high_state_threshold=3,
        ec_threshold=0.2,
        node_grace_quanta=1,
        require_noun=False,
    )
    base.update(overrides)
    return DetectorConfig(**base)


# ----------------------------------------------------------- stream regimes


def bursty_stream(seed, n):
    """Few keywords, heavy user overlap: dense graphs, merge/split churn."""
    rng = random.Random(seed)
    keywords = [f"k{i}" for i in range(6)]
    return [
        Message(
            f"u{rng.randrange(20)}",
            tokens=tuple(rng.sample(keywords, rng.randint(2, 4))),
        )
        for _ in range(n)
    ]


def uniform_stream(seed, n):
    """Wide shallow vocabulary: staleness expiry and lazy drops dominate."""
    rng = random.Random(seed)
    keywords = [f"w{i}" for i in range(40)]
    return [
        Message(
            f"u{rng.randrange(60)}",
            tokens=tuple(rng.sample(keywords, rng.randint(1, 3))),
        )
        for _ in range(n)
    ]


def reentry_stream(seed, n, config):
    """Keyword groups fall silent for exactly the window length and re-enter
    in the quantum their last entries expire — the boundary where stale
    window state would surface after a restore."""
    rng = random.Random(seed)
    group_a = [f"a{i}" for i in range(4)]
    group_b = [f"b{i}" for i in range(4)]
    period = config.quantum_size * config.window_quanta
    out = []
    for i in range(n):
        group = group_a if (i // period) % 2 == 0 else group_b
        out.append(
            Message(
                f"u{rng.randrange(15)}",
                tokens=tuple(rng.sample(group, rng.randint(2, 3))),
            )
        )
    return out


REGIMES = ["bursty", "uniform", "reentry"]


def regime_stream(regime, seed, n, config):
    if regime == "bursty":
        return bursty_stream(seed, n)
    if regime == "uniform":
        return uniform_stream(seed, n)
    return reentry_stream(seed, n, config)


# ------------------------------------------------------------- comparators


def report_key(report):
    return (
        report.quantum,
        report.messages_processed,
        [
            (e.event_id, e.keywords, e.rank, e.support, e.size,
             e.num_edges, e.born_quantum)
            for e in report.reported
        ],
        [
            (e.event_id, e.keywords, e.rank, e.support)
            for e in report.suppressed
        ],
        report.new_event_ids,
        report.dead_event_ids,
        report.changes,
        report.dirty_clusters,
        report.ranked_clusters,
    )


def notification_key(event):
    return (
        event.kind,
        event.quantum,
        event.event_id,
        event.keywords,
        event.rank,
        event.size,
        event.previous_rank,
        event.previous_size,
    )


def history_key(record):
    return (
        record.event_id,
        record.born_quantum,
        record.died_quantum,
        record.absorbed_into,
        [
            (s.quantum, s.keywords, s.rank, s.support, s.num_edges)
            for s in record.snapshots
        ],
    )


def run_with_restart(config, messages, split, tmp_path, **session_kwargs):
    """(reports, notifications, final session) with a snapshot at ``split``."""
    path = tmp_path / "mid.ckpt"
    first = open_session(config, **session_kwargs)
    sink1 = QueueSink()
    first.subscribe(sink1)
    reports = [report_key(r) for r in first.ingest_many(messages[:split])]
    notes = [notification_key(e) for e in sink1.drain()]
    first.snapshot(path)
    resumed = open_session(resume=path)
    sink2 = QueueSink()
    resumed.subscribe(sink2)
    reports += [report_key(r) for r in resumed.ingest_many(messages[split:])]
    notes += [notification_key(e) for e in sink2.drain()]
    return reports, notes, resumed


class TestResumeDifferential:
    """snapshot → restore → continue == uninterrupted, bit for bit."""

    @pytest.mark.parametrize("regime", REGIMES)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_resumed_run_is_bit_identical(self, regime, seed, tmp_path):
        config = make_config()
        messages = regime_stream(regime, seed, 900, config)
        # split mid-quantum on purpose: the buffered partial quantum must
        # survive the checkpoint
        split = 437
        assert split % config.quantum_size != 0

        whole = open_session(config)
        sink = QueueSink()
        whole.subscribe(sink)
        expected_reports = [report_key(r) for r in whole.ingest_many(messages)]
        expected_notes = [notification_key(e) for e in sink.drain()]

        reports, notes, resumed = run_with_restart(
            config, messages, split, tmp_path
        )
        assert reports == expected_reports
        assert notes == expected_notes
        assert [history_key(r) for r in resumed.events()] == [
            history_key(r) for r in whole.events()
        ]
        assert resumed.total_messages == whole.total_messages

    def test_double_restart(self, tmp_path):
        """Checkpointing composes: stop/resume twice along one stream."""
        config = make_config()
        messages = bursty_stream(5, 900)
        whole = open_session(config)
        expected = [report_key(r) for r in whole.ingest_many(messages)]

        actual = []
        session = open_session(config)
        for lo, hi in ((0, 301), (301, 650), (650, 900)):
            actual += [
                report_key(r) for r in session.ingest_many(messages[lo:hi])
            ]
            if hi < len(messages):
                path = tmp_path / f"ck{hi}.ckpt"
                session.snapshot(path)
                session = open_session(resume=path)
        assert actual == expected

    def test_oracle_modes_are_checkpointable(self, tmp_path):
        config = make_config()
        messages = bursty_stream(9, 600)
        for kwargs in ({"oracle_ranking": True}, {"oracle_akg": True}):
            whole = open_session(config, **kwargs)
            expected = [report_key(r) for r in whole.ingest_many(messages)]
            reports, _, _ = run_with_restart(
                config, messages, 333, tmp_path, **kwargs
            )
            assert reports == expected

    def test_restored_invariants_hold(self, tmp_path):
        """The restored world passes the same oracle checks as a live one."""
        config = make_config()
        messages = bursty_stream(13, 700)
        session = open_session(config)
        list(session.ingest_many(messages[:500]))
        path = tmp_path / "inv.ckpt"
        session.snapshot(path)
        resumed = open_session(resume=path)
        resumed.registry.check_integrity()
        resumed.maintainer.check_against_oracle()
        resumed.ranker.verify_against_oracle()
        list(resumed.ingest_many(messages[500:]))
        resumed.maintainer.check_against_oracle()
        resumed.ranker.verify_against_oracle()

    def test_ckg_stats_survive_restore(self, tmp_path):
        config = make_config(track_ckg_stats=True)
        messages = uniform_stream(17, 600)
        whole = open_session(config)
        expected = [
            (r.quantum, r.ckg_nodes, r.ckg_edges)
            for r in whole.ingest_many(messages)
        ]
        path = tmp_path / "ckg.ckpt"
        session = open_session(config)
        actual = [
            (r.quantum, r.ckg_nodes, r.ckg_edges)
            for r in session.ingest_many(messages[:250])
        ]
        session.snapshot(path)
        resumed = open_session(resume=path)
        actual += [
            (r.quantum, r.ckg_nodes, r.ckg_edges)
            for r in resumed.ingest_many(messages[250:])
        ]
        assert actual == expected


class TestCheckpointFile:
    def test_config_round_trips_through_checkpoint(self, tmp_path):
        config = make_config(quantum_size=33, ec_threshold=0.17, seed=99)
        session = open_session(config)
        path = tmp_path / "cfg.ckpt"
        session.snapshot(path)
        assert open_session(resume=path).config == config

    def test_snapshot_before_first_quantum(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        open_session(make_config()).snapshot(path)
        resumed = open_session(resume=path)
        assert resumed.current_quantum == -1
        assert resumed.total_messages == 0

    def test_snapshot_write_is_atomic(self, tmp_path):
        """A failed snapshot must never clobber the previous checkpoint."""
        path = tmp_path / "atomic.ckpt"
        session = open_session(make_config())
        list(session.ingest_many(bursty_stream(1, 200)))
        session.snapshot(path)
        good = path.read_bytes()
        bad = open_session(make_config())
        bad.tracker._records = {0: object()}  # unserializable state
        with pytest.raises(Exception):
            bad.snapshot(path)
        assert path.read_bytes() == good
        assert not (tmp_path / "atomic.ckpt.tmp").exists()

    def test_custom_tagger_mismatch_rejected(self, tmp_path):
        from repro.text.pos import NounTagger

        tagger = NounTagger({"quake": "noun"})
        session = open_session(make_config(), noun_tagger=tagger)
        path = tmp_path / "tagger.ckpt"
        session.snapshot(path)
        with pytest.raises(CheckpointError, match="noun_tagger"):
            open_session(resume=path)
        resumed = open_session(resume=path, noun_tagger=tagger)
        assert resumed.noun_tagger is tagger
        # and the inverse direction: default recorded, custom offered
        plain = open_session(make_config())
        plain.snapshot(path)
        with pytest.raises(CheckpointError, match="noun_tagger"):
            open_session(resume=path, noun_tagger=tagger)

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(CheckpointError):
            open_session(resume=path)

    def test_rejects_newer_version(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text(
            json.dumps(
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": CHECKPOINT_VERSION + 1,
                    "state": None,
                }
            )
        )
        with pytest.raises(CheckpointError, match="version"):
            open_session(resume=path)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_text("not json")
        with pytest.raises(CheckpointError):
            open_session(resume=path)
        with pytest.raises(CheckpointError):
            open_session(resume=tmp_path / "missing.ckpt")

    def test_unknown_config_field_rejected(self, tmp_path):
        """A checkpoint from a build with extra config knobs fails loudly."""
        session = open_session(make_config())
        path = tmp_path / "cfg2.ckpt"
        session.snapshot(path)
        document = json.loads(path.read_text())
        state = decode_state(document["state"])
        state["config"]["hyperdrive"] = True
        document["state"] = encode_state(state)
        path.write_text(json.dumps(document))
        with pytest.raises(Exception, match="hyperdrive"):
            open_session(resume=path)


class TestVersionMigration:
    """Older checkpoints load through the migration table (v2 → v3); truly
    unknown versions fail with an error naming what *is* readable.

    ``tests/data/checkpoint_v2.ckpt`` was written by the pre-extractor
    tree (PR 4 head) at message 250 of a seed-pinned stream, mid-quantum;
    the continuation fingerprint below is what that same tree produced for
    messages 250..300 — the migrated resume must reproduce it bit for bit.
    """

    V2_ASSET = Path(__file__).parent / "data" / "checkpoint_v2.ckpt"
    CONTINUATION = (
        "9764eedd3c2267c7348051c7f2e08deca80f364eb43daa5f576646b0cfcd6664"
    )

    def stream(self):
        from golden import bursty_stream

        return [Message(u, tokens=t) for u, t in bursty_stream(5, 300)]

    def test_v2_asset_is_version_2(self):
        document = json.loads(self.V2_ASSET.read_text())
        assert document["version"] == 2
        assert CHECKPOINT_VERSION == 3

    def test_migrated_state_has_extractor_identity(self):
        from repro.api.checkpoint import load_checkpoint

        state = load_checkpoint(self.V2_ASSET)
        assert state["extractor"] == {"name": "keyword", "options": {}}
        assert state["custom_extractor"] is False
        assert "custom_tokenizer" not in state
        assert "extract" in state["timings"]
        assert "tokenize" not in state["timings"]

    def test_v2_resume_continues_bit_identically(self):
        from golden import fingerprint, note_record, report_record

        messages = self.stream()
        session = open_session(resume=self.V2_ASSET)
        assert session.extractor.name == "keyword"
        inbox = QueueSink()
        session.subscribe(inbox)
        reports = [r for m in messages[250:] if (r := session.ingest(m))]
        structure = {
            "reports": [report_record(r) for r in reports],
            "notes": [note_record(e) for e in inbox.drain()],
        }
        assert fingerprint(structure) == self.CONTINUATION

    def test_v2_resume_snapshots_as_v3(self, tmp_path):
        session = open_session(resume=self.V2_ASSET)
        path = tmp_path / "upgraded.ckpt"
        session.snapshot(path)
        document = json.loads(path.read_text())
        assert document["version"] == CHECKPOINT_VERSION
        # and the upgraded checkpoint resumes normally (250 messages =
        # 12 complete quanta of 20 -> 0-based index 11, 10 buffered)
        resumed = open_session(resume=path)
        assert resumed.current_quantum == 11
        assert resumed.batcher.pending == 10

    def test_unmigratable_version_names_the_readable_set(self, tmp_path):
        path = tmp_path / "v1.ckpt"
        path.write_text(
            json.dumps(
                {"format": CHECKPOINT_FORMAT, "version": 1, "state": None}
            )
        )
        with pytest.raises(CheckpointError, match="migrate versions 2"):
            open_session(resume=path)


class TestStateCodec:
    CASES = [
        None,
        True,
        0,
        -17,
        3.141592653589793,
        "keyword",
        "",
        [1, "two", None],
        (1, 2),
        {"a": 1, 2: "b", (3, 4): [5]},
        {1, 2, 3},
        frozenset({"x", "y"}),
        {"nested": [{"deep": ({"set": frozenset({(1, 2)})},)}]},
        {},
        [],
        (),
    ]

    @pytest.mark.parametrize("value", CASES, ids=repr)
    def test_round_trip(self, value):
        encoded = encode_state(value)
        json.dumps(encoded)  # must be JSON-serializable as-is
        decoded = decode_state(encoded)
        assert decoded == value
        assert type(decoded) is type(value)

    def test_float_exactness(self):
        values = [0.1 + 0.2, 1e-300, 61.94370613618281]
        decoded = decode_state(json.loads(json.dumps(encode_state(values))))
        for original, restored in zip(values, decoded):
            assert original == restored
            assert original.hex() == restored.hex()

    def test_unencodable_type_rejected(self):
        with pytest.raises(CheckpointError):
            encode_state(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(CheckpointError):
            decode_state({"t": "lambda", "v": []})
        with pytest.raises(CheckpointError):
            decode_state([1, 2])  # raw JSON array is never valid state
