"""Extension features: synonym pre-processing and event post-correlation
(the Section 1.1 discussion the paper leaves as future work)."""

import pytest

from repro.config import DetectorConfig
from repro.core.engine import EventDetector
from repro.core.events import EventRecord, EventSnapshot
from repro.core.postprocess import (
    CorrelatedEventGroup,
    CorrelationPolicy,
    correlate_events,
)
from repro.errors import ConfigError
from repro.stream.messages import Message
from repro.text.synonyms import SynonymNormalizer
from repro.text.tokenize import tokenize


class TestSynonymNormalizer:
    def test_canonicalisation(self):
        norm = SynonymNormalizer([["earthquake", "quake", "tremor"]])
        assert norm.canonical("quake") == "earthquake"
        assert norm.canonical("tremor") == "earthquake"
        assert norm.canonical("earthquake") == "earthquake"
        assert norm.canonical("unrelated") == "unrelated"

    def test_normalize_deduplicates(self):
        norm = SynonymNormalizer([["quake", "tremor"]])
        assert norm.normalize(["tremor", "hits", "quake"]) == ["quake", "hits"]

    def test_case_insensitive_groups(self):
        norm = SynonymNormalizer([["Quake", "TREMOR"]])
        assert norm.canonical("tremor") == "quake"

    def test_group_merging(self):
        norm = SynonymNormalizer()
        norm.add_group(["a", "b"])
        norm.add_group(["c", "d"])
        norm.add_group(["b", "c"])  # bridges the two groups
        assert len({norm.canonical(w) for w in "abcd"}) == 1

    def test_single_word_group_rejected(self):
        with pytest.raises(ConfigError):
            SynonymNormalizer([["alone"]])

    def test_wrapped_tokenizer(self):
        norm = SynonymNormalizer([["earthquake", "quake"]])
        wrapped = norm.wrap_tokenizer(tokenize)
        assert wrapped("The quake struck!") == ["earthquake", "struck"]

    def test_detector_merges_synonym_streams(self):
        """Users describing the same event with synonymous words end up in
        ONE cluster once the normaliser runs — without it, two clusters."""
        config = DetectorConfig(
            quantum_size=8,
            window_quanta=4,
            high_state_threshold=2,
            ec_threshold=0.1,
            use_minhash_filter=False,
        )
        messages = []
        for u in range(4):
            messages.append(Message(f"a{u}", text="earthquake struck turkey"))
        for u in range(4):
            messages.append(Message(f"b{u}", text="quake struck turkey"))

        plain = EventDetector(config)
        report = plain.process_quantum(messages)
        plain_keywords = set().union(*(e.keywords for e in report.reported))
        assert {"earthquake", "quake"} <= plain_keywords  # two distinct nodes

        norm = SynonymNormalizer([["earthquake", "quake"]])
        merged = EventDetector(config, tokenizer=norm.wrap_tokenizer(tokenize))
        report = merged.process_quantum(messages)
        assert len(report.reported) == 1
        assert "quake" not in report.reported[0].keywords
        assert "earthquake" in report.reported[0].keywords
        # the merged node carries the union of both user groups
        assert report.reported[0].support >= 8 + 8 + 8  # 3 keywords x 8 users


def record(event_id, start_q, end_q, keywords, rank=10.0, born=None):
    rec = EventRecord(event_id, born if born is not None else start_q)
    for q in range(start_q, end_q + 1):
        rec.snapshots.append(
            EventSnapshot(q, frozenset(keywords), rank, 20.0, 3)
        )
    return rec


class TestCorrelateEvents:
    def test_concurrent_overlapping_events_grouped(self):
        a = record(1, 0, 10, ["quake", "turkey", "struck"])
        b = record(2, 2, 9, ["turkey", "rescue", "teams"])
        groups = correlate_events([a, b])
        assert len(groups) == 1
        assert set(groups[0].event_ids) == {1, 2}
        assert "rescue" in groups[0].keywords and "quake" in groups[0].keywords

    def test_disjoint_keywords_not_grouped(self):
        a = record(1, 0, 10, ["quake", "turkey"])
        b = record(2, 0, 10, ["concert", "tickets"])
        groups = correlate_events([a, b])
        assert len(groups) == 2

    def test_temporally_disjoint_not_grouped(self):
        a = record(1, 0, 4, ["quake", "turkey"])
        b = record(2, 30, 34, ["turkey", "holiday"], born=30)
        groups = correlate_events([a, b])
        assert len(groups) == 2

    def test_birth_gap_limit(self):
        policy = CorrelationPolicy(max_birth_gap_quanta=3)
        a = record(1, 0, 30, ["quake", "turkey"])
        b = record(2, 20, 30, ["turkey", "aid"], born=20)
        assert len(correlate_events([a, b], policy)) == 2
        policy = CorrelationPolicy(max_birth_gap_quanta=30)
        assert len(correlate_events([a, b], policy)) == 1

    def test_transitive_grouping(self):
        a = record(1, 0, 10, ["quake", "turkey"])
        b = record(2, 1, 10, ["turkey", "rescue"])
        c = record(3, 1, 11, ["rescue", "teams"])
        groups = correlate_events([a, b, c])
        assert len(groups) == 1
        assert set(groups[0].event_ids) == {1, 2, 3}

    def test_groups_ordered_by_peak_rank(self):
        a = record(1, 0, 5, ["alpha", "beta"], rank=5.0)
        b = record(2, 0, 5, ["gamma", "delta"], rank=50.0)
        groups = correlate_events([a, b])
        assert groups[0].event_ids == [2]

    def test_group_metadata(self):
        a = record(1, 2, 5, ["quake", "turkey"], rank=8.0, born=2)
        b = record(2, 3, 6, ["turkey", "aid"], rank=12.0, born=3)
        group = correlate_events([a, b])[0]
        assert group.peak_rank == 12.0
        assert group.born_quantum == 2

    def test_empty_records_skipped(self):
        empty = EventRecord(9, 0)
        assert correlate_events([empty]) == []
