"""Deterministic graph generators used by tests and benchmarks."""

import pytest

from repro.errors import ConfigError
from repro.graph.generators import (
    complete_clique,
    cycle_graph,
    glued_cycles,
    gnp_random_graph,
    random_mqc,
    two_triangles_bowtie,
)
from repro.graph.quasi_clique import is_majority_quasi_clique


class TestGnp:
    def test_deterministic(self):
        g1 = gnp_random_graph(20, 0.3, seed=5)
        g2 = gnp_random_graph(20, 0.3, seed=5)
        assert set(g1.edge_keys()) == set(g2.edge_keys())

    def test_seed_variation(self):
        g1 = gnp_random_graph(20, 0.3, seed=5)
        g2 = gnp_random_graph(20, 0.3, seed=6)
        assert set(g1.edge_keys()) != set(g2.edge_keys())

    def test_extremes(self):
        assert gnp_random_graph(10, 0.0).num_edges == 0
        assert gnp_random_graph(10, 1.0).num_edges == 45
        assert gnp_random_graph(0, 0.5).num_nodes == 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            gnp_random_graph(-1, 0.5)
        with pytest.raises(ConfigError):
            gnp_random_graph(5, 1.5)


class TestFixedShapes:
    def test_complete_clique(self):
        graph = complete_clique(6)
        assert graph.num_edges == 15
        assert all(graph.degree(n) == 5 for n in graph.nodes())

    def test_cycle(self):
        graph = cycle_graph(7)
        assert graph.num_edges == 7
        assert all(graph.degree(n) == 2 for n in graph.nodes())
        with pytest.raises(ConfigError):
            cycle_graph(2)

    def test_bowtie(self):
        graph = two_triangles_bowtie()
        assert graph.num_nodes == 5
        assert graph.degree(2) == 4


class TestRandomMqc:
    @pytest.mark.parametrize("n", [4, 5, 7, 9])
    def test_strict_majority_degrees(self, n):
        graph = random_mqc(n, seed=3, strict=True)
        for node in graph.nodes():
            assert graph.degree(node) > (n - 1) / 2

    def test_non_strict_still_mqc(self):
        graph = random_mqc(8, seed=3, strict=False)
        assert is_majority_quasi_clique(graph)

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            random_mqc(1)


class TestGluedCycles:
    def test_consecutive_cycles_share_an_edge(self):
        graph, cycles = glued_cycles([4, 3, 4], seed=2)
        for first, second in zip(cycles, cycles[1:]):
            shared = set(first) & set(second)
            assert len(shared) == 2  # glued along one edge = two nodes
            a, b = shared
            assert graph.has_edge(a, b)

    def test_each_cycle_closed(self):
        graph, cycles = glued_cycles([3, 4], seed=1)
        for nodes in cycles:
            for i, node in enumerate(nodes):
                assert graph.has_edge(node, nodes[(i + 1) % len(nodes)])

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            glued_cycles([3, 2])
