"""Event lifecycle tracking across quanta.

An *event* is the temporal identity of an SCP cluster: it is born when the
cluster first appears, evolves as keywords join and leave (Section 4.2's
motivating examples), survives merges (the surviving cluster id carries on)
and dies when its cluster dissolves or is absorbed.

The tracker also implements the paper's post-hoc spurious-event analysis
(Section 7.2.2): real events have a build-up and wind-down phase, so their
clusters evolve and their rank varies non-monotonically; spurious events
burst once and then decay monotonically without evolving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.changelog import ChangeBatch, ChangeEvent, ClusterMerged
from repro.core.clusters import Cluster


@dataclass
class EventSnapshot:
    """State of one event at the end of one quantum."""

    quantum: int
    keywords: FrozenSet[str]
    rank: float
    support: float
    num_edges: int


@dataclass
class EventRecord:
    """Full history of one event (one cluster identity)."""

    event_id: int
    born_quantum: int
    snapshots: List[EventSnapshot] = field(default_factory=list)
    died_quantum: Optional[int] = None
    absorbed_into: Optional[int] = None

    @property
    def alive(self) -> bool:
        return self.died_quantum is None

    @property
    def last_snapshot(self) -> EventSnapshot:
        return self.snapshots[-1]

    @property
    def current_keywords(self) -> FrozenSet[str]:
        return self.snapshots[-1].keywords if self.snapshots else frozenset()

    @property
    def all_keywords(self) -> FrozenSet[str]:
        """Union of every keyword the event ever contained."""
        out: set = set()
        for snap in self.snapshots:
            out |= snap.keywords
        return frozenset(out)

    @property
    def peak_rank(self) -> float:
        return max((s.rank for s in self.snapshots), default=0.0)

    @property
    def lifetime_quanta(self) -> int:
        if not self.snapshots:
            return 0
        return self.snapshots[-1].quantum - self.snapshots[0].quantum + 1

    def evolved(self) -> bool:
        """True iff the keyword set changed at least once during the event."""
        keyword_sets = {s.keywords for s in self.snapshots}
        return len(keyword_sets) > 1

    def rank_monotonically_decreasing(self) -> bool:
        """True iff every rank is <= the previous one (strictly a decay)."""
        ranks = [s.rank for s in self.snapshots]
        return all(b <= a for a, b in zip(ranks, ranks[1:]))

    def is_spurious(self, min_lifetime: int = 2) -> bool:
        """Post-hoc spurious classification (Section 7.2.2).

        An event is spurious when it never evolved *and* its rank decayed
        monotonically after its initial burst.  Events observed for fewer
        than ``min_lifetime`` quanta keep the benefit of the doubt only if
        they evolved; single-burst one-shot clusters are spurious.
        """
        if len(self.snapshots) < min_lifetime:
            return not self.evolved()
        return (not self.evolved()) and self.rank_monotonically_decreasing()


class EventTracker:
    """Maintains :class:`EventRecord` objects from per-quantum cluster state."""

    def __init__(self) -> None:
        self._records: Dict[int, EventRecord] = {}

    # ------------------------------------------------------------- updates

    def observe_quantum(
        self,
        quantum: int,
        ranked_clusters: Iterable[Tuple[Cluster, float, float]],
        changes: "ChangeBatch | Iterable[ChangeEvent]" = (),
    ) -> None:
        """Record the end-of-quantum state.

        Parameters
        ----------
        ranked_clusters:
            ``(cluster, rank, support)`` triples for every live cluster.
        changes:
            The quantum's drained :class:`ChangeBatch` (or any iterable of
            typed change events); used to attribute deaths to merges
            (``absorbed_into``).
        """
        if isinstance(changes, ChangeBatch):
            absorbed = changes.absorbed_into()
        else:
            absorbed = {}
            for change in changes:
                if isinstance(change, ClusterMerged):
                    for cid in change.absorbed:
                        absorbed[cid] = change.survivor
        seen: set = set()
        for cluster, rank, support in ranked_clusters:
            seen.add(cluster.cluster_id)
            record = self._records.get(cluster.cluster_id)
            if record is None:
                record = EventRecord(cluster.cluster_id, quantum)
                self._records[cluster.cluster_id] = record
            elif record.died_quantum is not None:
                # A retired id re-appeared (id reuse after a dissolve is
                # impossible; after a split the id survives) — reopen it.
                record.died_quantum = None
                record.absorbed_into = None
            record.snapshots.append(
                EventSnapshot(
                    quantum=quantum,
                    keywords=frozenset(str(n) for n in cluster.nodes),
                    rank=rank,
                    support=support,
                    num_edges=cluster.num_edges,
                )
            )
        for event_id, record in self._records.items():
            if record.alive and event_id not in seen:
                record.died_quantum = quantum
                record.absorbed_into = absorbed.get(event_id)

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot of every event history (insertion order)."""
        return {
            "records": [
                {
                    "event_id": r.event_id,
                    "born_quantum": r.born_quantum,
                    "died_quantum": r.died_quantum,
                    "absorbed_into": r.absorbed_into,
                    "snapshots": [
                        [
                            s.quantum,
                            sorted(s.keywords),
                            s.rank,
                            s.support,
                            s.num_edges,
                        ]
                        for s in r.snapshots
                    ],
                }
                for r in self._records.values()
            ]
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the tracker in place from :meth:`to_state` output."""
        self._records = {}
        for record in state["records"]:
            out = EventRecord(
                event_id=record["event_id"],
                born_quantum=record["born_quantum"],
                died_quantum=record["died_quantum"],
                absorbed_into=record["absorbed_into"],
            )
            for quantum, keywords, rank, support, num_edges in record[
                "snapshots"
            ]:
                out.snapshots.append(
                    EventSnapshot(
                        quantum=quantum,
                        keywords=frozenset(keywords),
                        rank=rank,
                        support=support,
                        num_edges=num_edges,
                    )
                )
            self._records[out.event_id] = out

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._records)

    def get(self, event_id: int) -> EventRecord:
        return self._records[event_id]

    def alive_events(self) -> List[EventRecord]:
        return [r for r in self._records.values() if r.alive]

    def all_events(self) -> List[EventRecord]:
        return list(self._records.values())

    def real_events(self, min_lifetime: int = 2) -> List[EventRecord]:
        """Events that survive the post-hoc spurious filter."""
        return [
            r
            for r in self._records.values()
            if not r.is_spurious(min_lifetime=min_lifetime)
        ]

    def top_events(self, k: int, quantum: Optional[int] = None) -> List[EventRecord]:
        """The k currently-alive events with the highest latest rank."""
        candidates = [r for r in self.alive_events() if r.snapshots]
        if quantum is not None:
            candidates = [
                r for r in candidates if r.snapshots[-1].quantum == quantum
            ]
        candidates.sort(key=lambda r: r.snapshots[-1].rank, reverse=True)
        return candidates[:k]


__all__ = ["EventSnapshot", "EventRecord", "EventTracker"]
