"""Event lifecycle tracking across quanta.

An *event* is the temporal identity of an SCP cluster: it is born when the
cluster first appears, evolves as keywords join and leave (Section 4.2's
motivating examples), survives merges (the surviving cluster id carries on)
and dies when its cluster dissolves or is absorbed.

The tracker also implements the paper's post-hoc spurious-event analysis
(Section 7.2.2): real events have a build-up and wind-down phase, so their
clusters evolve and their rank varies non-monotonically; spurious events
burst once and then decay monotonically without evolving.

Churn proportionality: snapshots are *change points*, not per-quantum rows.
:meth:`EventTracker.observe_edits` consumes the incremental ranker's
``last_recomputed`` / ``last_removed`` edit script and appends a snapshot
only when an event's reportable state actually changed (or it was born or
reopened), so per-quantum tracking work scales with churn instead of the
live-event count.  Between two snapshots an event's state is constant by
construction, which is what lets :meth:`EventRecord.iter_quanta` expand the
run-length-encoded history back into the dense per-quantum view the eval
layer consumes.  :meth:`EventTracker.observe_quantum` remains as the
from-scratch path — it diffs a full ranking by value and produces records
*identical* to the edit-script path (the oracle assertion in
``tests/test_core_events_incremental.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.changelog import ChangeBatch, ChangeEvent, ClusterMerged
from repro.core.clusters import Cluster


@dataclass
class EventSnapshot:
    """State of one event from ``quantum`` until its next change point."""

    quantum: int
    keywords: FrozenSet[str]
    rank: float
    support: float
    num_edges: int


@dataclass
class EventRecord:
    """Full history of one event (one cluster identity).

    ``snapshots`` holds one entry per *change point*; ``gaps`` records the
    ``(died, reborn)`` quantum pairs of any mid-life disappearances (a
    cluster dropping below the reportable size and recovering later), so
    the dense per-quantum view remains reconstructible.
    ``_observed_until`` is stamped by the tracker's accessors with the last
    quantum the event was known alive — for a live record the snapshots
    alone cannot tell "unchanged since" from "gone since".
    """

    event_id: int
    born_quantum: int
    snapshots: List[EventSnapshot] = field(default_factory=list)
    died_quantum: Optional[int] = None
    absorbed_into: Optional[int] = None
    gaps: List[Tuple[int, int]] = field(default_factory=list)
    _observed_until: Optional[int] = field(default=None, repr=False)

    @property
    def alive(self) -> bool:
        return self.died_quantum is None

    @property
    def last_snapshot(self) -> EventSnapshot:
        return self.snapshots[-1]

    @property
    def current_keywords(self) -> FrozenSet[str]:
        return self.snapshots[-1].keywords if self.snapshots else frozenset()

    @property
    def all_keywords(self) -> FrozenSet[str]:
        """Union of every keyword the event ever contained."""
        out: set = set()
        for snap in self.snapshots:
            out |= snap.keywords
        return frozenset(out)

    @property
    def peak_rank(self) -> float:
        return max((s.rank for s in self.snapshots), default=0.0)

    @property
    def first_quantum(self) -> int:
        """First quantum the event was observed in."""
        return self.snapshots[0].quantum if self.snapshots else self.born_quantum

    @property
    def last_quantum(self) -> int:
        """Last quantum the event was (known to be) alive.

        A dead record ended the quantum before its recorded death; a live
        record extends to the tracker-stamped observation horizon, falling
        back to its last change point for hand-built (dense) records.
        """
        if self.died_quantum is not None:
            return self.died_quantum - 1
        last_change = self.snapshots[-1].quantum if self.snapshots else self.born_quantum
        if self._observed_until is not None:
            return max(self._observed_until, last_change)
        return last_change

    @property
    def lifetime_quanta(self) -> int:
        if not self.snapshots:
            return 0
        return self.last_quantum - self.first_quantum + 1

    @property
    def observed_quanta(self) -> int:
        """Quanta the event was actually alive — the span minus any
        recorded absence gaps (what ``len(snapshots)`` counted when
        histories were materialised densely)."""
        if not self.snapshots:
            return 0
        span = self.last_quantum - self.first_quantum + 1
        return span - sum(reborn - died for died, reborn in self.gaps)

    def iter_quanta(self) -> Iterator[Tuple[int, EventSnapshot]]:
        """Dense per-quantum expansion: yield ``(quantum, state)`` pairs.

        Expands the change-point encoding over the event's observed span,
        skipping any recorded absence gaps — exactly the rows the old
        per-quantum tracker materialised eagerly.
        """
        if not self.snapshots:
            return
        absent = set()
        for died, reborn in self.gaps:
            absent.update(range(died, reborn))
        snaps = self.snapshots
        end = self.last_quantum
        for i, snap in enumerate(snaps):
            until = snaps[i + 1].quantum - 1 if i + 1 < len(snaps) else end
            for quantum in range(snap.quantum, until + 1):
                if quantum not in absent:
                    yield quantum, snap

    def evolved(self) -> bool:
        """True iff the keyword set changed at least once during the event."""
        keyword_sets = {s.keywords for s in self.snapshots}
        return len(keyword_sets) > 1

    def rank_monotonically_decreasing(self) -> bool:
        """True iff every rank is <= the previous one (strictly a decay).

        Change-point encoding preserves the verdict: between snapshots the
        rank is constant, and a constant run satisfies ``b <= a`` exactly as
        its collapsed single entry does.
        """
        ranks = [s.rank for s in self.snapshots]
        return all(b <= a for a, b in zip(ranks, ranks[1:]))

    def is_spurious(self, min_lifetime: int = 2) -> bool:
        """Post-hoc spurious classification (Section 7.2.2).

        An event is spurious when it never evolved *and* its rank decayed
        monotonically after its initial burst.  Events observed for fewer
        than ``min_lifetime`` quanta keep the benefit of the doubt only if
        they evolved; single-burst one-shot clusters are spurious.  The
        guard counts quanta the event was *alive* (absence gaps excluded),
        matching the dense encoding's ``len(snapshots)``.
        """
        if self.observed_quanta < min_lifetime:
            return not self.evolved()
        return (not self.evolved()) and self.rank_monotonically_decreasing()


class EventTracker:
    """Maintains :class:`EventRecord` objects from per-quantum cluster state."""

    def __init__(self) -> None:
        self._records: Dict[int, EventRecord] = {}
        self._last_quantum: Optional[int] = None

    # ------------------------------------------------------------- updates

    @staticmethod
    def _absorption_map(
        changes: "ChangeBatch | Iterable[ChangeEvent]",
    ) -> Dict[int, int]:
        if isinstance(changes, ChangeBatch):
            return changes.absorbed_into()
        absorbed: Dict[int, int] = {}
        for change in changes:
            if isinstance(change, ClusterMerged):
                for cid in change.absorbed:
                    absorbed[cid] = change.survivor
        return absorbed

    def _touch(
        self,
        event_id: int,
        quantum: int,
        keywords: FrozenSet[str],
        rank: float,
        support: float,
        num_edges: int,
    ) -> None:
        """Observe one live event; append a snapshot only on a change point."""
        record = self._records.get(event_id)
        reopened = False
        if record is None:
            record = EventRecord(event_id, quantum)
            self._records[event_id] = record
        elif record.died_quantum is not None:
            # A retired id re-appeared (id reuse after a dissolve is
            # impossible; after a split the id survives) — reopen it and
            # remember the absence interval for the dense expansion.
            record.gaps.append((record.died_quantum, quantum))
            record.died_quantum = None
            record.absorbed_into = None
            reopened = True
        if not reopened and record.snapshots:
            last = record.snapshots[-1]
            if (
                last.keywords == keywords
                and last.rank == rank
                and last.support == support
                and last.num_edges == num_edges
            ):
                return
        record.snapshots.append(
            EventSnapshot(
                quantum=quantum,
                keywords=keywords,
                rank=rank,
                support=support,
                num_edges=num_edges,
            )
        )

    def observe_edits(
        self,
        quantum: int,
        ranker,
        changes: "ChangeBatch | Iterable[ChangeEvent]" = (),
    ) -> None:
        """Record one quantum from the ranker's result-list edit script.

        The churn-proportional path: only ``ranker.last_recomputed`` (ids
        whose ranked state was rebuilt this quantum) and
        ``ranker.last_removed`` (ids dropped from the result list) are
        touched — never the full live-event population.  Sound because an
        event's reportable state cannot change without its cluster being
        recomputed, and an event cannot die without leaving the result list
        (DESIGN.md Section 3).  Produces records identical to the
        from-scratch :meth:`observe_quantum` diff.
        """
        absorbed = self._absorption_map(changes)
        for event_id in sorted(ranker.last_removed):
            record = self._records.get(event_id)
            if record is not None and record.alive:
                record.died_quantum = quantum
                record.absorbed_into = absorbed.get(event_id)
        for event_id in sorted(ranker.last_recomputed):
            cluster, rank, support = ranker.result(event_id)
            self._touch(
                event_id,
                quantum,
                frozenset(str(n) for n in cluster.nodes),
                rank,
                support,
                cluster.num_edges,
            )
        self._last_quantum = quantum

    def observe_quantum(
        self,
        quantum: int,
        ranked_clusters: Iterable[Tuple[Cluster, float, float]],
        changes: "ChangeBatch | Iterable[ChangeEvent]" = (),
    ) -> None:
        """Record the end-of-quantum state from a *full* ranking.

        The from-scratch path (and the oracle for :meth:`observe_edits`):
        every live cluster is visited and diffed by value, so the appended
        change points — and hence the resulting records — are identical to
        the edit-script path's.

        Parameters
        ----------
        ranked_clusters:
            ``(cluster, rank, support)`` triples for every live cluster.
        changes:
            The quantum's drained :class:`ChangeBatch` (or any iterable of
            typed change events); used to attribute deaths to merges
            (``absorbed_into``).
        """
        absorbed = self._absorption_map(changes)
        seen: set = set()
        for cluster, rank, support in ranked_clusters:
            seen.add(cluster.cluster_id)
            self._touch(
                cluster.cluster_id,
                quantum,
                frozenset(str(n) for n in cluster.nodes),
                rank,
                support,
                cluster.num_edges,
            )
        for event_id, record in self._records.items():
            if record.alive and event_id not in seen:
                record.died_quantum = quantum
                record.absorbed_into = absorbed.get(event_id)
        self._last_quantum = quantum

    def _stamp(self, records: List[EventRecord]) -> List[EventRecord]:
        """Stamp live records with the observation horizon before hand-out."""
        for record in records:
            if record.alive:
                record._observed_until = self._last_quantum
        return records

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot of every event history (insertion order).

        ``last_quantum`` (the observation horizon) travels with the records:
        live records' spans extend to it, and the change-point encoding
        cannot reconstruct it from the snapshots alone.
        """
        return {
            "last_quantum": self._last_quantum,
            "records": [
                {
                    "event_id": r.event_id,
                    "born_quantum": r.born_quantum,
                    "died_quantum": r.died_quantum,
                    "absorbed_into": r.absorbed_into,
                    "gaps": [list(gap) for gap in r.gaps],
                    "snapshots": [
                        [
                            s.quantum,
                            sorted(s.keywords),
                            s.rank,
                            s.support,
                            s.num_edges,
                        ]
                        for s in r.snapshots
                    ],
                }
                for r in self._records.values()
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the tracker in place from :meth:`to_state` output."""
        self._records = {}
        self._last_quantum = state["last_quantum"]
        for record in state["records"]:
            out = EventRecord(
                event_id=record["event_id"],
                born_quantum=record["born_quantum"],
                died_quantum=record["died_quantum"],
                absorbed_into=record["absorbed_into"],
                gaps=[tuple(gap) for gap in record["gaps"]],
            )
            for quantum, keywords, rank, support, num_edges in record[
                "snapshots"
            ]:
                out.snapshots.append(
                    EventSnapshot(
                        quantum=quantum,
                        keywords=frozenset(keywords),
                        rank=rank,
                        support=support,
                        num_edges=num_edges,
                    )
                )
            self._records[out.event_id] = out

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._records)

    def get(self, event_id: int) -> EventRecord:
        record = self._records[event_id]
        self._stamp([record])
        return record

    def alive_events(self) -> List[EventRecord]:
        return self._stamp([r for r in self._records.values() if r.alive])

    def all_events(self) -> List[EventRecord]:
        return self._stamp(list(self._records.values()))

    def real_events(self, min_lifetime: int = 2) -> List[EventRecord]:
        """Events that survive the post-hoc spurious filter."""
        return [
            r
            for r in self.all_events()
            if not r.is_spurious(min_lifetime=min_lifetime)
        ]

    def top_events(self, k: int, quantum: Optional[int] = None) -> List[EventRecord]:
        """The k currently-alive events with the highest latest rank."""
        candidates = [r for r in self.alive_events() if r.snapshots]
        if quantum is not None:
            candidates = [r for r in candidates if r.last_quantum == quantum]
        candidates.sort(key=lambda r: r.snapshots[-1].rank, reverse=True)
        return candidates[:k]


__all__ = ["EventSnapshot", "EventRecord", "EventTracker"]
