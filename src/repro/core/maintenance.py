"""Incremental SCP cluster maintenance (Section 5) and the global oracle.

:class:`ClusterMaintainer` owns a :class:`~repro.graph.dynamic_graph.DynamicGraph`
and a :class:`~repro.core.clusters.ClusterRegistry` and keeps the registry
equal, after every mutation, to the unique atom-glued decomposition of the
graph (DESIGN.md Section 1).  The paper's four operations map to:

=====================  ====================================================
Paper algorithm        Implementation
=====================  ====================================================
EdgeAddition (5.2)     :meth:`ClusterMaintainer.add_edge` — enumerate atoms
                       through the new edge, merge every touched cluster
                       (Lemma 6) and absorb the atoms.
NodeAddition (5.1)     :meth:`ClusterMaintainer.add_node_with_edges` —
                       sequential edge additions; every short cycle through
                       the new node uses two of its edges, so rules R1/R2
                       are recovered pairwise (Lemma 5 guarantees order
                       independence, which the tests verify).
NodeDeletion (5.3)     :meth:`ClusterMaintainer.remove_node` — local re-glue
                       of each affected cluster; subsumes the cycle check
                       and the Lemma 7 articulation check.
EdgeDeletion (5.4)     :meth:`ClusterMaintainer.remove_edge` — same re-glue
                       restricted to the single owning cluster.
=====================  ====================================================

All deletion work is local: only the affected clusters' own (small) subgraphs
are touched, never the full graph.  :func:`decompose_graph` is the
from-scratch global computation used as the correctness oracle for Theorem 3.

Every structural mutation is additionally recorded as a typed event in the
maintainer's :class:`~repro.core.changelog.ChangeLog` (see DESIGN.md
Section 2), and the graph's weight-listener hook routes correlation
refreshes into the same log — this is what lets the downstream
:class:`~repro.core.incremental.IncrementalRanker` re-rank only perturbed
clusters.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.atoms import Atom, atoms_containing_edge, atoms_in_subgraph
from repro.core.changelog import (
    ChangeBatch,
    ChangeEvent,
    ChangeLog,
    ClusterCreated,
    ClusterDissolved,
    ClusterMerged,
    ClusterSplit,
    ClusterUpdated,
    EdgeWeightChanged,
)
from repro.core.clusters import Cluster, ClusterRegistry
from repro.errors import GraphError
from repro.graph.dynamic_graph import DynamicGraph, EdgeKey, edge_key

Node = Hashable

Change = ChangeEvent
"""Backwards-compatible alias: the change log now carries typed
:class:`~repro.core.changelog.ChangeEvent` objects instead of string tuples."""


class _DisjointSet:
    """Union-find over integer indexes with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        parent = self.parent
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def _glue_atoms(atoms: List[Atom]) -> List[Tuple[Set[Node], Set[EdgeKey]]]:
    """Group atoms transitively by shared edges; return (nodes, edges) per
    group.  This is the definition of an SCP cluster."""
    if not atoms:
        return []
    dsu = _DisjointSet(len(atoms))
    owner: Dict[EdgeKey, int] = {}
    for i, atom in enumerate(atoms):
        for e in atom.edges:
            j = owner.setdefault(e, i)
            if j != i:
                dsu.union(i, j)
    groups: Dict[int, Tuple[Set[Node], Set[EdgeKey]]] = {}
    for i, atom in enumerate(atoms):
        nodes, edges = groups.setdefault(dsu.find(i), (set(), set()))
        nodes |= atom.nodes
        edges |= atom.edges
    return list(groups.values())


def decompose_graph(
    graph: "DynamicGraph | Mapping[Node, Iterable[Node]]",
) -> List[Tuple[Set[Node], Set[EdgeKey]]]:
    """From-scratch global SCP decomposition of a graph.

    Enumerates every short-cycle atom and glues them on shared edges.  This
    is the *global processing* the paper's incremental algorithms avoid; it
    exists as a test oracle (Theorem 3: the incremental result must equal
    this decomposition) and for the locality ablation benchmark.
    """
    adjacency = graph.adjacency() if isinstance(graph, DynamicGraph) else graph
    return _glue_atoms(atoms_in_subgraph(adjacency))


class ClusterMaintainer:
    """Maintains the SCP cluster decomposition under dynamic updates."""

    def __init__(
        self,
        graph: DynamicGraph | None = None,
        registry: ClusterRegistry | None = None,
        changelog: ChangeLog | None = None,
    ) -> None:
        self.graph = graph if graph is not None else DynamicGraph()
        self.registry = registry if registry is not None else ClusterRegistry()
        self.changelog = changelog if changelog is not None else ChangeLog()
        self.graph.set_weight_listener(self._on_edge_weight_changed)
        self.current_quantum = 0
        self.clustering_seconds = 0.0
        """Cumulative wall time spent in cluster-structure updates — the
        incremental counterpart of the offline baseline's per-quantum global
        recomputation (used by the Section 7.3 speed comparison)."""

    # ------------------------------------------------------------- changes

    def _on_edge_weight_changed(
        self, u: Node, v: Node, old: float, new: float
    ) -> None:
        """Graph weight-listener hook: correlation refreshes become deltas."""
        self.changelog.record(EdgeWeightChanged(edge_key(u, v), old, new))

    def pop_changes(self) -> List[Change]:
        """Return and clear the change log accumulated since the last call.

        Convenience wrapper over ``self.changelog.drain().events`` for
        callers that want a plain list; the engine drains the log itself to
        keep the :class:`~repro.core.changelog.ChangeBatch` for propagation.
        """
        return list(self.changelog.drain().events)

    def drain_changes(self) -> ChangeBatch:
        """Drain the change log into an immutable batch (the engine's path)."""
        return self.changelog.drain()

    # ------------------------------------------------------------ addition

    def add_node(self, node: Node) -> None:
        """Insert an isolated node (keyword entering the high state)."""
        self.graph.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> Optional[Cluster]:
        """EdgeAddition (Section 5.2).

        Inserts the edge, enumerates every atom (short cycle) containing it,
        and merges those atoms together with every existing cluster that owns
        one of the atoms' edges (Lemma 6).  Returns the cluster the edge ends
        up in, or None when the edge closes no short cycle.
        """
        self.graph.add_edge(u, v, weight)
        start = time.perf_counter()
        try:
            return self._cluster_new_edge(u, v)
        finally:
            self.clustering_seconds += time.perf_counter() - start

    def _cluster_new_edge(self, u: Node, v: Node) -> Optional[Cluster]:
        atoms = atoms_containing_edge(self.graph, u, v)
        if not atoms:
            return None
        atom_nodes: Set[Node] = set()
        atom_edges: Set[EdgeKey] = set()
        for atom in atoms:
            atom_nodes |= atom.nodes
            atom_edges |= atom.edges
        touched = {
            cid
            for cid in (
                self.registry.cluster_of_edge(*e) for e in atom_edges
            )
            if cid is not None
        }
        if touched:
            survivor = self.registry.merge(touched)
            self.registry.absorb(survivor.cluster_id, atom_nodes, atom_edges)
            if len(touched) > 1:
                absorbed = tuple(sorted(touched - {survivor.cluster_id}))
                self.changelog.record(
                    ClusterMerged(survivor.cluster_id, absorbed)
                )
            else:
                self.changelog.record(ClusterUpdated(survivor.cluster_id))
            return survivor
        cluster = self.registry.new_cluster(
            atom_nodes, atom_edges, born_quantum=self.current_quantum
        )
        self.changelog.record(ClusterCreated(cluster.cluster_id))
        return cluster

    def add_node_with_edges(
        self, node: Node, weighted_edges: Mapping[Node, float]
    ) -> List[Cluster]:
        """NodeAddition (Section 5.1).

        Adds ``node`` and its correlated edges.  Equivalent to applying
        EdgeAddition per edge: a short cycle through the new node uses
        exactly two of its incident edges, so considering edge pairs (the
        paper's R1/R2 over pairs ni, nj) and sequential insertion discover
        the same atoms.  Returns the distinct clusters the node joined.
        """
        self.graph.ensure_node(node)
        joined: Dict[int, Cluster] = {}
        for other, weight in weighted_edges.items():
            if other == node:
                raise GraphError(f"self-edge in node addition: {node!r}")
            cluster = self.add_edge(node, other, weight)
            if cluster is not None:
                joined[cluster.cluster_id] = cluster
        # Merges may have retired some ids recorded earlier in the loop.
        return [
            c for cid, c in joined.items() if cid in self.registry
        ]

    def set_edge_weight(self, u: Node, v: Node, weight: float) -> None:
        """Refresh an edge's correlation; no structural change."""
        self.graph.set_edge_weight(u, v, weight)

    # ------------------------------------------------------------ deletion

    def remove_edge(self, u: Node, v: Node) -> List[Cluster]:
        """EdgeDeletion (Section 5.4).

        Removes the edge; if it was owned by a cluster, re-glues that
        cluster's surviving edges locally (cycle check within the cluster).
        Returns the surviving fragments (possibly empty).
        """
        return self.remove_edges([(u, v)])

    def remove_edges(self, edges: Iterable[Tuple[Node, Node]]) -> List[Cluster]:
        """Batched EdgeDeletion: one local re-glue per affected cluster.

        Deleting k edges of the same cluster triggers a single cycle check
        instead of k — the per-quantum batching the paper's O(k^2 N C)
        analysis assumes.  Equivalent to sequential deletion (the final
        decomposition depends only on the final graph, Theorem 3).
        """
        affected: Set[int] = set()
        for u, v in edges:
            owner = self.registry.cluster_of_edge(u, v)
            self.graph.remove_edge(u, v)
            if owner is not None:
                self.registry.release_edges(owner, (edge_key(u, v),))
                affected.add(owner)
        return self._reglue_all(affected)

    def remove_node(self, node: Node) -> List[Cluster]:
        """NodeDeletion (Section 5.3).

        Removes the node and its incident edges, then re-glues every cluster
        that contained it.  The re-glue enumerates short cycles only inside
        the affected cluster's own edge set, which performs the paper's
        cycle check and articulation check in one local pass (Lemma 7 is the
        special case of a degree-2 deletion).
        """
        return self.remove_nodes([node])

    def remove_nodes(self, nodes: Iterable[Node]) -> List[Cluster]:
        """Batched NodeDeletion: one local re-glue per affected cluster."""
        affected: Set[int] = set()
        for node in nodes:
            cids = self.registry.clusters_of_node(node)
            removed = self.graph.remove_node(node)
            for cid in cids:
                self.registry.release_node(cid, node)
                self.registry.release_edges(cid, removed)
            affected |= cids
        return self._reglue_all(affected)

    def _reglue_all(self, affected: Set[int]) -> List[Cluster]:
        if not affected:
            return []
        start = time.perf_counter()
        try:
            fragments: List[Cluster] = []
            for cid in affected:
                fragments.extend(self._reglue(cid))
            return fragments
        finally:
            self.clustering_seconds += time.perf_counter() - start

    def _reglue(self, cluster_id: int) -> List[Cluster]:
        """Recompute the atom gluing of one cluster's surviving edges.

        Local processing: only the cluster's nodes/edges are visited.  Edges
        left on no short cycle drop out of the clustering; remaining atoms
        re-glue into fragments.  The largest fragment keeps the cluster id.
        """
        cluster = self.registry.get(cluster_id)
        surviving = {
            e for e in cluster.edges if self.graph.has_edge(e[0], e[1])
        }
        adjacency: Dict[Node, Set[Node]] = {}
        for a, b in surviving:
            adjacency.setdefault(a, set()).add(b)
            adjacency.setdefault(b, set()).add(a)
        groups = _glue_atoms(atoms_in_subgraph(adjacency, allowed_edges=surviving))
        if not groups:
            self.registry.dissolve(cluster_id)
            self.changelog.record(ClusterDissolved(cluster_id))
            return []
        if len(groups) == 1:
            nodes, edges = groups[0]
            if edges == cluster.edges and nodes == cluster.nodes:
                # Re-glue confirmed the post-release state is one cluster —
                # but the cluster still shrank before we got here (every
                # caller released an edge or node from it first), so its
                # rank inputs changed and the delta must be propagated.
                self.changelog.record(ClusterUpdated(cluster_id))
                return [cluster]
        fragments = self.registry.replace(
            cluster_id, groups, quantum=self.current_quantum
        )
        if len(fragments) > 1:
            extra = tuple(
                f.cluster_id for f in fragments if f.cluster_id != cluster_id
            )
            self.changelog.record(ClusterSplit(cluster_id, extra))
        else:
            self.changelog.record(ClusterUpdated(cluster_id))
        return fragments

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot of the graph + decomposition.

        Only callable between quanta: the change log must be fully drained,
        because pending events are owned by the quantum that produced them
        and cannot be meaningfully split across a checkpoint.
        """
        if self.changelog:
            raise GraphError(
                "cannot snapshot a maintainer with undrained change events"
            )
        return {
            "graph": self.graph.to_state(),
            "registry": self.registry.to_state(),
            "current_quantum": self.current_quantum,
            "clustering_seconds": self.clustering_seconds,
        }

    def from_state(self, state: dict) -> None:
        """Restore graph and registry in place from :meth:`to_state` output.

        In-place restoration keeps every wiring intact: the graph's weight
        listener still routes into this maintainer's change log, and any
        registry listeners (the builder's unclustered hook) stay subscribed.
        """
        self.graph.from_state(state["graph"])
        self.registry.from_state(state["registry"])
        self.current_quantum = state["current_quantum"]
        self.clustering_seconds = state["clustering_seconds"]

    # ----------------------------------------------------------- integrity

    def check_against_oracle(self) -> None:
        """Assert the registry equals the global decomposition (Theorem 3).

        Test helper: raises AssertionError on mismatch.
        """
        expected = {
            frozenset(edges) for _, edges in decompose_graph(self.graph)
        }
        actual = self.registry.decomposition()
        assert actual == expected, (
            f"incremental clustering diverged from oracle:\n"
            f"  incremental: {sorted(map(sorted, actual))}\n"
            f"  oracle:      {sorted(map(sorted, expected))}"
        )


__all__ = ["ClusterMaintainer", "decompose_graph", "Change", "ChangeBatch"]
