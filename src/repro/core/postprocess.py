"""Post-processing of discovered events (Section 1.1's discussion).

Two discovered clusters can describe the same real-world event without ever
merging in the graph — users describing different perspectives with disjoint
keyword sets.  The paper notes that such clusters "should show temporal
correlation" and proposes post-processing them into one event.  This module
implements that step: events whose active intervals overlap strongly, whose
support populations overlap (shared users), or whose keywords overlap below
the merge threshold are grouped into :class:`CorrelatedEventGroup` bundles.

This is consumption-side only — the graph and cluster state are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.events import EventRecord


@dataclass(frozen=True)
class CorrelationPolicy:
    """Thresholds for declaring two events facets of one story."""

    min_interval_overlap: float = 0.5
    """Fraction of the shorter event's lifetime that must overlap."""

    min_keyword_overlap: int = 1
    """Shared keywords needed (weaker than cluster merging's short cycle)."""

    max_birth_gap_quanta: int = 10
    """Events born further apart than this are never correlated."""


@dataclass
class CorrelatedEventGroup:
    """A bundle of events post-processed into one story."""

    events: List[EventRecord] = field(default_factory=list)

    @property
    def event_ids(self) -> List[int]:
        return [record.event_id for record in self.events]

    @property
    def keywords(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for record in self.events:
            out |= record.all_keywords
        return frozenset(out)

    @property
    def peak_rank(self) -> float:
        return max((r.peak_rank for r in self.events), default=0.0)

    @property
    def born_quantum(self) -> int:
        return min(r.born_quantum for r in self.events)


def _interval(record: EventRecord) -> Tuple[int, int]:
    if not record.snapshots:
        return (record.born_quantum, record.born_quantum)
    return (record.first_quantum, record.last_quantum)


def _intervals_correlated(
    a: EventRecord, b: EventRecord, policy: CorrelationPolicy
) -> bool:
    a_start, a_end = _interval(a)
    b_start, b_end = _interval(b)
    if abs(a.born_quantum - b.born_quantum) > policy.max_birth_gap_quanta:
        return False
    overlap = min(a_end, b_end) - max(a_start, b_start) + 1
    if overlap <= 0:
        return False
    shorter = min(a_end - a_start, b_end - b_start) + 1
    return overlap / shorter >= policy.min_interval_overlap


def _events_correlated(
    a: EventRecord, b: EventRecord, policy: CorrelationPolicy
) -> bool:
    if not _intervals_correlated(a, b, policy):
        return False
    shared = len(a.all_keywords & b.all_keywords)
    return shared >= policy.min_keyword_overlap


def correlate_events(
    records: Sequence[EventRecord],
    policy: CorrelationPolicy = CorrelationPolicy(),
) -> List[CorrelatedEventGroup]:
    """Group events into correlated stories (transitive closure).

    Returns one group per story, singletons included, ordered by peak rank
    descending — the consumption order the ranking section motivates.
    """
    records = [r for r in records if r.snapshots]
    parent = list(range(len(records)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(records)):
        for j in range(i + 1, len(records)):
            if _events_correlated(records[i], records[j], policy):
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri

    groups: Dict[int, CorrelatedEventGroup] = {}
    for i, record in enumerate(records):
        groups.setdefault(find(i), CorrelatedEventGroup()).events.append(record)
    ordered = list(groups.values())
    ordered.sort(key=lambda g: g.peak_rank, reverse=True)
    return ordered


__all__ = ["CorrelationPolicy", "CorrelatedEventGroup", "correlate_events"]
