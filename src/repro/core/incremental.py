"""Incremental cluster ranking driven by the typed change log.

The rank of a cluster (Section 6) is a pure function of its node set, edge
set, node weights and edge correlations.  None of those can change without
the maintenance layer recording a :class:`~repro.core.changelog.ChangeEvent`,
so a cached rank stays exact until its cluster is marked dirty by a drained
:class:`~repro.core.changelog.ChangeBatch`.  :class:`IncrementalRanker`
exploits this: the ranked-result list is maintained *in place* — per quantum
it touches only the dirtied clusters, turning the rank stage from
O(live clusters x cluster size^2) into O(dirty clusters x cluster size^2).
There is no per-quantum cache sweep over the live clusters at all: a cluster
that appears, changes size, or dies necessarily produced a structural event
(DESIGN.md Section 2), so the dirty set is the complete edit script for the
result list.

``oracle=True`` disables the cache entirely and recomputes every cluster
from scratch on every call.  The oracle is the verification baseline: the
property tests assert that, after arbitrary mutation sequences, incremental
and oracle ranks are identical (see DESIGN.md Section 3), and the
``bench_incremental_ranking`` benchmark measures the speedup between the two
modes across churn rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.changelog import ChangeBatch
from repro.core.clusters import Cluster, ClusterRegistry
from repro.core.ranking import rank_and_support
from repro.graph.dynamic_graph import DynamicGraph, EdgeKey

Node = Hashable

NodeWeightFn = Callable[[Iterable[Node]], Mapping[Node, float]]
"""Resolves a node set to its current window-support weights (the engine
passes :meth:`repro.akg.builder.AkgBuilder.node_weights`)."""


@dataclass
class RankEntry:
    """Cached per-cluster ranking state, valid until the cluster is dirtied.

    The input snapshots (``weights``, ``correlations``) are what
    :meth:`IncrementalRanker.verify_against_oracle` diffs to pinpoint *which*
    rank input went stale when the propagation contract is violated.
    ``cluster`` is the registry object the entry was computed from; it is
    refreshed on every recompute because splits replace the surviving id's
    object.
    """

    rank: float
    support: float
    weights: Dict[Node, float]
    correlations: Dict[EdgeKey, float]
    cluster: Optional[Cluster] = field(default=None, repr=False)


@dataclass
class RankStats:
    """Work counters for one :meth:`IncrementalRanker.rank_all` call.

    ``dirty_processed`` counts the clusters the call actually visited; the
    dirty-only regression tests assert it scales with churn while ``live``
    (derived from the maintained result list, not from a sweep) does not.
    """

    live: int = 0
    ranked: int = 0
    recomputed: int = 0
    cache_hits: int = 0
    evicted: int = 0
    dirty_processed: int = 0

    def reset(self) -> None:
        self.live = self.ranked = self.recomputed = 0
        self.cache_hits = self.evicted = self.dirty_processed = 0


class IncrementalRanker:
    """Maintains the ranked-result list in place, touching only dirty clusters.

    Parameters
    ----------
    registry, graph:
        The live decomposition and its substrate (shared with the
        maintainer, read-only here).
    node_weight_fn:
        Callable mapping a node iterable to current node weights.
    min_cluster_size:
        Clusters below this size are neither ranked nor cached.
    oracle:
        When True, ignore the cache and recompute everything on every call —
        the from-scratch baseline used for verification and benchmarking.
    """

    def __init__(
        self,
        registry: ClusterRegistry,
        graph: DynamicGraph,
        node_weight_fn: NodeWeightFn,
        min_cluster_size: int = 3,
        oracle: bool = False,
    ) -> None:
        self.registry = registry
        self.graph = graph
        self.node_weight_fn = node_weight_fn
        self.min_cluster_size = min_cluster_size
        self.oracle = oracle
        self.stats = RankStats()
        self._cache: Dict[int, RankEntry] = {}
        # Clusters alive before this ranker existed produced their change
        # events in the past; seed them as dirty so the first rank_all
        # covers them without a registry sweep ever happening again.
        self._dirty: Set[int] = {cluster.cluster_id for cluster in registry}
        # Per-quantum result-list edit script for the report stage: which
        # entries the last apply()/rank_all() round recomputed and which it
        # dropped.  In oracle mode the "delta" is the full ranking, mirroring
        # the oracle's O(live) cost.
        self.last_recomputed: Set[int] = set()
        self.last_removed: Set[int] = set()
        self._removed_pending: Set[int] = set()
        self._oracle_results: Dict[int, Tuple[Cluster, float, float]] = {}

    # ----------------------------------------------------------- propagation

    def apply(self, batch: ChangeBatch) -> Set[int]:
        """Absorb one quantum's change batch; returns the dirtied ids.

        Retired clusters (dissolved or absorbed by a merge) are evicted from
        the cache; every other referenced cluster is marked dirty and will be
        recomputed by the next :meth:`rank_all`.  Dirt accumulates across
        calls until consumed, so draining multiple batches before ranking is
        safe.
        """
        for cid in batch.retired_ids():
            if self._cache.pop(cid, None) is not None:
                self.stats.evicted += 1
                self._removed_pending.add(cid)
            self._dirty.discard(cid)
        dirty = batch.dirty_clusters(self.registry)
        self._dirty |= dirty
        return dirty

    # ---------------------------------------------------------------- ranking

    def _compute(self, cluster: Cluster) -> RankEntry:
        weights = dict(self.node_weight_fn(cluster.nodes))
        edge_weight = self.graph.edge_weight
        correlations = {e: edge_weight(e[0], e[1]) for e in cluster.edges}
        rank, support = rank_and_support(
            cluster.nodes, cluster.edges, weights, correlations
        )
        return RankEntry(rank, support, weights, correlations, cluster)

    def rank_all(self) -> List[Tuple[Cluster, float, float]]:
        """``(cluster, rank, support)`` for every live reportable cluster.

        Incremental mode edits the maintained result list: each accumulated
        dirty id is recomputed (entering or leaving the list as its size
        crosses ``min_cluster_size`` or it dies), and every untouched entry
        is returned as-is — no per-cluster work, no registry sweep.  Oracle
        mode recomputes everything.  Either way the returned ranking
        reflects the current registry exactly (DESIGN.md Section 3) and is
        ordered by cluster id, so the two modes emit identically ordered
        output regardless of cache or registry insertion history.
        """
        stats = self.stats
        stats.reset()
        if self.oracle:
            out: List[Tuple[Cluster, float, float]] = []
            results: Dict[int, Tuple[Cluster, float, float]] = {}
            for cluster in self.registry:
                stats.live += 1
                if cluster.size < self.min_cluster_size:
                    continue
                entry = self._compute(cluster)
                stats.ranked += 1
                stats.recomputed += 1
                results[cluster.cluster_id] = (cluster, entry.rank, entry.support)
                out.append((cluster, entry.rank, entry.support))
            out.sort(key=lambda item: item[0].cluster_id)
            # The oracle's "delta" is the full ranking: everything was
            # recomputed, and whatever ranked last call but not now is gone.
            self.last_recomputed = set(results)
            self.last_removed = (
                set(self._oracle_results) - set(results)
            ) | self._removed_pending
            self._removed_pending = set()
            self._oracle_results = results
            return out

        cache = self._cache
        registry = self.registry
        recomputed: Set[int] = set()
        for cid in self._dirty:
            stats.dirty_processed += 1
            if cid not in registry:
                # Normally retirement events already evicted it; a dirty id
                # can still die later in the same batch (merge after update).
                if cache.pop(cid, None) is not None:
                    stats.evicted += 1
                    self._removed_pending.add(cid)
                continue
            cluster = registry.get(cid)
            if cluster.size < self.min_cluster_size:
                if cache.pop(cid, None) is not None:
                    stats.evicted += 1
                    self._removed_pending.add(cid)
                continue
            cache[cid] = self._compute(cluster)
            recomputed.add(cid)
            stats.recomputed += 1
        self._dirty.clear()
        self.last_recomputed = recomputed
        self.last_removed = self._removed_pending
        self._removed_pending = set()
        stats.live = stats.ranked = len(cache)
        stats.cache_hits = stats.ranked - stats.recomputed
        return [
            (entry.cluster, entry.rank, entry.support)
            for _, entry in sorted(cache.items())
        ]

    def result(self, cluster_id: int) -> Tuple[Cluster, float, float]:
        """The last-computed ``(cluster, rank, support)`` for one id.

        Serves the report stage's delta updates without re-materialising the
        full result list; valid for any id in :attr:`last_recomputed`.
        """
        if self.oracle:
            return self._oracle_results[cluster_id]
        entry = self._cache[cluster_id]
        assert entry.cluster is not None
        return entry.cluster, entry.rank, entry.support

    def rebuild_cache(self) -> List[Tuple[Cluster, float, float]]:
        """Recompute every live reportable cluster from current state.

        The checkpoint-restore path: ranks are pure functions of the graph
        and window state (DESIGN.md Section 2), so recomputing them after
        restoring that state reproduces the pre-snapshot cache bit for bit —
        no rank floats ever need to be serialized.  Returns the full ranking
        in cluster-id order (used to re-seed the report index).
        """
        self._cache.clear()
        self._dirty.clear()
        self._removed_pending.clear()
        self.last_recomputed = set()
        self.last_removed = set()
        self._oracle_results = {}
        out: List[Tuple[Cluster, float, float]] = []
        for cluster in self.registry:
            if cluster.size < self.min_cluster_size:
                continue
            entry = self._compute(cluster)
            triple = (cluster, entry.rank, entry.support)
            if self.oracle:
                self._oracle_results[cluster.cluster_id] = triple
            else:
                self._cache[cluster.cluster_id] = entry
            out.append(triple)
        out.sort(key=lambda item: item[0].cluster_id)
        return out

    # ------------------------------------------------------------ validation

    def verify_against_oracle(self) -> None:
        """Assert every cached entry equals a from-scratch recomputation.

        Test helper mirroring
        :meth:`~repro.core.maintenance.ClusterMaintainer.check_against_oracle`:
        raises AssertionError on any divergence between the cache and the
        ground-truth rank of the current state.  Also asserts the maintained
        result list covers exactly the live reportable clusters — the
        no-sweep contract.
        """
        reportable = {
            c.cluster_id
            for c in self.registry
            if c.size >= self.min_cluster_size
        }
        cached = set(self._cache)
        unexpected = cached - reportable - self._dirty
        missing = reportable - cached - self._dirty
        assert not unexpected and not missing, (
            f"maintained result list diverged from the registry:\n"
            f"  entries for dead/short clusters: {sorted(unexpected)}\n"
            f"  live clusters missing an entry:  {sorted(missing)}"
        )
        for cluster in self.registry:
            if cluster.size < self.min_cluster_size:
                continue
            entry = self._cache.get(cluster.cluster_id)
            if entry is None:
                continue  # not ranked yet; nothing stale to check
            if cluster.cluster_id in self._dirty:
                continue  # known-dirty, will be recomputed on next rank_all
            fresh = self._compute(cluster)
            assert entry.cluster is cluster, (
                f"stale cluster object cached for {cluster.cluster_id} "
                f"(the registry replaced it without a change event)"
            )
            assert (
                entry.weights == fresh.weights
                and entry.correlations == fresh.correlations
            ), (
                f"stale rank inputs cached for cluster {cluster.cluster_id} "
                f"(a weight or correlation changed without a change event):\n"
                f"  cached weights:      {entry.weights}\n"
                f"  fresh weights:       {fresh.weights}\n"
                f"  cached correlations: {entry.correlations}\n"
                f"  fresh correlations:  {fresh.correlations}"
            )
            assert entry.rank == fresh.rank and entry.support == fresh.support, (
                f"stale rank cache for cluster {cluster.cluster_id}: "
                f"cached ({entry.rank}, {entry.support}) != "
                f"fresh ({fresh.rank}, {fresh.support})"
            )


__all__ = ["IncrementalRanker", "RankEntry", "RankStats"]
