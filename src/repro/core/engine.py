"""The streaming event detector: the paper's end-to-end pipeline.

:class:`EventDetector` consumes a microblog message stream, advances the
sliding window one quantum at a time, maintains the AKG and its SCP cluster
decomposition incrementally, ranks live clusters from local state, and
reports emerging events.  Everything is incremental: per quantum the work is
O(k^2 * N * C) for N status-changing keywords of average degree k in clusters
of average size C (Section 4.1), never proportional to the full graph.

Each quantum runs as an explicit staged pipeline::

    tokenize -> AKG update -> maintain -> propagate -> rank -> report

``tokenize`` extracts per-user keyword sets from the quantum's messages;
``AKG update`` + ``maintain`` are the Section 3/5 graph and cluster
maintenance driven by :class:`~repro.akg.builder.AkgBuilder` (the maintain
share is measured via the maintainer's clustering clock); ``propagate``
drains the maintainer's typed :class:`~repro.core.changelog.ChangeLog` into
a :class:`~repro.core.changelog.ChangeBatch` and marks perturbed clusters
dirty; ``rank`` re-scores only those dirty clusters through the
:class:`~repro.core.incremental.IncrementalRanker` (a from-scratch oracle
mode exists for verification); ``report`` applies the Section 7.2.2 filters
and snapshots event lifecycles.  Per-stage wall times are surfaced on every
:class:`QuantumReport` as :class:`StageTimings` (and per-stage totals on the
detector), which ``python -m repro detect --timing`` prints as a breakdown.

Typical use::

    from repro import DetectorConfig, EventDetector, Message

    detector = EventDetector(DetectorConfig(quantum_size=160))
    for message in stream:
        report = detector.process_message(message)
        if report is not None:                    # a quantum completed
            for event in report.reported:
                print(report.quantum, event.keywords, event.rank)
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.akg.builder import AkgBuilder, AkgQuantumStats
from repro.akg.ckg_stats import CkgStatsTracker
from repro.config import DetectorConfig
from repro.core.clusters import Cluster
from repro.core.events import EventRecord, EventTracker
from repro.core.incremental import IncrementalRanker
from repro.core.maintenance import ClusterMaintainer
from repro.core.ranking import minimum_rank
from repro.stream.messages import Message
from repro.stream.window import (
    QuantumBatcher,
    invert_user_keywords,
    user_keywords_of_quantum,
)
from repro.text.pos import NounTagger
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class ReportedEvent:
    """One cluster as reported to the consumer at the end of a quantum."""

    event_id: int
    keywords: frozenset[str]
    rank: float
    support: float
    size: int
    num_edges: int
    born_quantum: int


@dataclass
class StageTimings:
    """Wall-clock seconds per pipeline stage of one (or many) quanta."""

    tokenize: float = 0.0
    akg_update: float = 0.0
    maintain: float = 0.0
    propagate: float = 0.0
    rank: float = 0.0
    report: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.tokenize
            + self.akg_update
            + self.maintain
            + self.propagate
            + self.rank
            + self.report
        )

    def add(self, other: "StageTimings") -> None:
        """Accumulate another timing record into this one (for totals)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class QuantumReport:
    """Everything the detector learned in one quantum."""

    quantum: int
    reported: List[ReportedEvent] = field(default_factory=list)
    suppressed: List[ReportedEvent] = field(default_factory=list)
    new_event_ids: Set[int] = field(default_factory=set)
    dead_event_ids: Set[int] = field(default_factory=set)
    akg_stats: Optional[AkgQuantumStats] = None
    ckg_nodes: Optional[int] = None
    ckg_edges: Optional[int] = None
    messages_processed: int = 0
    elapsed_seconds: float = 0.0
    timings: StageTimings = field(default_factory=StageTimings)
    changes: int = 0
    dirty_clusters: int = 0
    ranked_clusters: int = 0
    rank_cache_hits: int = 0

    def top(self, k: int) -> List[ReportedEvent]:
        return heapq.nlargest(k, self.reported, key=lambda e: e.rank)


class EventDetector:
    """Real-time emerging-event detection over a microblog stream."""

    def __init__(
        self,
        config: DetectorConfig | None = None,
        noun_tagger: NounTagger | None = None,
        tokenizer=None,
        oracle_ranking: bool = False,
        oracle_akg: bool = False,
    ) -> None:
        """``tokenizer`` overrides text tokenisation (e.g. a
        :meth:`repro.text.synonyms.SynonymNormalizer.wrap_tokenizer` wrapped
        one for the paper's synonym pre-processing); pre-tokenised messages
        bypass it.  ``oracle_ranking`` disables the incremental rank cache
        and re-ranks every live cluster from scratch each quantum;
        ``oracle_akg`` runs the AKG stage on the from-scratch oracle
        components of :mod:`repro.akg.oracle` — the verification /
        benchmarking baselines (also settable via
        :class:`~repro.config.DetectorConfig`).
        """
        self.config = config if config is not None else DetectorConfig()
        self.tokenizer = tokenizer if tokenizer is not None else tokenize
        self.maintainer = ClusterMaintainer()
        self.builder = AkgBuilder(
            self.config,
            self.maintainer,
            oracle=oracle_akg or self.config.oracle_akg,
        )
        self.ranker = IncrementalRanker(
            self.maintainer.registry,
            self.maintainer.graph,
            self.builder.node_weights,
            min_cluster_size=self.config.min_cluster_size,
            oracle=oracle_ranking or self.config.oracle_ranking,
        )
        self.tracker = EventTracker()
        self.noun_tagger = noun_tagger if noun_tagger is not None else NounTagger()
        self.batcher = QuantumBatcher(self.config.quantum_size)
        self.ckg_stats = (
            CkgStatsTracker(self.config.window_quanta)
            if self.config.track_ckg_stats
            else None
        )
        self._quantum = -1
        self._rank_floor = self.config.rank_threshold_scale * minimum_rank(
            self.config.high_state_threshold, self.config.ec_threshold
        )
        self.total_messages = 0
        self.total_seconds = 0.0
        self.total_timings = StageTimings()
        self._previously_alive: Set[int] = set()

    # ------------------------------------------------------------- access

    @property
    def graph(self):
        """The live AKG (read-only by convention)."""
        return self.maintainer.graph

    @property
    def registry(self):
        """The live SCP cluster registry (read-only by convention)."""
        return self.maintainer.registry

    @property
    def current_quantum(self) -> int:
        return self._quantum

    # ---------------------------------------------------------- ingestion

    def process_message(self, message: Message) -> Optional[QuantumReport]:
        """Feed one message; returns a report when a quantum completes."""
        quantum = self.batcher.push(message)
        if quantum is None:
            return None
        return self.process_quantum(quantum)

    def process_stream(self, messages: Iterable[Message]) -> Iterator[QuantumReport]:
        """Consume a whole stream, yielding one report per quantum.

        A trailing partial quantum (fewer than ``quantum_size`` messages) is
        processed as a final short quantum.
        """
        for batch in self.batcher.batches(messages):
            yield self.process_quantum(batch)

    def process_quantum(self, messages: Sequence[Message]) -> QuantumReport:
        """Advance the window by one quantum of messages (staged pipeline)."""
        start = time.perf_counter()
        self._quantum += 1
        quantum = self._quantum
        timings = StageTimings()

        # -- stage 1: tokenize -------------------------------------------
        t = time.perf_counter()
        user_keywords = user_keywords_of_quantum(
            messages,
            self.tokenizer,
            max_tokens_per_message=self.config.max_tokens_per_message,
        )
        keyword_users = invert_user_keywords(user_keywords)
        if self.ckg_stats is not None:
            self.ckg_stats.add_quantum(quantum, user_keywords)
        timings.tokenize = time.perf_counter() - t

        # -- stages 2+3: AKG update / maintain ---------------------------
        # The builder drives cluster maintenance inline; the maintainer's
        # clustering clock separates the maintain share from AKG bookkeeping.
        t = time.perf_counter()
        maintain_before = self.maintainer.clustering_seconds
        akg_stats = self.builder.process_quantum(quantum, keyword_users)
        timings.maintain = self.maintainer.clustering_seconds - maintain_before
        timings.akg_update = time.perf_counter() - t - timings.maintain

        # -- stage 4: propagate ------------------------------------------
        t = time.perf_counter()
        batch = self.maintainer.drain_changes()
        dirty = self.ranker.apply(batch)
        timings.propagate = time.perf_counter() - t

        # -- stage 5: rank -----------------------------------------------
        t = time.perf_counter()
        ranked = self.ranker.rank_all()
        timings.rank = time.perf_counter() - t

        # -- stage 6: report ---------------------------------------------
        t = time.perf_counter()
        self.tracker.observe_quantum(quantum, ranked, batch)
        report = self._build_report(quantum, ranked, akg_stats)
        timings.report = time.perf_counter() - t

        report.messages_processed = len(messages)
        report.elapsed_seconds = time.perf_counter() - start
        report.timings = timings
        report.changes = len(batch)
        report.dirty_clusters = len(dirty)
        report.ranked_clusters = self.ranker.stats.ranked
        report.rank_cache_hits = self.ranker.stats.cache_hits
        self.total_messages += len(messages)
        self.total_seconds += report.elapsed_seconds
        self.total_timings.add(timings)
        if self.ckg_stats is not None:
            report.ckg_nodes = self.ckg_stats.ckg_nodes
            report.ckg_edges = self.ckg_stats.ckg_edges
        return report

    # ------------------------------------------------------------ ranking

    def _build_report(
        self,
        quantum: int,
        ranked: List[Tuple[Cluster, float, float]],
        akg_stats: AkgQuantumStats,
    ) -> QuantumReport:
        report = QuantumReport(quantum=quantum, akg_stats=akg_stats)
        alive_now: Set[int] = set()
        for cluster, rank, support in ranked:
            alive_now.add(cluster.cluster_id)
            event = ReportedEvent(
                event_id=cluster.cluster_id,
                keywords=frozenset(str(n) for n in cluster.nodes),
                rank=rank,
                support=support,
                size=cluster.size,
                num_edges=cluster.num_edges,
                born_quantum=cluster.born_quantum,
            )
            if self._passes_filters(event):
                report.reported.append(event)
            else:
                report.suppressed.append(event)
        report.reported.sort(key=lambda e: e.rank, reverse=True)
        report.new_event_ids = alive_now - self._previously_alive
        report.dead_event_ids = self._previously_alive - alive_now
        self._previously_alive = alive_now
        return report

    def _passes_filters(self, event: ReportedEvent) -> bool:
        """Section 7.2.2 report-time filters: rank floor and noun check."""
        if event.rank < self._rank_floor:
            return False
        if self.config.require_noun and not self.noun_tagger.has_noun(
            event.keywords
        ):
            return False
        return True

    # ------------------------------------------------------------ summary

    def throughput(self) -> float:
        """Messages processed per second of detector CPU time so far."""
        if self.total_seconds == 0.0:
            return 0.0
        return self.total_messages / self.total_seconds

    def events(self, include_spurious: bool = True) -> List[EventRecord]:
        """All events observed so far (optionally post-hoc filtered)."""
        if include_spurious:
            return self.tracker.all_events()
        return self.tracker.real_events()


__all__ = [
    "EventDetector",
    "QuantumReport",
    "ReportedEvent",
    "StageTimings",
]
