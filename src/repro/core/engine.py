"""The streaming event detector — legacy facade over the session API.

.. deprecated::
    :class:`EventDetector` is kept as a thin, stable facade for existing
    code, tests and benchmarks.  New code should use
    :func:`repro.api.open_session`, which exposes the same staged pipeline
    as a long-lived :class:`~repro.api.session.DetectorSession` with
    push-based subscription (``subscribe``), incremental ingestion and
    checkpoint/restore — capabilities this facade does not surface.

Every quantum runs the composable stage pipeline of
:mod:`repro.pipeline.stages`::

    extract -> AKG update -> maintain -> propagate -> rank -> report

``extract`` reduces the quantum's records to per-actor entity sets through
the configured :class:`~repro.extract.base.EntityExtractor` (tokenized
keywords by default);
``AKG update`` + ``maintain`` are the Section 3/5 graph and cluster
maintenance driven by :class:`~repro.akg.builder.AkgBuilder` (the maintain
share is measured via the maintainer's clustering clock); ``propagate``
drains the maintainer's typed :class:`~repro.core.changelog.ChangeLog` into
a :class:`~repro.core.changelog.ChangeBatch` and marks perturbed clusters
dirty; ``rank`` re-scores only those dirty clusters through the
:class:`~repro.core.incremental.IncrementalRanker` (a from-scratch oracle
mode exists for verification); ``report`` applies the Section 7.2.2 filters
through the incremental :class:`~repro.pipeline.report_index.ThresholdIndex`
and snapshots event lifecycles.  Per-stage wall times are surfaced on every
:class:`QuantumReport` as :class:`StageTimings` (and per-stage totals on the
detector), which ``python -m repro detect --timing`` prints as a breakdown.

Typical (legacy) use::

    from repro import DetectorConfig, EventDetector, Message

    detector = EventDetector(DetectorConfig(quantum_size=160))
    for message in stream:
        report = detector.process_message(message)
        if report is not None:                    # a quantum completed
            for event in report.reported:
                print(report.quantum, event.keywords, event.rank)
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.config import DetectorConfig
from repro.core.events import EventRecord
from repro.pipeline.reports import QuantumReport, ReportedEvent, StageTimings
from repro.stream.messages import Message
from repro.text.pos import NounTagger


class EventDetector:
    """Real-time emerging-event detection over a microblog stream.

    Thin facade over :class:`~repro.api.session.DetectorSession` — every
    attribute below delegates to the owned session, so code holding a
    detector and code holding a session observe the same live state.
    """

    def __init__(
        self,
        config: DetectorConfig | None = None,
        noun_tagger: NounTagger | None = None,
        tokenizer=None,
        extractor=None,
        oracle_ranking: bool = False,
        oracle_akg: bool = False,
    ) -> None:
        """``tokenizer`` overrides text tokenisation (e.g. a
        :meth:`repro.text.synonyms.SynonymNormalizer.wrap_tokenizer` wrapped
        one for the paper's synonym pre-processing); pre-tokenised messages
        bypass it.  ``extractor`` passes an explicit
        :class:`~repro.extract.base.EntityExtractor` (non-text workloads;
        normally selected via ``config.extractor``).  ``oracle_ranking``
        disables the incremental rank cache and re-ranks every live cluster
        from scratch each quantum; ``oracle_akg`` runs the AKG stage on the
        from-scratch oracle components of :mod:`repro.akg.oracle` — the
        verification / benchmarking baselines (also settable via
        :class:`~repro.config.DetectorConfig`).
        """
        # Imported here, not at module level: the facade sits above the api
        # layer while living in the core package the api layer builds on.
        from repro.api.session import DetectorSession

        self.session = DetectorSession(
            config,
            noun_tagger=noun_tagger,
            tokenizer=tokenizer,
            extractor=extractor,
            oracle_ranking=oracle_ranking,
            oracle_akg=oracle_akg,
        )

    # ------------------------------------------------------------- access

    @property
    def config(self) -> DetectorConfig:
        return self.session.config

    @property
    def tokenizer(self):
        return self.session.tokenizer

    @property
    def extractor(self):
        return self.session.extractor

    @property
    def noun_tagger(self) -> NounTagger:
        return self.session.noun_tagger

    @property
    def maintainer(self):
        return self.session.maintainer

    @property
    def builder(self):
        return self.session.builder

    @property
    def ranker(self):
        return self.session.ranker

    @property
    def tracker(self):
        return self.session.tracker

    @property
    def batcher(self):
        return self.session.batcher

    @property
    def ckg_stats(self):
        return self.session.ckg_stats

    @property
    def graph(self):
        """The live AKG (read-only by convention)."""
        return self.session.graph

    @property
    def registry(self):
        """The live SCP cluster registry (read-only by convention)."""
        return self.session.registry

    @property
    def current_quantum(self) -> int:
        return self.session.current_quantum

    @property
    def total_messages(self) -> int:
        return self.session.total_messages

    @property
    def total_seconds(self) -> float:
        return self.session.total_seconds

    @property
    def total_timings(self) -> StageTimings:
        return self.session.total_timings

    # ---------------------------------------------------------- ingestion

    def process_message(self, message: Message) -> Optional[QuantumReport]:
        """Feed one message; returns a report when a quantum completes."""
        return self.session.ingest(message)

    def process_stream(self, messages: Iterable[Message]) -> Iterator[QuantumReport]:
        """Consume a whole stream, yielding one report per quantum.

        A trailing partial quantum (fewer than ``quantum_size`` messages) is
        processed as a final short quantum — the batch-shaped contract this
        facade preserves; sessions keep the tail buffered instead.
        """
        return self.session.ingest_many(messages, flush=True)

    def process_quantum(self, messages: Sequence[Message]) -> QuantumReport:
        """Advance the window by one quantum of messages (staged pipeline)."""
        return self.session.process_quantum(messages)

    # ------------------------------------------------------------ summary

    def throughput(self) -> float:
        """Messages processed per second of detector CPU time so far."""
        return self.session.throughput()

    def events(self, include_spurious: bool = True) -> List[EventRecord]:
        """All events observed so far (optionally post-hoc filtered)."""
        return self.session.events(include_spurious)


__all__ = [
    "EventDetector",
    "QuantumReport",
    "ReportedEvent",
    "StageTimings",
]
