"""The paper's primary contribution: SCP cluster discovery and maintenance.

Layers (bottom up):

* :mod:`repro.core.atoms` — short-cycle (length 3/4) atom enumeration and the
  short-cycle property predicate (Section 4.1);
* :mod:`repro.core.clusters` — the cluster registry with edge-ownership and
  node-membership indexes (Lemma 6 bookkeeping);
* :mod:`repro.core.maintenance` — the incremental node/edge add/delete
  algorithms of Section 5, plus the from-scratch global oracle used to verify
  Theorem 3;
* :mod:`repro.core.ranking` — the Section 6 ranking function;
* :mod:`repro.core.events` — event lifecycle tracking over quanta;
* :mod:`repro.core.engine` — the streaming :class:`EventDetector`.
"""

from repro.core.atoms import (
    Atom,
    atoms_containing_edge,
    atoms_in_subgraph,
    edge_on_short_cycle,
    satisfies_scp,
)
from repro.core.clusters import Cluster, ClusterRegistry
from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.core.ranking import cluster_rank, minimum_rank
from repro.core.events import EventRecord, EventTracker
from repro.core.engine import EventDetector, QuantumReport
from repro.core.postprocess import (
    CorrelatedEventGroup,
    CorrelationPolicy,
    correlate_events,
)

__all__ = [
    "Atom",
    "atoms_containing_edge",
    "atoms_in_subgraph",
    "edge_on_short_cycle",
    "satisfies_scp",
    "Cluster",
    "ClusterRegistry",
    "ClusterMaintainer",
    "decompose_graph",
    "cluster_rank",
    "minimum_rank",
    "EventRecord",
    "EventTracker",
    "EventDetector",
    "QuantumReport",
    "CorrelatedEventGroup",
    "CorrelationPolicy",
    "correlate_events",
]
