"""The paper's primary contribution: SCP cluster discovery and maintenance.

Layers (bottom up):

* :mod:`repro.core.atoms` — short-cycle (length 3/4) atom enumeration and the
  short-cycle property predicate (Section 4.1);
* :mod:`repro.core.clusters` — the cluster registry with edge-ownership and
  node-membership indexes (Lemma 6 bookkeeping);
* :mod:`repro.core.maintenance` — the incremental node/edge add/delete
  algorithms of Section 5, plus the from-scratch global oracle used to verify
  Theorem 3;
* :mod:`repro.core.changelog` — typed change events and the per-quantum
  :class:`ChangeLog` / :class:`ChangeBatch` propagation contract;
* :mod:`repro.core.ranking` — the Section 6 ranking function;
* :mod:`repro.core.incremental` — the change-driven
  :class:`IncrementalRanker` (with a from-scratch oracle mode);
* :mod:`repro.core.events` — event lifecycle tracking over quanta;
* :mod:`repro.core.engine` — the streaming :class:`EventDetector`.
"""

from repro.core.atoms import (
    Atom,
    atoms_containing_edge,
    atoms_in_subgraph,
    edge_on_short_cycle,
    satisfies_scp,
)
from repro.core.changelog import (
    ChangeBatch,
    ChangeEvent,
    ChangeLog,
    ClusterCreated,
    ClusterDissolved,
    ClusterMerged,
    ClusterSplit,
    ClusterUpdated,
    EdgeWeightChanged,
    NodeWeightChanged,
)
from repro.core.clusters import Cluster, ClusterRegistry
from repro.core.incremental import IncrementalRanker, RankStats
from repro.core.maintenance import ClusterMaintainer, decompose_graph
from repro.core.ranking import cluster_rank, minimum_rank, rank_and_support
from repro.core.events import EventRecord, EventTracker
from repro.core.engine import EventDetector, QuantumReport, StageTimings
from repro.core.postprocess import (
    CorrelatedEventGroup,
    CorrelationPolicy,
    correlate_events,
)

__all__ = [
    "Atom",
    "atoms_containing_edge",
    "atoms_in_subgraph",
    "edge_on_short_cycle",
    "satisfies_scp",
    "ChangeBatch",
    "ChangeEvent",
    "ChangeLog",
    "ClusterCreated",
    "ClusterDissolved",
    "ClusterMerged",
    "ClusterSplit",
    "ClusterUpdated",
    "EdgeWeightChanged",
    "NodeWeightChanged",
    "Cluster",
    "ClusterRegistry",
    "ClusterMaintainer",
    "IncrementalRanker",
    "RankStats",
    "decompose_graph",
    "cluster_rank",
    "rank_and_support",
    "minimum_rank",
    "EventRecord",
    "EventTracker",
    "EventDetector",
    "QuantumReport",
    "StageTimings",
    "CorrelatedEventGroup",
    "CorrelationPolicy",
    "correlate_events",
]
