"""Typed change propagation between the maintenance and ranking layers.

The paper's per-quantum cost bound (Section 4.1) holds only if every stage
downstream of graph maintenance touches *changed* state, never the whole
graph.  This module is the contract that makes that possible: every mutation
the maintainer, the AKG builder or the graph performs is recorded as a typed
:class:`ChangeEvent` in a :class:`ChangeLog`; once per quantum the engine
drains the log into an immutable :class:`ChangeBatch` and hands it to the
:class:`~repro.core.incremental.IncrementalRanker`, which re-ranks exactly
the clusters the batch marks dirty (see DESIGN.md Section 2).

Event taxonomy
--------------
Structural (emitted by :class:`~repro.core.maintenance.ClusterMaintainer`):

* :class:`ClusterCreated` — a new cluster appeared (first short cycle);
* :class:`ClusterMerged` — clusters merged, the survivor id carries on;
* :class:`ClusterSplit` — a deletion fragmented a cluster, the original id
  survives on the largest fragment;
* :class:`ClusterDissolved` — a cluster lost its last short cycle;
* :class:`ClusterUpdated` — a cluster's node/edge set changed in place.

Weight deltas (emitted by :class:`~repro.akg.builder.AkgBuilder` and by the
:class:`~repro.graph.dynamic_graph.DynamicGraph` weight-listener hook):

* :class:`NodeWeightChanged` — a keyword's window support changed;
* :class:`EdgeWeightChanged` — an edge's correlation was refreshed to a
  different value (same-value refreshes are filtered at the source).

Both delta kinds are resolved to dirty cluster ids lazily, at drain time,
against the *current* registry: a node whose weight changed mid-quantum and
whose cluster then split still dirties the surviving fragments, and a delta
on an edge that was subsequently deleted resolves to nothing (the deletion's
own structural event already covers the affected cluster).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    ClassVar,
    Dict,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.graph.dynamic_graph import EdgeKey

Node = Hashable


@dataclass(frozen=True)
class ChangeEvent:
    """Base class of every typed change-log entry."""

    kind: ClassVar[str] = "change"


@dataclass(frozen=True)
class ClusterCreated(ChangeEvent):
    kind: ClassVar[str] = "created"
    cluster_id: int


@dataclass(frozen=True)
class ClusterMerged(ChangeEvent):
    """``absorbed`` ids are retired; ``survivor`` owns their state."""

    kind: ClassVar[str] = "merged"
    survivor: int
    absorbed: Tuple[int, ...]


@dataclass(frozen=True)
class ClusterSplit(ChangeEvent):
    """``original`` keeps the largest fragment; ``fragments`` are new ids."""

    kind: ClassVar[str] = "split"
    original: int
    fragments: Tuple[int, ...]


@dataclass(frozen=True)
class ClusterDissolved(ChangeEvent):
    kind: ClassVar[str] = "dissolved"
    cluster_id: int


@dataclass(frozen=True)
class ClusterUpdated(ChangeEvent):
    kind: ClassVar[str] = "updated"
    cluster_id: int


@dataclass(frozen=True)
class NodeWeightChanged(ChangeEvent):
    """A keyword's window support moved from ``old`` to ``new``."""

    kind: ClassVar[str] = "node-weight"
    node: Node
    old: float
    new: float


@dataclass(frozen=True)
class EdgeWeightChanged(ChangeEvent):
    """An edge's correlation moved from ``old`` to ``new`` (canonical key)."""

    kind: ClassVar[str] = "edge-weight"
    edge: EdgeKey
    old: float
    new: float


ChangeListener = Callable[[ChangeEvent], None]


class ChangeLog:
    """Append-only log of typed change events, drained once per quantum.

    The log is deliberately dumb: recording is an O(1) append (plus optional
    listener fan-out) so it never slows the maintenance hot path, and all
    interpretation — absorption attribution, dirty-cluster resolution — lives
    on the drained :class:`ChangeBatch`.
    """

    __slots__ = ("_events", "_listeners")

    def __init__(self) -> None:
        self._events: List[ChangeEvent] = []
        self._listeners: List[ChangeListener] = []

    def record(self, event: ChangeEvent) -> None:
        self._events.append(event)
        if self._listeners:
            for listener in self._listeners:
                listener(event)

    def subscribe(self, listener: ChangeListener) -> None:
        """Call ``listener`` synchronously on every future :meth:`record`."""
        self._listeners.append(listener)

    def drain(self) -> "ChangeBatch":
        """Return the accumulated events as a batch and clear the log."""
        events, self._events = self._events, []
        return ChangeBatch(tuple(events))

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def peek(self) -> Tuple[ChangeEvent, ...]:
        """The pending events without clearing them (tests, debugging)."""
        return tuple(self._events)


@dataclass(frozen=True)
class ChangeBatch:
    """One quantum's worth of drained change events.

    The batch is the unit of propagation between the maintenance layer and
    the ranker; it is immutable so it can be shared by the ranker, the event
    tracker, and test oracles without defensive copies.
    """

    events: Tuple[ChangeEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    # -------------------------------------------------------- interpretation

    def absorbed_into(self) -> Dict[int, int]:
        """Retired cluster id -> surviving cluster id, for every merge."""
        out: Dict[int, int] = {}
        for event in self.events:
            if isinstance(event, ClusterMerged):
                for cid in event.absorbed:
                    out[cid] = event.survivor
        return out

    def retired_ids(self) -> Set[int]:
        """Cluster ids that stopped existing: dissolved or absorbed."""
        out: Set[int] = set()
        for event in self.events:
            if isinstance(event, ClusterDissolved):
                out.add(event.cluster_id)
            elif isinstance(event, ClusterMerged):
                out.update(event.absorbed)
        return out

    def dirty_clusters(self, registry) -> Set[int]:
        """Resolve the batch to the set of live cluster ids needing re-rank.

        Structural events name their clusters directly; weight deltas are
        resolved through the registry's node/edge indexes *now*, so the
        answer reflects the end-of-quantum decomposition regardless of the
        order mutations happened in.  Ids no longer live are dropped.
        """
        dirty: Set[int] = set()
        for event in self.events:
            if isinstance(event, ClusterCreated):
                dirty.add(event.cluster_id)
            elif isinstance(event, ClusterUpdated):
                dirty.add(event.cluster_id)
            elif isinstance(event, ClusterMerged):
                dirty.add(event.survivor)
            elif isinstance(event, ClusterSplit):
                dirty.add(event.original)
                dirty.update(event.fragments)
            elif isinstance(event, NodeWeightChanged):
                dirty.update(registry.clusters_of_node(event.node))
            elif isinstance(event, EdgeWeightChanged):
                owner: Optional[int] = registry.cluster_of_edge(*event.edge)
                if owner is not None:
                    dirty.add(owner)
        return {cid for cid in dirty if cid in registry}


__all__ = [
    "ChangeEvent",
    "ClusterCreated",
    "ClusterMerged",
    "ClusterSplit",
    "ClusterDissolved",
    "ClusterUpdated",
    "NodeWeightChanged",
    "EdgeWeightChanged",
    "ChangeLog",
    "ChangeBatch",
]
