"""Event ranking from local cluster properties (Section 6).

The rank of a cluster C = (V, E) with |V| = n is::

    rank(C) = (1/n) * W . C . 1

where ``W`` is the 1-by-n node-weight vector (w_i = number of user ids
associated with keyword i in the window), ``C`` the n-by-n edge-correlation
matrix with ``C_ii = 1``, ``C_ij = EC(i, j)`` for cluster edges and 0
otherwise, and ``1`` the all-ones column vector.  Expanding the product gives
the closed form used by :func:`cluster_rank`::

    rank(C) = ( sum_i w_i  +  sum_{(i,j) in E} EC(i,j) * (w_i + w_j) ) / n

which is computable in O(|V| + |E|) from purely local cluster state — the
point of the paper's design: no global information is needed, yet the ranking
is globally comparable.  Strong correlation, density and support each push
the rank up; the 1/n normalization stops rank from growing monotonically with
cluster size.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping, Tuple

import numpy as np

from repro.errors import ClusterError
from repro.graph.dynamic_graph import EdgeKey

Node = Hashable


def cluster_rank(
    nodes: Iterable[Node],
    edges: Iterable[EdgeKey],
    node_weights: Mapping[Node, float],
    edge_correlations: Mapping[EdgeKey, float],
) -> float:
    """Rank of one cluster from its local properties (closed form).

    Parameters
    ----------
    nodes, edges:
        The cluster's node set and canonical edge keys.
    node_weights:
        ``w_i``: number of user ids supporting each keyword in the window.
    edge_correlations:
        ``EC(i, j)`` per cluster edge (canonical key).

    Raises
    ------
    ClusterError
        If a node or edge has no weight/correlation entry — ranking a
        cluster with missing support data indicates an upstream bug.
    """
    return rank_and_support(nodes, edges, node_weights, edge_correlations)[0]


def rank_and_support(
    nodes: Iterable[Node],
    edges: Iterable[EdgeKey],
    node_weights: Mapping[Node, float],
    edge_correlations: Mapping[EdgeKey, float],
) -> Tuple[float, float]:
    """``(rank, support)`` of one cluster in a single pass.

    ``support`` is the plain weight sum ``sum_i w_i`` the detector reports
    next to the rank; computing both together halves the per-cluster work of
    the rank stage, which matters because this is the inner loop of the
    :class:`~repro.core.incremental.IncrementalRanker`.

    Both sums run through :func:`math.fsum`, whose exactly-rounded result is
    independent of summand order.  That makes the rank a pure function of
    the cluster's *content* rather than of set-iteration history — float
    addition is not associative in the last bit, and the checkpoint/restore
    guarantee (a resumed session ranks bit-identically, DESIGN.md
    Section 6) needs the same value on both sides, including across
    processes where hash randomization reorders set iteration.  Each edge
    term is itself order-safe: float addition and multiplication are
    commutative, only regrouping changes results.
    """
    node_list = list(nodes)
    if not node_list:
        raise ClusterError("cannot rank an empty cluster")
    try:
        support = math.fsum(node_weights[n] for n in node_list)
        total = math.fsum(
            edge_correlations[(u, v)] * (node_weights[u] + node_weights[v])
            for u, v in edges
        ) + support
    except KeyError as exc:
        raise ClusterError(f"missing weight/correlation for {exc.args[0]!r}") from exc
    return total / len(node_list), support


def rank_matrices(
    nodes: Iterable[Node],
    edges: Iterable[EdgeKey],
    node_weights: Mapping[Node, float],
    edge_correlations: Mapping[EdgeKey, float],
) -> Tuple[np.ndarray, np.ndarray]:
    """The explicit (W, C) matrices of Section 6, in a fixed node order.

    Provided for inspection and for the test that the closed form equals
    ``(W @ C @ 1) / n``.
    """
    node_list = sorted(map(str, nodes))
    index = {n: i for i, n in enumerate(node_list)}
    n = len(node_list)
    weights = np.zeros((1, n))
    for node in nodes:
        weights[0, index[str(node)]] = node_weights[node]
    corr = np.eye(n)
    for u, v in edges:
        i, j = index[str(u)], index[str(v)]
        corr[i, j] = corr[j, i] = edge_correlations[(u, v)]
    return weights, corr


def rank_from_matrices(weights: np.ndarray, corr: np.ndarray) -> float:
    """``(W @ C @ 1) / n`` — the literal Section 6 formula."""
    n = weights.shape[1]
    if n == 0:
        raise ClusterError("cannot rank an empty cluster")
    ones = np.ones((n, 1))
    return float((weights @ corr @ ones)[0, 0]) / n


def minimum_rank(theta: int, gamma: float) -> float:
    """Lower bound on the rank of any reportable cluster.

    A cluster node needed >= ``theta`` user ids to enter the high state, and
    every SCP cluster on N nodes is biconnected and therefore has at least N
    edges, each with correlation >= ``gamma``.  Substituting these minima in
    the closed form gives ``theta * (1 + 2 * gamma)`` independent of N.  The
    spurious-event filter of Section 7.2.2 discards clusters ranked below a
    multiple of this bound.
    """
    return theta * (1.0 + 2.0 * gamma)


__all__ = [
    "cluster_rank",
    "rank_and_support",
    "rank_matrices",
    "rank_from_matrices",
    "minimum_rank",
]
