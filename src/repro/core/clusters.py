"""Cluster records and the registry that tracks edge ownership.

Clusters discovered under the short-cycle property are **edge-disjoint**: by
Lemma 6, two aMQCs sharing an edge are merged, so every AKG edge belongs to
at most one cluster.  A *node* may belong to several clusters (two clusters
may touch at a node without sharing an edge — Figure 3's bowtie).

The registry maintains three indexes kept consistent by construction:

* ``clusters``: cluster id -> :class:`Cluster`;
* ``edge_to_cluster``: canonical edge key -> owning cluster id;
* ``node_to_clusters``: node -> set of cluster ids containing it.

Identity policy for event continuity: when clusters merge, the id of the
largest (then oldest) participant survives; when a cluster splits, the
largest fragment keeps the id.  This keeps event histories stable through
the evolution the paper describes in Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Set

from repro.errors import ClusterError
from repro.graph.dynamic_graph import EdgeKey, edge_key

Node = Hashable

UnclusteredListener = Callable[[Node], None]
"""Callback fired when a node's cluster-membership count drops to zero.

The AKG builder uses this to learn, in O(transitions) instead of an
O(graph) sweep, which nodes may have become eligible for the Section 3.1
lazy drop (DESIGN.md Section 5).  The notification is a *hint*: it may fire
for a node that is immediately re-clustered in the same operation (a split's
dissolve/recreate cycle), so consumers must re-verify membership before
acting on it."""


@dataclass
class Cluster:
    """One SCP cluster: a maximal edge-glued union of short-cycle atoms."""

    cluster_id: int
    nodes: Set[Node] = field(default_factory=set)
    edges: Set[EdgeKey] = field(default_factory=set)
    born_quantum: int = 0

    @property
    def size(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def density(self) -> float:
        """Fraction of possible node pairs that are edges (1.0 = clique)."""
        n = len(self.nodes)
        if n < 2:
            return 0.0
        return 2.0 * len(self.edges) / (n * (n - 1))

    def adjacency(self) -> Dict[Node, Set[Node]]:
        """Adjacency restricted to the cluster's own edges."""
        adj: Dict[Node, Set[Node]] = {n: set() for n in self.nodes}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def __repr__(self) -> str:
        return (
            f"Cluster(id={self.cluster_id}, nodes={sorted(map(repr, self.nodes))},"
            f" |E|={len(self.edges)})"
        )


class ClusterRegistry:
    """Consistent store of the current cluster decomposition."""

    def __init__(self) -> None:
        self._clusters: Dict[int, Cluster] = {}
        self._edge_to_cluster: Dict[EdgeKey, int] = {}
        self._node_to_clusters: Dict[Node, Set[int]] = {}
        # Plain integer id allocator (not itertools.count) so the registry
        # can be checkpointed and resumed with the identical id sequence —
        # event identity across a restore depends on it.
        self._next_id = 1
        self._unclustered_listeners: List[UnclusteredListener] = []

    def add_unclustered_listener(self, listener: UnclusteredListener) -> None:
        """Subscribe to clustered -> unclustered node transitions."""
        self._unclustered_listeners.append(listener)

    def _notify_unclustered(self, node: Node) -> None:
        for listener in self._unclustered_listeners:
            listener(node)

    # ------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._clusters)

    def __iter__(self) -> Iterator[Cluster]:
        return iter(self._clusters.values())

    def __contains__(self, cluster_id: int) -> bool:
        return cluster_id in self._clusters

    def get(self, cluster_id: int) -> Cluster:
        try:
            return self._clusters[cluster_id]
        except KeyError:
            raise ClusterError(f"no such cluster: {cluster_id}") from None

    def cluster_ids(self) -> List[int]:
        return list(self._clusters)

    def cluster_of_edge(self, u: Node, v: Node) -> Optional[int]:
        return self._edge_to_cluster.get(edge_key(u, v))

    def clusters_of_node(self, node: Node) -> Set[int]:
        return set(self._node_to_clusters.get(node, ()))

    def decomposition(self) -> Set[frozenset]:
        """Order-free snapshot: the set of frozenset edge sets, one per
        cluster.  Used to compare incremental output against the global
        oracle (Theorem 3)."""
        return {frozenset(c.edges) for c in self._clusters.values()}

    # ------------------------------------------------------------ mutation

    def new_cluster(
        self,
        nodes: Iterable[Node],
        edges: Iterable[EdgeKey],
        born_quantum: int = 0,
        cluster_id: int | None = None,
    ) -> Cluster:
        """Register a fresh cluster.  Edges must be unowned."""
        if cluster_id is not None:
            cid = cluster_id
        else:
            cid = self._next_id
            self._next_id += 1
        if cid in self._clusters:
            raise ClusterError(f"cluster id already in use: {cid}")
        cluster = Cluster(cid, set(nodes), set(edges), born_quantum)
        for e in cluster.edges:
            if e in self._edge_to_cluster:
                raise ClusterError(
                    f"edge {e!r} already owned by cluster "
                    f"{self._edge_to_cluster[e]}"
                )
            self._edge_to_cluster[e] = cid
        for n in cluster.nodes:
            self._node_to_clusters.setdefault(n, set()).add(cid)
        self._clusters[cid] = cluster
        return cluster

    def absorb(
        self,
        target_id: int,
        nodes: Iterable[Node],
        edges: Iterable[EdgeKey],
    ) -> Cluster:
        """Add nodes/edges to an existing cluster (edge growth, Lemma 6)."""
        cluster = self.get(target_id)
        for e in edges:
            owner = self._edge_to_cluster.get(e)
            if owner is not None and owner != target_id:
                raise ClusterError(
                    f"edge {e!r} owned by cluster {owner}, cannot absorb "
                    f"into {target_id}"
                )
            self._edge_to_cluster[e] = target_id
            cluster.edges.add(e)
        for n in nodes:
            cluster.nodes.add(n)
            self._node_to_clusters.setdefault(n, set()).add(target_id)
        return cluster

    def merge(self, cluster_ids: Iterable[int]) -> Cluster:
        """Merge the given clusters into one; survivor = largest, then oldest.

        Returns the surviving cluster.  Implements Lemma 6's edge-sharing
        merge; callers add any new atom nodes/edges with :meth:`absorb`.
        """
        ids = sorted(set(cluster_ids))
        if not ids:
            raise ClusterError("merge requires at least one cluster id")
        clusters = [self.get(cid) for cid in ids]
        survivor = max(clusters, key=lambda c: (len(c.nodes), -c.cluster_id))
        for cluster in clusters:
            if cluster is survivor:
                continue
            for e in cluster.edges:
                self._edge_to_cluster[e] = survivor.cluster_id
            survivor.edges |= cluster.edges
            for n in cluster.nodes:
                self._node_to_clusters[n].discard(cluster.cluster_id)
                self._node_to_clusters[n].add(survivor.cluster_id)
                survivor.nodes.add(n)
            survivor.born_quantum = min(
                survivor.born_quantum, cluster.born_quantum
            )
            del self._clusters[cluster.cluster_id]
        return survivor

    def release_edges(
        self, cluster_id: int, edges: Iterable[EdgeKey]
    ) -> None:
        """Drop edges from a cluster (they left the graph), keeping the
        edge-ownership index consistent."""
        cluster = self.get(cluster_id)
        for e in edges:
            if e in cluster.edges:
                cluster.edges.discard(e)
                if self._edge_to_cluster.get(e) == cluster_id:
                    del self._edge_to_cluster[e]

    def release_node(self, cluster_id: int, node: Node) -> None:
        """Drop a node from a cluster (it left the graph), keeping the
        node-membership index consistent."""
        cluster = self.get(cluster_id)
        cluster.nodes.discard(node)
        members = self._node_to_clusters.get(node)
        if members is not None:
            members.discard(cluster_id)
            if not members:
                del self._node_to_clusters[node]
                self._notify_unclustered(node)

    def dissolve(self, cluster_id: int) -> Cluster:
        """Remove a cluster entirely, releasing its edges and nodes."""
        cluster = self.get(cluster_id)
        for e in cluster.edges:
            if self._edge_to_cluster.get(e) == cluster_id:
                del self._edge_to_cluster[e]
        for n in cluster.nodes:
            members = self._node_to_clusters.get(n)
            if members is not None:
                members.discard(cluster_id)
                if not members:
                    del self._node_to_clusters[n]
                    self._notify_unclustered(n)
        del self._clusters[cluster_id]
        return cluster

    def replace(
        self,
        cluster_id: int,
        fragments: List[tuple[Set[Node], Set[EdgeKey]]],
        quantum: int = 0,
    ) -> List[Cluster]:
        """Replace a cluster by zero or more fragments (deletion re-glue).

        The largest fragment inherits the original id and birth quantum so
        event identity survives splits; remaining fragments become new
        clusters born at ``quantum``.
        """
        original = self.dissolve(cluster_id)
        if not fragments:
            return []
        ordered = sorted(
            fragments, key=lambda f: (len(f[0]), sorted(map(repr, f[0]))),
            reverse=True,
        )
        out: List[Cluster] = []
        first_nodes, first_edges = ordered[0]
        out.append(
            self.new_cluster(
                first_nodes,
                first_edges,
                born_quantum=original.born_quantum,
                cluster_id=cluster_id,
            )
        )
        for nodes, edges in ordered[1:]:
            out.append(self.new_cluster(nodes, edges, born_quantum=quantum))
        return out

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Checkpointable snapshot: clusters (insertion order) + id cursor.

        The edge/node indexes are derivable from the clusters, so only the
        clusters themselves and the id allocator are recorded; cluster order
        is preserved so a restored registry iterates identically.
        """
        return {
            "next_id": self._next_id,
            "clusters": [
                {
                    "id": c.cluster_id,
                    "nodes": sorted(c.nodes, key=repr),
                    "edges": sorted((list(e) for e in c.edges), key=repr),
                    "born_quantum": c.born_quantum,
                }
                for c in self._clusters.values()
            ],
        }

    def from_state(self, state: dict) -> None:
        """Rebuild the registry in place from :meth:`to_state` output.

        Listeners stay subscribed but are not fired — a restore recreates
        the checkpointed decomposition, it does not transition any node.
        """
        self._clusters = {}
        self._edge_to_cluster = {}
        self._node_to_clusters = {}
        self._next_id = state["next_id"]
        for record in state["clusters"]:
            cluster = Cluster(
                record["id"],
                set(record["nodes"]),
                {tuple(e) for e in record["edges"]},
                record["born_quantum"],
            )
            self._clusters[cluster.cluster_id] = cluster
            for e in cluster.edges:
                self._edge_to_cluster[e] = cluster.cluster_id
            for n in cluster.nodes:
                self._node_to_clusters.setdefault(n, set()).add(
                    cluster.cluster_id
                )

    # ----------------------------------------------------------- integrity

    def check_integrity(self) -> None:
        """Raise :class:`ClusterError` if any index is inconsistent.

        Intended for tests; O(total cluster size).
        """
        for cid, cluster in self._clusters.items():
            if cluster.cluster_id != cid:
                raise ClusterError(f"id mismatch for cluster {cid}")
            for e in cluster.edges:
                if self._edge_to_cluster.get(e) != cid:
                    raise ClusterError(f"edge index wrong for {e!r} in {cid}")
                for endpoint in e:
                    if endpoint not in cluster.nodes:
                        raise ClusterError(
                            f"edge {e!r} endpoint missing from cluster {cid}"
                        )
            for n in cluster.nodes:
                if cid not in self._node_to_clusters.get(n, ()):
                    raise ClusterError(f"node index wrong for {n!r} in {cid}")
        for e, cid in self._edge_to_cluster.items():
            if cid not in self._clusters or e not in self._clusters[cid].edges:
                raise ClusterError(f"dangling edge index entry {e!r} -> {cid}")
        for n, cids in self._node_to_clusters.items():
            for cid in cids:
                if cid not in self._clusters or n not in self._clusters[cid].nodes:
                    raise ClusterError(f"dangling node index entry {n!r} -> {cid}")


__all__ = ["Cluster", "ClusterRegistry"]
