"""Short-cycle atoms: the building blocks of SCP clusters (Section 4.1).

The short-cycle property (SCP) requires every cluster edge to lie on a cycle
of length at most 4 **within the cluster**.  We call each such minimal cycle
(a triangle or a quadrilateral) an *atom*.  The implementation's global model
— clusters are maximal unions of atoms glued transitively along shared edges
— is what the Section 5 incremental algorithms maintain (see DESIGN.md).

The enumeration helpers here are the only place cycle structure is computed;
both the incremental maintainer and the global oracle build on them.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    NamedTuple,
    Set,
)

from repro.graph.dynamic_graph import DynamicGraph, EdgeKey, edge_key

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]


class Atom(NamedTuple):
    """A single short cycle: its node set and its (canonical) edge set."""

    nodes: FrozenSet[Node]
    edges: FrozenSet[EdgeKey]

    @property
    def length(self) -> int:
        return len(self.edges)


def _adjacency_sets(graph: "DynamicGraph | Adjacency") -> Dict[Node, Set[Node]]:
    if isinstance(graph, DynamicGraph):
        return {n: set(nbrs) for n, nbrs in graph.adjacency().items()}
    return {n: set(nbrs) for n, nbrs in graph.items()}


def _triangle(u: Node, v: Node, c: Node) -> Atom:
    return Atom(
        frozenset((u, v, c)),
        frozenset((edge_key(u, v), edge_key(u, c), edge_key(v, c))),
    )


def _quad(u: Node, x: Node, y: Node, v: Node) -> Atom:
    """4-cycle u - x - y - v - u (edges (u,x), (x,y), (y,v), (v,u))."""
    return Atom(
        frozenset((u, x, y, v)),
        frozenset(
            (edge_key(u, x), edge_key(x, y), edge_key(y, v), edge_key(v, u))
        ),
    )


def atoms_containing_edge(graph: DynamicGraph, u: Node, v: Node) -> List[Atom]:
    """All triangles and 4-cycles of ``graph`` that contain edge ``(u, v)``.

    This is the core of EdgeAddition (Section 5.2): every *new* short cycle
    created by inserting ``(u, v)`` contains that edge, so enumerating these
    atoms finds exactly the clusters the new edge creates or merges.

    Triangles: one per common neighbour of ``u`` and ``v``.
    4-cycles:  one per pair ``x in N(u)``, ``y in N(v)`` with ``x != y``,
    ``x != v``, ``y != u`` and ``(x, y)`` an edge.
    """
    atoms: List[Atom] = []
    adj_u = graph.neighbor_weights(u)
    adj_v = graph.neighbor_weights(v)
    small, large = (adj_u, adj_v) if len(adj_u) <= len(adj_v) else (adj_v, adj_u)
    for c in small:
        if c in large:
            atoms.append(_triangle(u, v, c))
    seen: Set[FrozenSet[EdgeKey]] = set()
    for x in adj_u:
        if x == v:
            continue
        adj_x = graph.neighbor_weights(x)
        for y in adj_v:
            if y == u or y == x or y not in adj_x:
                continue
            atom = _quad(u, x, y, v)
            if atom.edges not in seen:
                seen.add(atom.edges)
                atoms.append(atom)
    return atoms


def atoms_in_subgraph(
    adjacency: Mapping[Node, Iterable[Node]],
    allowed_edges: Set[EdgeKey] | None = None,
) -> List[Atom]:
    """All triangle and 4-cycle atoms of a (small) subgraph.

    ``adjacency`` may contain edges outside ``allowed_edges``; when the filter
    is given only atoms built entirely from allowed edges are returned.  Used
    by deletion re-gluing (Section 5.3/5.4), where cycles must lie *within the
    cluster's own edge set*.
    """
    adj = _adjacency_sets(adjacency)
    if allowed_edges is not None:
        filtered: Dict[Node, Set[Node]] = {n: set() for n in adj}
        for a, b in allowed_edges:
            if a in adj and b in adj[a]:
                filtered.setdefault(a, set()).add(b)
                filtered.setdefault(b, set()).add(a)
        adj = filtered

    atoms: List[Atom] = []
    order = {n: i for i, n in enumerate(adj)}

    # Triangles: enumerate with an ordering so each is found once.
    for u in adj:
        for v in adj[u]:
            if order[v] <= order[u]:
                continue
            for c in adj[u] & adj[v]:
                if order[c] > order[v]:
                    atoms.append(_triangle(u, v, c))

    # 4-cycles: canonical form picks the minimum-order node as anchor and
    # orients towards the smaller neighbour, so each cycle appears once.
    seen: Set[FrozenSet[EdgeKey]] = set()
    for u in adj:
        for x in adj[u]:
            if order[x] <= order[u]:
                continue
            for y in adj[x]:
                if y == u or order[y] <= order[u]:
                    continue
                for v in adj[y]:
                    if v == x or order[v] <= order[u] or v not in adj[u]:
                        continue
                    atom = _quad(u, x, y, v)
                    if atom.edges not in seen:
                        seen.add(atom.edges)
                        atoms.append(atom)
    return atoms


def edge_on_short_cycle(
    adjacency: Mapping[Node, Set[Node]],
    u: Node,
    v: Node,
    allowed_edges: Set[EdgeKey] | None = None,
) -> bool:
    """True iff edge ``(u, v)`` lies on a cycle of length <= 4.

    Implements the paper's cycle check: besides the direct edge there must be
    another path of length 2 (common neighbour) or 3 between the endpoints,
    optionally restricted to ``allowed_edges`` (the cluster's own edges).
    """

    def has(a: Node, b: Node) -> bool:
        if b not in adjacency.get(a, ()):  # type: ignore[arg-type]
            return False
        return allowed_edges is None or edge_key(a, b) in allowed_edges

    nbrs_u = [n for n in adjacency.get(u, ()) if n != v and has(u, n)]
    nbrs_v = {n for n in adjacency.get(v, ()) if n != u and has(v, n)}
    for x in nbrs_u:
        if x in nbrs_v:  # path u - x - v
            return True
    for x in nbrs_u:
        for y in adjacency.get(x, ()):  # path u - x - y - v
            if y != u and y != v and y in nbrs_v and has(x, y):
                return True
    return False


def satisfies_scp(
    adjacency: Mapping[Node, Set[Node]], edges: Iterable[EdgeKey]
) -> bool:
    """Check the short-cycle property for an edge set (Section 4.1).

    True iff every edge in ``edges`` is on a cycle of length <= 4 composed
    only of edges from the same set.
    """
    edge_set = set(edges)
    return all(
        edge_on_short_cycle(adjacency, u, v, allowed_edges=edge_set)
        for u, v in edge_set
    )


__all__ = [
    "Atom",
    "atoms_containing_edge",
    "atoms_in_subgraph",
    "edge_on_short_cycle",
    "satisfies_scp",
]
