"""Dense-integer interning with an optional persistent 64-bit hash column.

The batched backend (DESIGN.md Section 9) replaces per-message object churn
with integer columns: every entity token and every actor id is interned to a
small dense int once, and all window bookkeeping — pair multiplicities,
distinct-id sets, mini-sketches, shard routing — happens on those ints.
The interner also owns the object's expensive derived hash (the MinHash
base hash for actors, the shard-routing hash for entities), computed exactly
once per interned object and stored in a column parallel to the id space,
so the hot loop never re-hashes a recurring object.

Ids are recycled through a free list: when the window reports that an actor
vanished (``SlideDelta.vanished_users``) or an entity emptied, its slot is
released and reused by the next new object.  The id space therefore tracks
the *live window population*, the interned-path analogue of the reference
MinHasher's bounded memo — the cache-bound tests assert exactly this.
Live ids stay below ``capacity`` = the high-water mark of simultaneously
live objects, which keeps ids packable into the low 32 bits of a combined
``(entity << 32) | actor`` pair key.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, Optional

_ID_LIMIT = 1 << 32


class Interner:
    """Hashable-object <-> dense-int table with free-list recycling.

    The mutable internals (``ids``, ``objs``, ``hashes``) are deliberately
    public: the per-token extraction loop reads ``ids`` directly and the
    sketch kernel gathers from ``hashes`` — attribute indirection in the hot
    loop is exactly the overhead the batched backend exists to remove.
    """

    __slots__ = ("ids", "objs", "hashes", "_free", "_hash_fn")

    def __init__(
        self, hash_fn: Optional[Callable[[Hashable], int]] = None
    ) -> None:
        self.ids: dict = {}
        self.objs: List = []
        self.hashes: Optional[List[int]] = [] if hash_fn is not None else None
        self._free: List[int] = []
        self._hash_fn = hash_fn

    def intern(self, obj: Hashable) -> int:
        """The object's dense id, allocating (and hashing) on first sight."""
        ids = self.ids
        slot = ids.get(obj)
        if slot is not None:
            return slot
        free = self._free
        if free:
            slot = free.pop()
            self.objs[slot] = obj
            if self.hashes is not None:
                self.hashes[slot] = self._hash_fn(obj)
        else:
            slot = len(self.objs)
            if slot >= _ID_LIMIT:
                raise OverflowError(
                    "interner id space exhausted (2**32 live objects)"
                )
            self.objs.append(obj)
            if self.hashes is not None:
                self.hashes.append(self._hash_fn(obj))
        ids[obj] = slot
        return slot

    def id_of(self, obj: Hashable) -> Optional[int]:
        """The object's id, or None when it is not (or no longer) interned."""
        return self.ids.get(obj)

    def obj_of(self, slot: int):
        """The object occupying ``slot`` (None for released slots)."""
        return self.objs[slot]

    def release(self, slots: Iterable[int]) -> None:
        """Free ids for reuse; their objects re-intern to fresh slots."""
        objs = self.objs
        ids = self.ids
        free = self._free
        for slot in slots:
            del ids[objs[slot]]
            objs[slot] = None
            free.append(slot)

    def clear(self) -> None:
        """Drop every mapping (hashes recompute on demand after this)."""
        self.ids.clear()
        self.objs.clear()
        if self.hashes is not None:
            self.hashes.clear()
        self._free.clear()

    @property
    def live_count(self) -> int:
        """Number of currently interned objects (the memo-bound metric)."""
        return len(self.ids)

    @property
    def capacity(self) -> int:
        """Allocated slot count — the high-water mark of live objects."""
        return len(self.objs)


__all__ = ["Interner"]
