"""The stream record consumed by the detector.

A message is one actor–payload record of a dynamic stream.  For the
paper's microblog workload the actor is the tweet author and the payload is
raw ``text`` (tokenised on demand) or pre-extracted ``tokens``; for
non-text workloads — co-purchase baskets, citation lists, structured logs —
the payload is a ``fields`` mapping read by a structured extractor
(:mod:`repro.extract`).  The engine never looks inside the payload itself:
the configured :class:`~repro.extract.base.EntityExtractor` reduces it to
entity tokens, and correlation is computed over ``user_id`` (the actor id).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping, Optional, Tuple

from repro.errors import StreamError


@dataclass(frozen=True, slots=True)
class Message:
    """One stream record.

    Attributes
    ----------
    user_id:
        Stable id of the acting entity (tweet author, buyer, citing paper).
        Correlation is computed over actor ids, not record ids, to resist
        single-actor flooding (Section 3.2).
    tokens:
        Pre-extracted entity tokens (for text workloads: already
        lower-cased, stop words removed).  When None, ``text`` or
        ``fields`` must carry the payload.
    text:
        Raw message text; tokenised by the keyword extractor.
    fields:
        Structured payload (field name -> scalar or list of values) read by
        the structured-field and edge-stream extractors.  Messages carrying
        a ``fields`` dict are not hashable (the payload is mutable); the
        engine only ever holds them in lists.
    timestamp:
        Optional source timestamp; the algorithm orders messages by
        arrival, so this is metadata only.
    """

    user_id: Hashable
    tokens: Optional[Tuple[str, ...]] = None
    text: Optional[str] = None
    fields: Optional[Mapping[str, Any]] = None
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tokens is None and self.text is None and self.fields is None:
            raise StreamError("message needs tokens, text, or fields")

    def keyword_tuple(self, tokenizer) -> Tuple[str, ...]:
        """The message's keywords, tokenising ``text`` when needed.

        Field-only records have no text payload and yield no keywords —
        feeding a structured stream through the keyword extractor is a
        no-op, not an error.
        """
        if self.tokens is not None:
            return self.tokens
        if self.text is None:
            return ()
        return tuple(tokenizer(self.text))


__all__ = ["Message"]
