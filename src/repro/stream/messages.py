"""The message record consumed by the detector.

A message is what a microblog post reduces to for this algorithm: a user id
and a bag of keywords.  Messages may carry raw ``text`` (tokenised on
demand) or pre-extracted ``tokens`` (the fast path used by the synthetic
trace generators and the throughput benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from repro.errors import StreamError


@dataclass(frozen=True, slots=True)
class Message:
    """One microblog message.

    Attributes
    ----------
    user_id:
        Stable id of the author; correlation is computed over user ids, not
        message ids, to resist single-user flooding (Section 3.2).
    tokens:
        Pre-extracted keywords (already lower-cased, stop words removed).
        When None, ``text`` must be set and is tokenised by the engine.
    text:
        Raw message text; optional when ``tokens`` is given.
    timestamp:
        Optional source timestamp; the algorithm orders messages by arrival,
        so this is metadata only.
    """

    user_id: Hashable
    tokens: Optional[Tuple[str, ...]] = None
    text: Optional[str] = None
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.tokens is None and self.text is None:
            raise StreamError("message needs tokens or text")

    def keyword_tuple(self, tokenizer) -> Tuple[str, ...]:
        """The message's keywords, tokenising ``text`` when needed."""
        if self.tokens is not None:
            return self.tokens
        return tuple(tokenizer(self.text))


__all__ = ["Message"]
