"""Trace persistence: JSON-lines reading and writing of message streams.

One JSON object per line: ``{"u": user_id, "k": [tokens...]}`` with optional
``"t"`` (text) and ``"ts"`` (timestamp).  The compact keys keep multi-million
message traces manageable on disk.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import StreamError
from repro.stream.messages import Message


def write_jsonl_trace(path: "str | Path", messages: Iterable[Message]) -> int:
    """Write messages to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for message in messages:
            record = {"u": message.user_id}
            if message.tokens is not None:
                record["k"] = list(message.tokens)
            if message.text is not None:
                record["t"] = message.text
            if message.timestamp is not None:
                record["ts"] = message.timestamp
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def read_jsonl_trace(path: "str | Path") -> Iterator[Message]:
    """Stream messages back from a JSONL trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StreamError(f"{path}:{line_no}: invalid JSON") from exc
            if "u" not in record:
                raise StreamError(f"{path}:{line_no}: missing user id")
            tokens = record.get("k")
            yield Message(
                user_id=record["u"],
                tokens=tuple(tokens) if tokens is not None else None,
                text=record.get("t"),
                timestamp=record.get("ts"),
            )


__all__ = ["write_jsonl_trace", "read_jsonl_trace"]
