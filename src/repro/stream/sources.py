"""Trace persistence: JSON-lines reading and writing of message streams.

One JSON object per line: ``{"u": user_id, "k": [tokens...]}`` with optional
``"t"`` (text), ``"f"`` (structured fields payload, for non-text workloads
read by the extractors of :mod:`repro.extract`) and ``"ts"`` (timestamp).
The compact keys keep multi-million message traces manageable on disk.

Reading is hardened for unbounded production feeds: a malformed line —
invalid UTF-8, broken JSON (e.g. a truncated final line), a non-object
record, or a record failing message validation — is **skipped and counted**
by default instead of killing the stream mid-iteration.  Callers that want
the strict behaviour (trusted traces, tests) pass ``on_malformed="raise"``;
callers that want the tally pass a :class:`TraceReadStats` to fill in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional

from repro.errors import StreamError
from repro.stream.messages import Message

_ERROR_LOG_CAP = 20


def message_to_record(message: Message) -> dict:
    """The message's compact JSONL record (shared with checkpointing)."""
    record = {"u": message.user_id}
    if message.tokens is not None:
        record["k"] = list(message.tokens)
    if message.text is not None:
        record["t"] = message.text
    if message.fields is not None:
        record["f"] = dict(message.fields)
    if message.timestamp is not None:
        record["ts"] = message.timestamp
    return record


def message_from_record(record: dict) -> Message:
    """Inverse of :func:`message_to_record`; raises ``StreamError`` on bad
    records (missing user id, neither tokens nor text)."""
    if not isinstance(record, dict):
        raise StreamError(f"record is not an object: {record!r}")
    if "u" not in record:
        raise StreamError("missing user id")
    tokens = record.get("k")
    fields = record.get("f")
    if fields is not None and not isinstance(fields, dict):
        raise StreamError(f"fields payload is not an object: {fields!r}")
    return Message(
        user_id=record["u"],
        tokens=tuple(tokens) if tokens is not None else None,
        text=record.get("t"),
        fields=fields,
        timestamp=record.get("ts"),
    )


@dataclass
class TraceReadStats:
    """Tally of one :func:`read_jsonl_trace` pass (filled as it streams).

    ``errors`` keeps the first few per-line diagnostics (capped) so a
    monitoring path can report *why* lines were dropped without retaining an
    unbounded log.
    """

    lines: int = 0
    messages: int = 0
    malformed: int = 0
    errors: List[str] = field(default_factory=list)

    def _record_error(self, path: "str | Path", line_no: int, why: str) -> None:
        self.malformed += 1
        if len(self.errors) < _ERROR_LOG_CAP:
            self.errors.append(f"{path}:{line_no}: {why}")


def write_jsonl_trace(path: "str | Path", messages: Iterable[Message]) -> int:
    """Write messages to ``path``; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for message in messages:
            record = message_to_record(message)
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def read_jsonl_trace(
    path: "str | Path",
    on_malformed: str = "skip",
    stats: Optional[TraceReadStats] = None,
) -> Iterator[Message]:
    """Stream messages back from a JSONL trace file.

    ``on_malformed="skip"`` (the default) drops undecodable, unparsable or
    invalid lines and counts them in ``stats`` (when given);
    ``on_malformed="raise"`` restores the strict behaviour of raising
    :class:`~repro.errors.StreamError` with the offending line number.  The
    file is read in binary and decoded per line so a single corrupt byte
    sequence costs exactly one line, not the rest of the stream.
    """
    if on_malformed not in ("skip", "raise"):
        raise StreamError(
            f"on_malformed must be 'skip' or 'raise', got {on_malformed!r}"
        )
    tally = stats if stats is not None else TraceReadStats()
    with open(path, "rb") as fh:
        for line_no, raw in enumerate(fh, 1):
            tally.lines += 1
            why = None
            message = None
            try:
                line = raw.decode("utf-8").strip()
            except UnicodeDecodeError as exc:
                why = f"undecodable bytes ({exc.reason})"
            else:
                if not line:
                    continue
                try:
                    message = message_from_record(json.loads(line))
                except json.JSONDecodeError:
                    why = "invalid JSON"
                except StreamError as exc:
                    why = str(exc)
            if why is not None:
                if on_malformed == "raise":
                    raise StreamError(f"{path}:{line_no}: {why}")
                tally._record_error(path, line_no, why)
                continue
            tally.messages += 1
            yield message


__all__ = [
    "write_jsonl_trace",
    "read_jsonl_trace",
    "TraceReadStats",
    "message_to_record",
    "message_from_record",
]
