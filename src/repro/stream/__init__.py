"""Message stream plumbing: records, quantum batching, trace I/O."""

from repro.stream.messages import Message
from repro.stream.window import QuantumBatcher, keyword_users_of_quantum, user_keywords_of_quantum
from repro.stream.sources import read_jsonl_trace, write_jsonl_trace

__all__ = [
    "Message",
    "QuantumBatcher",
    "keyword_users_of_quantum",
    "user_keywords_of_quantum",
    "read_jsonl_trace",
    "write_jsonl_trace",
]
