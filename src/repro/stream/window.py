"""Quantum batching and per-quantum aggregation.

The moving-window paradigm of Section 1.1: the stream is consumed in quanta
of a fixed number of records; the window spans the last ``w`` quanta.  The
:class:`QuantumBatcher` groups an arbitrary message iterator into quanta;
the aggregation helpers reduce a quantum to the two mappings the AKG needs:
entity -> actors (id sets) and actor -> entities (spatial correlation, CKG
stats).  Extraction is delegated to an
:class:`~repro.extract.base.EntityExtractor`; the legacy keyword-named
helpers wrap the default :class:`~repro.extract.keyword.KeywordExtractor`
and are kept for the paper-facing call sites and tests.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.arrays import get_numpy
from repro.interning import Interner
from repro.errors import StreamError
from repro.stream.messages import Message

Entity = str
Keyword = str  # legacy alias: keywords are the textual instantiation
ActorId = Hashable
UserId = Hashable
Tokenizer = Callable[[str], Iterable[str]]


class QuantumBatcher:
    """Groups messages into fixed-size quanta.

    Feed messages with :meth:`push`; each call returns a full quantum when
    one completes, else None.  :meth:`flush` returns any partial remainder.
    """

    def __init__(self, quantum_size: int) -> None:
        if quantum_size < 1:
            raise StreamError(f"quantum_size must be >= 1, got {quantum_size}")
        self.quantum_size = quantum_size
        self._buffer: List[Message] = []

    def push(self, message: Message) -> List[Message] | None:
        self._buffer.append(message)
        if len(self._buffer) >= self.quantum_size:
            quantum, self._buffer = self._buffer, []
            return quantum
        return None

    def fill(self, messages: Iterator[Message]) -> List[Message] | None:
        """Pull from an iterator until a quantum completes or it drains.

        The bulk equivalent of per-message :meth:`push` — one C-level
        ``islice`` per quantum instead of one Python call per message.
        Returns the completed quantum, or None when the iterator ran dry
        first (the partial stays buffered, exactly like ``push``).
        """
        buffer = self._buffer
        need = self.quantum_size - len(buffer)
        taken = list(islice(messages, need))
        buffer.extend(taken)
        if len(taken) == need:
            quantum, self._buffer = buffer, []
            return quantum
        return None

    def flush(self) -> List[Message]:
        quantum, self._buffer = self._buffer, []
        return quantum

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def pending_messages(self) -> List[Message]:
        """Copy of the buffered partial quantum (checkpointing support)."""
        return list(self._buffer)

    def load_pending(self, messages: Iterable[Message]) -> None:
        """Replace the buffer (checkpoint restore); must not overflow."""
        buffer = list(messages)
        if len(buffer) >= self.quantum_size:
            raise StreamError(
                f"restored buffer holds {len(buffer)} messages, a full "
                f"quantum is {self.quantum_size}"
            )
        self._buffer = buffer

    def batches(self, messages: Iterable[Message]) -> Iterator[List[Message]]:
        """Iterate full quanta from a message iterable (drops the remainder
        only if it is empty; a final partial quantum is yielded)."""
        for message in messages:
            quantum = self.push(message)
            if quantum is not None:
                yield quantum
        tail = self.flush()
        if tail:
            yield tail


def actor_entities_of_quantum(
    messages: Iterable[Message],
    extractor,
    max_entities_per_record: int | None = None,
) -> Dict[ActorId, Set[Entity]]:
    """actor -> entities observed within the quantum (spatial correlation).

    Spatial correlation is per *actor per quantum*, not per record: an
    actor's entities may be spread over several records within the quantum
    (Section 3.2).  ``max_entities_per_record`` truncates oversized records
    (microblog posts are length-capped; the cap also bounds the per-record
    pair fan-out a hostile flooder could inject).
    """
    out: Dict[ActorId, Set[Entity]] = {}
    for message in messages:
        entities = extractor.entities(message)
        if not entities:
            continue
        if max_entities_per_record is not None:
            entities = entities[:max_entities_per_record]
        out.setdefault(message.user_id, set()).update(entities)
    return out


def invert_actor_entities(
    actor_entities: Dict[ActorId, Set[Entity]],
) -> Dict[Entity, Set[ActorId]]:
    """Convert actor -> entities into entity -> actors without re-extracting."""
    out: Dict[Entity, Set[ActorId]] = {}
    for actor, entities in actor_entities.items():
        for entity in entities:
            out.setdefault(entity, set()).add(actor)
    return out


class QuantumColumns:
    """One quantum reduced to flat, interned, deduplicated pair columns.

    The batched backend's extraction product (DESIGN.md Section 9): the
    i-th distinct (entity, actor) pair of the quantum, as interner ids,
    sorted by ``(entity id, actor id)`` and grouped into contiguous entity
    ``segments`` — ``(eid, lo, hi)`` runs with the entity's token string in
    the parallel ``ent_strings`` list.  Semantically this is exactly
    ``invert_actor_entities(actor_entities_of_quantum(...))``: per-record
    truncation applies before interning and deduplication makes each
    (entity, actor) pair count once, so segment length equals the quantum's
    distinct-user support.

    The pair storage is the packed int64 key column ``keys``
    (``(eid << 32) | aid``) when numpy built it, else the plain-list
    ``ent_col``/``act_col`` split; either view is derivable from the other
    (``ent_col``/``act_col`` decode lazily from ``keys``), and both orders
    coincide because ids are non-negative and below 2**32.  The *values*
    are identical in both modes — numpy is a kernel detail, never a
    semantic one — which is what keeps the numpy and pure-python paths
    bit-identical.
    """

    __slots__ = ("keys", "segments", "ent_strings", "_ent_col", "_act_col")

    def __init__(
        self,
        segments: List[Tuple[int, int, int]],
        ent_strings: List[Entity],
        keys=None,
        ent_col: List[int] | None = None,
        act_col: List[int] | None = None,
    ) -> None:
        self.keys = keys
        self.segments = segments
        self.ent_strings = ent_strings
        self._ent_col = ent_col
        self._act_col = act_col

    @property
    def ent_col(self) -> List[int]:
        if self._ent_col is None:
            self._ent_col = (self.keys >> 32).tolist()
        return self._ent_col

    @property
    def act_col(self) -> List[int]:
        if self._act_col is None:
            self._act_col = (self.keys & 0xFFFFFFFF).tolist()
        return self._act_col

    @property
    def num_pairs(self) -> int:
        if self.keys is not None:
            return len(self.keys)
        return len(self._ent_col)

    def key_array(self):
        """The packed key column as an int64 ndarray (numpy mode only)."""
        if self.keys is None:
            np = get_numpy()
            keys = np.array(self._ent_col, dtype=np.int64)
            keys <<= 32
            keys |= np.array(self._act_col, dtype=np.int64)
            self.keys = keys
        return self.keys


def _empty_columns() -> QuantumColumns:
    np = get_numpy()
    if np is None:
        return QuantumColumns([], [], ent_col=[], act_col=[])
    return QuantumColumns([], [], keys=np.empty(0, dtype=np.int64))


def _columns_from_occurrences(
    ent_occ: List[int], act_occ: List[int], objs: List
) -> QuantumColumns:
    """Dedupe/sort/segment flat occurrence columns into QuantumColumns.

    The numpy path packs both ids into one int64 key, lets ``np.unique``
    sort-and-dedupe in C and reads the segment boundaries off the packed
    column; the fallback does the same through a set of tuples and a run
    loop.  Identical values by construction.
    """
    if not ent_occ:
        return _empty_columns()
    np = get_numpy()
    if np is None:
        pairs = sorted(set(zip(ent_occ, act_occ)))
        ent_col = [p[0] for p in pairs]
        act_col = [p[1] for p in pairs]
        segments: List[Tuple[int, int, int]] = []
        prev = -1
        start = 0
        for i, eid in enumerate(ent_col):
            if eid != prev:
                if prev >= 0:
                    segments.append((prev, start, i))
                prev = eid
                start = i
        segments.append((prev, start, len(ent_col)))
        strings = [objs[eid] for eid, _, _ in segments]
        return QuantumColumns(
            segments, strings, ent_col=ent_col, act_col=act_col
        )
    keys = np.array(ent_occ, dtype=np.int64)
    keys <<= 32
    keys |= np.asarray(act_occ, dtype=np.int64)
    keys = np.unique(keys)
    ents = keys >> 32
    bounds = np.flatnonzero(ents[1:] != ents[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(keys)]))
    segments = list(
        zip(ents[starts].tolist(), starts.tolist(), ends.tolist())
    )
    strings = [objs[eid] for eid, _, _ in segments]
    return QuantumColumns(segments, strings, keys=keys)


def quantum_columns(
    messages: Iterable[Message],
    extractor,
    max_entities_per_record: int | None,
    ents: Interner,
    acts: Interner,
) -> QuantumColumns:
    """Extract one quantum straight into interned pair columns.

    The batched replacement for ``actor_entities_of_quantum`` +
    ``invert_actor_entities``: one pass appends interned (entity, actor)
    occurrence ids to flat lists, then a single dedupe/sort kernel builds
    the grouped columns — no per-message dict or set allocation.  Messages
    already carrying pre-extracted ``tokens`` skip the extractor call when
    the extractor is the plain keyword one (whose ``entities`` is exactly
    ``keyword_tuple``, i.e. the tokens themselves).
    """
    from repro.extract.keyword import KeywordExtractor

    tok_occ: List[Entity] = []
    msg_aids: List[int] = []
    msg_counts: List[int] = []
    act_ids = acts.ids
    act_intern = acts.intern
    cap = max_entities_per_record
    keyword_fast = type(extractor) is KeywordExtractor
    extract = extractor.entities
    for message in messages:
        if keyword_fast:
            entities = message.tokens
            if entities is None:
                entities = extract(message)
        else:
            entities = extract(message)
        if not entities:
            continue
        if cap is not None and len(entities) > cap:
            entities = entities[:cap]
        user = message.user_id
        aid = act_ids.get(user)
        if aid is None:
            aid = act_intern(user)
        tok_occ += entities
        msg_aids.append(aid)
        msg_counts.append(len(entities))
    # One C-level gather for the whole quantum; only genuinely new tokens
    # (the None holes) fall back to the python interning path.
    ent_occ = [*map(ents.ids.get, tok_occ)]
    ent_intern = ents.intern
    try:
        i = ent_occ.index(None)
        while True:
            ent_occ[i] = ent_intern(tok_occ[i])
            i = ent_occ.index(None, i + 1)
    except ValueError:
        pass
    np = get_numpy()
    if np is not None:
        # Expand the per-message actor ids across their token runs in one
        # C-level repeat instead of allocating a small list per message.
        act_occ = np.repeat(
            np.array(msg_aids, dtype=np.int64),
            np.array(msg_counts, dtype=np.int64),
        )
    else:
        act_occ = []
        for aid, count in zip(msg_aids, msg_counts):
            act_occ += [aid] * count
    return _columns_from_occurrences(ent_occ, act_occ, ents.objs)


def columns_from_mapping(
    keyword_users: Dict[Entity, Set[ActorId]],
    ents: Interner,
    acts: Interner,
) -> QuantumColumns:
    """Intern an entity -> actors mapping into :class:`QuantumColumns`.

    The adapter that lets the batched window indexes accept the reference
    ``add_quantum`` mapping contract (direct construction in tests, the
    mapping-path builder); empty user sets are skipped exactly as the
    reference index skips them.
    """
    ent_occ: List[int] = []
    act_occ: List[int] = []
    for kw, users in keyword_users.items():
        if not users:
            continue
        eid = ents.intern(kw)
        for user in users:
            ent_occ.append(eid)
            act_occ.append(acts.intern(user))
    return _columns_from_occurrences(ent_occ, act_occ, ents.objs)


def user_keywords_of_quantum(
    messages: Iterable[Message],
    tokenizer: Tokenizer,
    max_tokens_per_message: int | None = None,
) -> Dict[UserId, Set[Keyword]]:
    """user -> keywords used within the quantum (keyword-path wrapper)."""
    from repro.extract.keyword import KeywordExtractor

    return actor_entities_of_quantum(
        messages, KeywordExtractor(tokenizer=tokenizer), max_tokens_per_message
    )


def keyword_users_of_quantum(
    messages: Iterable[Message], tokenizer: Tokenizer
) -> Dict[Keyword, Set[UserId]]:
    """keyword -> distinct users within the quantum (id-set contribution)."""
    out: Dict[Keyword, Set[UserId]] = {}
    for message in messages:
        for keyword in message.keyword_tuple(tokenizer):
            out.setdefault(keyword, set()).add(message.user_id)
    return out


def invert_user_keywords(
    user_keywords: Dict[UserId, Set[Keyword]],
) -> Dict[Keyword, Set[UserId]]:
    """Convert user -> keywords into keyword -> users (legacy name)."""
    return invert_actor_entities(user_keywords)


__all__ = [
    "QuantumBatcher",
    "QuantumColumns",
    "columns_from_mapping",
    "quantum_columns",
    "actor_entities_of_quantum",
    "invert_actor_entities",
    "user_keywords_of_quantum",
    "keyword_users_of_quantum",
    "invert_user_keywords",
]
