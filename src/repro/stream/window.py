"""Quantum batching and per-quantum aggregation.

The moving-window paradigm of Section 1.1: the stream is consumed in quanta
of a fixed number of records; the window spans the last ``w`` quanta.  The
:class:`QuantumBatcher` groups an arbitrary message iterator into quanta;
the aggregation helpers reduce a quantum to the two mappings the AKG needs:
entity -> actors (id sets) and actor -> entities (spatial correlation, CKG
stats).  Extraction is delegated to an
:class:`~repro.extract.base.EntityExtractor`; the legacy keyword-named
helpers wrap the default :class:`~repro.extract.keyword.KeywordExtractor`
and are kept for the paper-facing call sites and tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Set

from repro.errors import StreamError
from repro.stream.messages import Message

Entity = str
Keyword = str  # legacy alias: keywords are the textual instantiation
ActorId = Hashable
UserId = Hashable
Tokenizer = Callable[[str], Iterable[str]]


class QuantumBatcher:
    """Groups messages into fixed-size quanta.

    Feed messages with :meth:`push`; each call returns a full quantum when
    one completes, else None.  :meth:`flush` returns any partial remainder.
    """

    def __init__(self, quantum_size: int) -> None:
        if quantum_size < 1:
            raise StreamError(f"quantum_size must be >= 1, got {quantum_size}")
        self.quantum_size = quantum_size
        self._buffer: List[Message] = []

    def push(self, message: Message) -> List[Message] | None:
        self._buffer.append(message)
        if len(self._buffer) >= self.quantum_size:
            quantum, self._buffer = self._buffer, []
            return quantum
        return None

    def flush(self) -> List[Message]:
        quantum, self._buffer = self._buffer, []
        return quantum

    @property
    def pending(self) -> int:
        return len(self._buffer)

    def pending_messages(self) -> List[Message]:
        """Copy of the buffered partial quantum (checkpointing support)."""
        return list(self._buffer)

    def load_pending(self, messages: Iterable[Message]) -> None:
        """Replace the buffer (checkpoint restore); must not overflow."""
        buffer = list(messages)
        if len(buffer) >= self.quantum_size:
            raise StreamError(
                f"restored buffer holds {len(buffer)} messages, a full "
                f"quantum is {self.quantum_size}"
            )
        self._buffer = buffer

    def batches(self, messages: Iterable[Message]) -> Iterator[List[Message]]:
        """Iterate full quanta from a message iterable (drops the remainder
        only if it is empty; a final partial quantum is yielded)."""
        for message in messages:
            quantum = self.push(message)
            if quantum is not None:
                yield quantum
        tail = self.flush()
        if tail:
            yield tail


def actor_entities_of_quantum(
    messages: Iterable[Message],
    extractor,
    max_entities_per_record: int | None = None,
) -> Dict[ActorId, Set[Entity]]:
    """actor -> entities observed within the quantum (spatial correlation).

    Spatial correlation is per *actor per quantum*, not per record: an
    actor's entities may be spread over several records within the quantum
    (Section 3.2).  ``max_entities_per_record`` truncates oversized records
    (microblog posts are length-capped; the cap also bounds the per-record
    pair fan-out a hostile flooder could inject).
    """
    out: Dict[ActorId, Set[Entity]] = {}
    for message in messages:
        entities = extractor.entities(message)
        if not entities:
            continue
        if max_entities_per_record is not None:
            entities = entities[:max_entities_per_record]
        out.setdefault(message.user_id, set()).update(entities)
    return out


def invert_actor_entities(
    actor_entities: Dict[ActorId, Set[Entity]],
) -> Dict[Entity, Set[ActorId]]:
    """Convert actor -> entities into entity -> actors without re-extracting."""
    out: Dict[Entity, Set[ActorId]] = {}
    for actor, entities in actor_entities.items():
        for entity in entities:
            out.setdefault(entity, set()).add(actor)
    return out


def user_keywords_of_quantum(
    messages: Iterable[Message],
    tokenizer: Tokenizer,
    max_tokens_per_message: int | None = None,
) -> Dict[UserId, Set[Keyword]]:
    """user -> keywords used within the quantum (keyword-path wrapper)."""
    from repro.extract.keyword import KeywordExtractor

    return actor_entities_of_quantum(
        messages, KeywordExtractor(tokenizer=tokenizer), max_tokens_per_message
    )


def keyword_users_of_quantum(
    messages: Iterable[Message], tokenizer: Tokenizer
) -> Dict[Keyword, Set[UserId]]:
    """keyword -> distinct users within the quantum (id-set contribution)."""
    out: Dict[Keyword, Set[UserId]] = {}
    for message in messages:
        for keyword in message.keyword_tuple(tokenizer):
            out.setdefault(keyword, set()).add(message.user_id)
    return out


def invert_user_keywords(
    user_keywords: Dict[UserId, Set[Keyword]],
) -> Dict[Keyword, Set[UserId]]:
    """Convert user -> keywords into keyword -> users (legacy name)."""
    return invert_actor_entities(user_keywords)


__all__ = [
    "QuantumBatcher",
    "actor_entities_of_quantum",
    "invert_actor_entities",
    "user_keywords_of_quantum",
    "keyword_users_of_quantum",
    "invert_user_keywords",
]
