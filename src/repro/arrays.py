"""Optional-numpy dispatch for the batched backend's vector kernels.

The batched hot path (DESIGN.md Section 9) vectorizes per-quantum work —
pair deduplication, MinHash mini-sketch construction, shard scaling — with
numpy when it is importable, and falls back to pure-python loops otherwise.
Both paths are required to be *bit-identical*: they produce the same Python
ints, the same orderings, the same dict contents, so every golden
fingerprint and differential test holds under either.

``get_numpy()`` is the single switch.  It returns the numpy module or
``None``; the ``REPRO_PURE_PYTHON`` environment variable (or setting
``FORCE_PURE`` from a test) forces the fallback even when numpy is
installed — the CI fallback leg and the numpy-vs-pure identity tests run
through exactly this knob.  Kernels call ``get_numpy()`` per invocation, so
flipping the flag mid-process affects the next quantum, which is what lets
one test process compare both paths.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised implicitly by every kernel call
    import numpy as _np
except ImportError:  # pragma: no cover - the fallback-only environment
    _np = None


def _env_forces_pure() -> bool:
    value = os.environ.get("REPRO_PURE_PYTHON", "").strip().lower()
    return value not in ("", "0", "false", "no")


FORCE_PURE: bool = _env_forces_pure()
"""When True, ``get_numpy()`` returns None even if numpy is importable.
Initialized from ``REPRO_PURE_PYTHON``; tests flip it directly."""


def get_numpy():
    """The numpy module, or ``None`` when absent or forced off."""
    if FORCE_PURE:
        return None
    return _np


def have_numpy() -> bool:
    """Whether the vectorized kernel path is active."""
    return get_numpy() is not None


__all__ = ["FORCE_PURE", "get_numpy", "have_numpy"]
