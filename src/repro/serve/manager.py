"""Multi-tenant session management for the serving layer.

A *tenant* is one named :class:`~repro.api.session.DetectorSession` (one
topic, one region, one customer stream) plus the serving state around it: a
bounded ingest queue, a drainer task that runs the session's synchronous
``ingest_many`` on the shared executor so quanta from different tenants
interleave, a :class:`~repro.serve.hub.FanoutHub` of WebSocket subscribers,
and optional per-tenant durability (delta log while running, monolithic
snapshot on graceful close).

Backpressure model (DESIGN.md Section 11):

* the ingest queue is bounded (``max_queue`` messages); a producer that
  overruns it gets the overflow **shed** — counted and reported in the
  ingest response and ``/stats``, never an OOM;
* under sustained backlog the drainer grows the *effective ingest batch*
  (adaptive quantum sizing): each executor hop feeds
  ``max(quantum_size, backlog)`` messages (capped at
  ``max_batch_quanta`` quanta), so per-hop overhead amortizes exactly when
  the tenant is behind, and shrinks back to one quantum when it catches up.
"""

from __future__ import annotations

import asyncio
import os
import re
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Deque, Dict, List, Optional

from repro.api import open_session
from repro.config import DetectorConfig
from repro.errors import CheckpointError, ConfigError, ReproError, ServeError
from repro.serve.hub import FanoutHub
from repro.stream.messages import Message

_NAME_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]{0,63}")

#: Default bound on one tenant's ingest queue, in messages.
DEFAULT_MAX_QUEUE = 100_000

#: Cap on the adaptive batch, in quanta: a deeply backlogged tenant is fed
#: at most this many quanta per executor hop, so no single hop starves the
#: other tenants of the shared worker budget.
DEFAULT_MAX_BATCH_QUANTA = 64


def find_baselines_dir() -> Optional[Path]:
    """Locate the committed ``benchmarks/results`` baselines, if any.

    ``REPRO_BASELINES_DIR`` overrides; otherwise the source tree is walked
    upward (works for an in-repo checkout; an installed wheel without the
    benchmarks simply serves no baselines).
    """
    env = os.environ.get("REPRO_BASELINES_DIR")
    if env:
        path = Path(env)
        return path if path.is_dir() else None
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "benchmarks" / "results"
        if candidate.is_dir():
            return candidate
    return None


class Tenant:
    """One named detector session and its serving state."""

    def __init__(
        self,
        name: str,
        session,
        manager: "SessionManager",
        *,
        final_ckpt: Optional[Path] = None,
    ) -> None:
        self.name = name
        self.session = session
        self.manager = manager
        self.final_ckpt = final_ckpt
        self.hub = FanoutHub(
            manager.loop,
            default_buffer=manager.subscriber_buffer,
            stall_deadline=manager.stall_deadline,
        )
        self._queue: Deque[Message] = deque()
        # Serializes session access across executor threads: the drainer's
        # ingest batches, on-demand snapshots, and final teardown never
        # interleave on the (thread-unsafe) DetectorSession.
        self._session_lock = threading.Lock()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._closing = False
        self.closed = False
        self.created_at = time.monotonic()
        # Counters (all cumulative unless suffixed _hwm / current).
        self.accepted = 0
        self.shed = 0
        self.deferred = 0
        self.failed = 0
        self.reports = 0
        self.errors = 0
        self.last_error: Optional[str] = None
        self.queue_hwm = 0
        self.batch_size = session.config.quantum_size
        self.batch_hwm = session.config.quantum_size
        self._runner = manager.loop.create_task(self._run())

    # ------------------------------------------------------------- ingest

    def enqueue(self, messages: List[Message]) -> Dict[str, int]:
        """Queue messages for ingestion (event-loop thread only).

        Messages beyond the queue bound are shed — counted, reported,
        dropped.  Returns the per-call accounting.
        """
        if self._closing or self.closed:
            raise ServeError(f"tenant {self.name!r} is closed")
        accepted = 0
        shed = 0
        max_queue = self.manager.max_queue
        for message in messages:
            if len(self._queue) >= max_queue:
                shed += 1
                continue
            if self._queue:
                self.deferred += 1
            self._queue.append(message)
            accepted += 1
        self.accepted += accepted
        self.shed += shed
        depth = len(self._queue)
        if depth > self.queue_hwm:
            self.queue_hwm = depth
        if accepted:
            self._idle.clear()
            self._wake.set()
        return {
            "accepted": accepted,
            "shed": shed,
            "queued": depth,
        }

    def _effective_batch(self, backlog: int) -> int:
        """Adaptive quantum sizing: grow the batch with the backlog."""
        base = self.session.config.quantum_size
        cap = base * self.manager.max_batch_quanta
        return max(base, min(backlog, cap))

    def _ingest_sync(self, batch: List[Message]) -> int:
        """Run on the shared executor: feed one batch through the session."""
        produced = 0
        with self._session_lock:
            for _report in self.session.ingest_many(batch):
                produced += 1
        return produced

    async def _run(self) -> None:
        """Drainer: move queued messages into the session, batch by batch."""
        loop = self.manager.loop
        while True:
            if not self._queue:
                self._idle.set()
                if self._closing:
                    return
                self._wake.clear()
                if not self._queue and not self._closing:
                    await self._wake.wait()
                continue
            self._idle.clear()
            backlog = len(self._queue)
            size = self._effective_batch(backlog)
            self.batch_size = size
            if size > self.batch_hwm:
                self.batch_hwm = size
            take = min(backlog, size)
            batch = [self._queue.popleft() for _ in range(take)]
            try:
                self.reports += await loop.run_in_executor(
                    self.manager.executor, self._ingest_sync, batch
                )
            except ReproError as exc:
                # A poisoned batch must not kill the tenant: count it,
                # remember why, keep draining.
                self.errors += 1
                self.failed += len(batch)
                self.last_error = f"{type(exc).__name__}: {exc}"

    async def wait_idle(self) -> None:
        """Block until the queue is empty and no batch is in flight."""
        await self._idle.wait()

    async def snapshot(self, path) -> None:
        """Write a monolithic checkpoint of the tenant's current state."""

        def _snap() -> None:
            with self._session_lock:
                self.session.snapshot(path)

        await self.manager.loop.run_in_executor(
            self.manager.executor, _snap
        )

    # ----------------------------------------------------------- teardown

    async def close(self, *, drain: bool = True) -> Dict[str, object]:
        """Close the tenant: optionally drain, checkpoint, release.

        With ``drain=True`` (default) every queued message is processed
        first; with ``drain=False`` the queue is shed.  A persistent tenant
        then writes a monolithic snapshot next to its delta log — the
        graceful-shutdown image that preserves even the buffered partial
        quantum — before the session is closed (idempotently) and the
        fan-out hub delivers its tails and disconnects.
        """
        if self.closed:
            return {"closed": True, "quantum": self.session.current_quantum}
        self._closing = True
        if not drain:
            shed = len(self._queue)
            self.shed += shed
            self._queue.clear()
        self._wake.set()
        await self._idle.wait()
        await self._runner
        loop = self.manager.loop

        def _finalize() -> None:
            with self._session_lock:
                if self.final_ckpt is not None:
                    self.session.snapshot(self.final_ckpt)
                self.session.close()

        await loop.run_in_executor(self.manager.executor, _finalize)
        self.closed = True
        self.hub.close_all()
        return {
            "closed": True,
            "quantum": self.session.current_quantum,
            "shed": self.shed,
            "checkpoint": (
                str(self.final_ckpt) if self.final_ckpt is not None else None
            ),
        }

    # -------------------------------------------------------------- stats

    def stats(self) -> Dict[str, object]:
        session = self.session
        return {
            "tenant": self.name,
            "closed": self.closed,
            "quantum": session.current_quantum,
            "messages": session.total_messages,
            "pending": session.batcher.pending,
            "throughput": round(session.throughput(), 1),
            "queued": len(self._queue),
            "queue_hwm": self.queue_hwm,
            "accepted": self.accepted,
            "shed": self.shed,
            "deferred": self.deferred,
            "failed": self.failed,
            "errors": self.errors,
            "last_error": self.last_error,
            "reports": self.reports,
            "batch_size": self.batch_size,
            "batch_hwm": self.batch_hwm,
            "uptime_s": round(time.monotonic() - self.created_at, 3),
            "timings": session.total_timings.as_dict(),
            "fanout": self.hub.stats(),
        }


class SessionManager:
    """Creates, resumes, serves and closes named tenants.

    All public methods must be called from the owning event loop's thread
    (the server's request handlers); the synchronous detector work is
    pushed onto the shared :class:`~concurrent.futures.ThreadPoolExecutor`
    — the "shared worker budget" all tenants' quanta interleave over.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        state_dir: Optional[os.PathLike] = None,
        workers: int = 2,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch_quanta: int = DEFAULT_MAX_BATCH_QUANTA,
        subscriber_buffer: int = 1024,
        stall_deadline: float = 10.0,
        baselines_dir: Optional[os.PathLike] = None,
    ) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch_quanta < 1:
            raise ServeError(
                f"max_batch_quanta must be >= 1, got {max_batch_quanta}"
            )
        self.loop = loop
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.workers = workers
        self.max_queue = max_queue
        self.max_batch_quanta = max_batch_quanta
        self.subscriber_buffer = subscriber_buffer
        self.stall_deadline = stall_deadline
        self.baselines_dir = (
            Path(baselines_dir)
            if baselines_dir is not None
            else find_baselines_dir()
        )
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self.tenants: Dict[str, Tenant] = {}
        self.started_at = time.monotonic()

    # ---------------------------------------------------------- lifecycle

    def _tenant_dir(self, name: str) -> Optional[Path]:
        if self.state_dir is None:
            return None
        return self.state_dir / name

    async def create(
        self,
        name: str,
        *,
        config: Optional[dict] = None,
        resume: bool = False,
        persist: Optional[bool] = None,
    ) -> Tenant:
        """Create (or resume) the named tenant.

        ``config`` is a :meth:`DetectorConfig.to_dict`-shaped mapping for a
        fresh tenant (omit on resume — a resumed tenant runs under its
        checkpoint's configuration).  ``persist`` defaults to whether the
        manager has a ``state_dir``; a persistent tenant delta-logs every
        completed quantum under ``state_dir/<name>/delta`` and snapshots to
        ``state_dir/<name>/final.ckpt`` on graceful close, which is exactly
        what ``resume=True`` picks back up (snapshot preferred — it also
        carries the partial quantum — falling back to the delta log after a
        crash).
        """
        if not _NAME_RE.fullmatch(name or ""):
            raise ServeError(
                f"invalid tenant name {name!r} (want [A-Za-z0-9][A-Za-z0-9_.-]*, "
                f"max 64 chars)"
            )
        if name in self.tenants and not self.tenants[name].closed:
            raise ServeError(f"tenant {name!r} already exists")
        if persist is None:
            persist = self.state_dir is not None
        if persist and self.state_dir is None:
            raise ServeError(
                "persist requested but the server has no --state-dir"
            )
        tenant_dir = self._tenant_dir(name) if persist else None
        delta_dir = tenant_dir / "delta" if tenant_dir is not None else None
        final_ckpt = (
            tenant_dir / "final.ckpt" if tenant_dir is not None else None
        )
        if resume:
            if tenant_dir is None:
                raise ServeError(
                    "resume requires a persistent tenant (server --state-dir)"
                )
            if config is not None:
                raise ServeError(
                    "pass either config or resume, not both: a resumed "
                    "tenant runs under its checkpoint's configuration"
                )
            resume_from = None
            if final_ckpt.exists():
                resume_from = final_ckpt
            elif delta_dir is not None and (delta_dir / "MANIFEST.json").exists():
                resume_from = delta_dir
            if resume_from is None:
                raise ServeError(
                    f"tenant {name!r} has no state to resume under "
                    f"{tenant_dir}"
                )
        else:
            if tenant_dir is not None and (
                final_ckpt.exists()
                or (delta_dir / "MANIFEST.json").exists()
            ):
                raise ServeError(
                    f"tenant {name!r} has existing state under {tenant_dir}; "
                    f"pass resume=true to pick it up (or remove the "
                    f"directory for a fresh start)"
                )
            resume_from = None

        def _open():
            if resume_from is not None:
                session = open_session(
                    resume=resume_from, delta_log=delta_dir
                )
                if resume_from == final_ckpt:
                    # The snapshot is folded into the fresh delta-log
                    # generation now; leaving it would shadow newer state
                    # on the next resume.
                    final_ckpt.unlink()
                return session
            parsed = (
                DetectorConfig.from_dict(config)
                if config is not None
                else DetectorConfig()
            )
            if delta_dir is not None:
                delta_dir.parent.mkdir(parents=True, exist_ok=True)
            return open_session(parsed, delta_log=delta_dir)

        try:
            session = await self.loop.run_in_executor(self.executor, _open)
        except (ConfigError, CheckpointError) as exc:
            raise ServeError(str(exc)) from exc
        tenant = Tenant(name, session, self, final_ckpt=final_ckpt)
        self.tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None or tenant.closed:
            raise ServeError(f"no such tenant: {name!r}")
        return tenant

    async def close_tenant(self, name: str, *, drain: bool = True) -> dict:
        tenant = self.get(name)
        summary = await tenant.close(drain=drain)
        del self.tenants[name]
        return summary

    async def shutdown(self, *, graceful: bool = True) -> None:
        """Close every tenant (checkpointing persistent ones), then the pool.

        ``graceful=False`` skips the drain/checkpoint path entirely — the
        crash-test twin of ``kill -9``; durability then rests on the delta
        log alone, which is the point.
        """
        if graceful:
            for name in list(self.tenants):
                tenant = self.tenants.get(name)
                if tenant is not None and not tenant.closed:
                    await tenant.close(drain=True)
            self.tenants.clear()
        self.executor.shutdown(wait=graceful, cancel_futures=not graceful)

    # -------------------------------------------------------------- stats

    def baselines(self) -> Dict[str, object]:
        """The committed bench baselines, served live (may be empty)."""
        import json

        out: Dict[str, object] = {}
        if self.baselines_dir is None:
            return out
        try:
            paths = sorted(self.baselines_dir.glob("*.json"))
        except OSError:
            return out
        for path in paths:
            try:
                out[path.stem] = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
        return out

    def metrics(self) -> Dict[str, object]:
        return {
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "workers": self.workers,
            "max_queue": self.max_queue,
            "tenants": {
                name: tenant.stats() for name, tenant in self.tenants.items()
            },
            "baselines": self.baselines(),
        }


__all__ = [
    "DEFAULT_MAX_BATCH_QUANTA",
    "DEFAULT_MAX_QUEUE",
    "SessionManager",
    "Tenant",
    "find_baselines_dir",
]
