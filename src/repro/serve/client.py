"""A blocking stdlib client for the serving layer.

:class:`ServeClient` wraps the REST surface with ``http.client`` (one
connection per call — the server answers ``Connection: close``);
:class:`WebSocketClient` speaks RFC 6455 over a raw socket with the shared
frame codec from :mod:`repro.serve.wire` (client frames are masked, as the
RFC requires).  Both are synchronous on purpose: callers are scripts,
tests and benches, not event loops.
"""

from __future__ import annotations

import base64
import http.client
import json
import os
import socket
from typing import Iterable, List, Optional

from repro.errors import ServeError
from repro.serve import wire
from repro.stream.messages import Message
from repro.stream.sources import message_to_record


class ServeClient:
    """Blocking REST client for one ``repro serve`` endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ plumbing

    def _request(self, method: str, path: str, body=None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                if isinstance(body, bytes):
                    payload = body
                else:
                    payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                raise ServeError(
                    f"{method} {path} -> {response.status}: "
                    f"{decoded.get('error', decoded)}"
                )
            return decoded
        finally:
            connection.close()

    # ------------------------------------------------------------- surface

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def tenants(self) -> List[str]:
        return self._request("GET", "/v1")["tenants"]

    def create_tenant(self, name: str, config: Optional[dict] = None, *,
                      resume: bool = False,
                      persist: Optional[bool] = None) -> dict:
        body: dict = {"resume": resume}
        if config is not None:
            body["config"] = config
        if persist is not None:
            body["persist"] = persist
        return self._request("PUT", f"/v1/{name}", body)

    def close_tenant(self, name: str, *, drain: bool = True) -> dict:
        suffix = "" if drain else "?drain=0"
        return self._request("DELETE", f"/v1/{name}{suffix}")

    def stats(self, name: str) -> dict:
        return self._request("GET", f"/v1/{name}/stats")

    def ingest(self, name: str, messages: Iterable[Message], *,
               wait: bool = False) -> dict:
        body = "\n".join(
            json.dumps(message_to_record(m), sort_keys=True)
            for m in messages
        ).encode("utf-8")
        suffix = "?wait=1" if wait else ""
        return self._request("POST", f"/v1/{name}/ingest{suffix}", body)

    def checkpoint(self, name: str, path) -> dict:
        return self._request(
            "POST", f"/v1/{name}/checkpoint", {"path": str(path)}
        )

    # ----------------------------------------------------------- websocket

    def subscribe(self, name: str, *, kinds: Optional[str] = None,
                  top_k: Optional[int] = None,
                  buffer: Optional[int] = None) -> "WebSocketClient":
        """Open the fan-out WebSocket for a tenant's lifecycle events."""
        params = []
        if kinds:
            params.append(f"kinds={kinds}")
        if top_k is not None:
            params.append(f"top_k={top_k}")
        if buffer is not None:
            params.append(f"buffer={buffer}")
        query = ("?" + "&".join(params)) if params else ""
        return WebSocketClient(
            self.host, self.port, f"/v1/{name}/events{query}",
            timeout=self.timeout,
        )

    def stream(self, name: str) -> "WebSocketClient":
        """Open the ingest WebSocket (frame per batch, JSON ack back)."""
        return WebSocketClient(
            self.host, self.port, f"/v1/{name}/stream", timeout=self.timeout
        )


class WebSocketClient:
    """One RFC 6455 connection (client side: frames out are masked)."""

    def __init__(self, host: str, port: int, path: str, *,
                 timeout: float = 60.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.rfile = self.sock.makefile("rb")
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        handshake = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        )
        self.sock.sendall(handshake.encode("latin-1"))
        status_line = self.rfile.readline().decode("latin-1").strip()
        headers = {}
        while True:
            line = self.rfile.readline().decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if "101" not in status_line:
            body = b""
            length = headers.get("content-length")
            if length and length.isdigit():
                body = self.rfile.read(int(length))
            self.close()
            raise ServeError(
                f"WebSocket upgrade refused: {status_line} "
                f"{body.decode('utf-8', 'replace').strip()}"
            )
        expected = wire.websocket_accept_key(key)
        if headers.get("sec-websocket-accept") != expected:
            self.close()
            raise ServeError("WebSocket accept key mismatch")

    # -------------------------------------------------------------- frames

    def send_text(self, text: str) -> None:
        self.sock.sendall(
            wire.encode_frame(wire.OP_TEXT, text.encode("utf-8"), mask=True)
        )

    def send_json(self, payload) -> None:
        self.send_text(json.dumps(payload, sort_keys=True))

    def send_messages(self, messages: Iterable[Message]) -> None:
        """One ingest frame carrying a JSON array of message records."""
        self.send_json([message_to_record(m) for m in messages])

    def recv(self) -> Optional[str]:
        """Next text payload; None once the server sends its close frame.

        Pings are answered transparently.
        """
        while True:
            opcode, payload = wire.read_frame_blocking(self.rfile)
            if opcode == wire.OP_TEXT:
                return payload.decode("utf-8")
            if opcode == wire.OP_CLOSE:
                try:
                    self.sock.sendall(
                        wire.encode_frame(wire.OP_CLOSE, b"", mask=True)
                    )
                except OSError:
                    pass
                return None
            if opcode == wire.OP_PING:
                self.sock.sendall(
                    wire.encode_frame(wire.OP_PONG, payload, mask=True)
                )

    def recv_json(self):
        text = self.recv()
        return None if text is None else json.loads(text)

    def events(self):
        """Iterate decoded event records until the server closes."""
        while True:
            record = self.recv_json()
            if record is None:
                return
            yield record

    def close(self) -> None:
        try:
            self.sock.sendall(
                wire.encode_frame(wire.OP_CLOSE, b"", mask=True)
            )
        except OSError:
            pass
        try:
            self.rfile.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "WebSocketClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ServeClient", "WebSocketClient"]
