"""Subscription fan-out: one session's sinks bridged to N WebSocket readers.

Each subscriber gets its own bounded :class:`~repro.api.sinks.QueueSink`
(the eviction discipline is literally the library one — oldest events are
dropped first and counted, observed here through the sink's ``on_drop``
callback) plus an asyncio wake event.  The session delivers notifications
synchronously on the tenant's ingest thread; the sink absorbs them, and the
subscriber's sender task on the event loop drains the sink and writes
WebSocket frames at the consumer's pace.

Slow-consumer policy (DESIGN.md Section 11): a consumer that stops reading
first fills the socket/transport buffer, then its sink starts evicting
(``dropped`` grows — delivery is at-most-once, never blocking the ingest
path), and once a write stalls for longer than ``stall_deadline`` seconds
the connection is aborted and the subscriber detached.  Keep-up consumers
lose nothing: events go sink → transport in order, per tenant.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.api.session_events import EventKind, SessionEvent
from repro.api.sinks import QueueSink
from repro.serve import wire

#: How many closed-subscriber summaries a hub retains for `/stats`.
CLOSED_SUBSCRIBER_LOG = 100


def event_record(event: SessionEvent) -> dict:
    """The JSON shape of one lifecycle notification on the wire."""
    return {
        "kind": event.kind.value,
        "quantum": event.quantum,
        "event_id": event.event_id,
        "keywords": sorted(event.keywords),
        "rank": event.rank,
        "size": event.size,
        "previous_rank": event.previous_rank,
        "previous_size": event.previous_size,
    }


class _WakeSink:
    """Sink adapter: buffer into the QueueSink, then wake the sender task.

    ``emit`` runs on the tenant's ingest (executor) thread; the wake-up
    crosses into the event loop via ``call_soon_threadsafe``.
    """

    def __init__(self, inner: QueueSink, loop: asyncio.AbstractEventLoop,
                 wake: asyncio.Event) -> None:
        self.inner = inner
        self._loop = loop
        self._wake = wake

    def emit(self, event: SessionEvent) -> None:
        self.inner.emit(event)
        try:
            self._loop.call_soon_threadsafe(self._wake.set)
        except RuntimeError:
            pass  # loop already closed (server teardown mid-quantum)


class FanoutSubscriber:
    """One attached WebSocket consumer and its delivery state."""

    _ids = itertools.count(1)

    def __init__(self, hub: "FanoutHub", buffer: int) -> None:
        self.id = next(FanoutSubscriber._ids)
        self.hub = hub
        self.wake = asyncio.Event()
        self.sink = QueueSink(maxlen=buffer, on_drop=self._on_drop)
        self.sent = 0
        self.connected_at = time.monotonic()
        self.closing = False
        self.close_reason: Optional[str] = None
        self.subscription = None  # set by attach()

    def _on_drop(self, event: SessionEvent) -> None:
        # Called on the ingest thread, outside the sink lock: the eviction
        # is already counted in sink.dropped; the hub keeps a global tally.
        self.hub.total_dropped += 1

    @property
    def dropped(self) -> int:
        return self.sink.dropped

    def stats(self) -> dict:
        return {
            "id": self.id,
            "sent": self.sent,
            "dropped": self.dropped,
            "buffered": len(self.sink),
            "connected_s": round(time.monotonic() - self.connected_at, 3),
        }


class FanoutHub:
    """All live (and recently closed) subscribers of one tenant."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        *,
        default_buffer: int = 1024,
        stall_deadline: float = 10.0,
    ) -> None:
        self._loop = loop
        self.default_buffer = default_buffer
        self.stall_deadline = stall_deadline
        self.subscribers: List[FanoutSubscriber] = []
        self.closed: Deque[dict] = deque(maxlen=CLOSED_SUBSCRIBER_LOG)
        self.total_dropped = 0
        self.total_sent = 0

    # ----------------------------------------------------------- lifecycle

    def attach(
        self,
        session,
        kinds: Optional[frozenset] = None,
        top_k: Optional[int] = None,
        buffer: Optional[int] = None,
    ) -> FanoutSubscriber:
        """Subscribe one consumer to the session; returns its handle."""
        subscriber = FanoutSubscriber(
            self, buffer if buffer is not None else self.default_buffer
        )
        sink = _WakeSink(subscriber.sink, self._loop, subscriber.wake)
        subscriber.subscription = session.subscribe(
            sink, kinds=kinds, top_k=top_k
        )
        self.subscribers.append(subscriber)
        return subscriber

    def detach(self, subscriber: FanoutSubscriber, reason: str) -> None:
        """Unsubscribe and move the subscriber to the closed log."""
        if subscriber.close_reason is not None:
            return
        subscriber.close_reason = reason
        if subscriber.subscription is not None:
            subscriber.subscription.unsubscribe()
        try:
            self.subscribers.remove(subscriber)
        except ValueError:
            pass
        summary = subscriber.stats()
        summary["reason"] = reason
        self.closed.append(summary)

    def close_all(self, reason: str = "tenant closed") -> None:
        """Mark every subscriber closing and wake its sender task."""
        for subscriber in list(self.subscribers):
            subscriber.closing = True
            subscriber.wake.set()

    # ------------------------------------------------------------- sending

    async def pump(self, subscriber: FanoutSubscriber,
                   writer: asyncio.StreamWriter) -> str:
        """Drive one subscriber's sender loop until disconnect.

        Returns the close reason.  Ordering is the session's deterministic
        delivery order (per tenant); a write that stalls longer than
        ``stall_deadline`` aborts the transport — by then the consumer has
        already been eating drop-oldest evictions in its sink.
        """
        try:
            while True:
                await subscriber.wake.wait()
                subscriber.wake.clear()
                events = subscriber.sink.drain()
                for event in events:
                    frame = wire.encode_frame(
                        wire.OP_TEXT,
                        json.dumps(
                            event_record(event), sort_keys=True
                        ).encode("utf-8"),
                    )
                    writer.write(frame)
                    subscriber.sent += 1
                    self.total_sent += 1
                if events:
                    try:
                        await asyncio.wait_for(
                            writer.drain(), self.stall_deadline
                        )
                    except asyncio.TimeoutError:
                        self.detach(
                            subscriber,
                            f"stalled past {self.stall_deadline}s deadline "
                            f"({subscriber.dropped} dropped)",
                        )
                        writer.transport.abort()
                        return subscriber.close_reason
                if subscriber.closing and not len(subscriber.sink):
                    self.detach(subscriber, "closed")
                    try:
                        writer.write(
                            wire.encode_frame(wire.OP_CLOSE, b"\x03\xe8")
                        )
                        await asyncio.wait_for(writer.drain(), 1.0)
                    except (asyncio.TimeoutError, ConnectionError, OSError):
                        pass
                    return subscriber.close_reason
        except (ConnectionError, OSError) as exc:
            self.detach(subscriber, f"connection lost: {exc}")
            return subscriber.close_reason
        except asyncio.CancelledError:
            self.detach(subscriber, "server shutdown")
            raise

    # --------------------------------------------------------------- stats

    def stats(self) -> dict:
        return {
            "subscribers": [s.stats() for s in self.subscribers],
            "closed": list(self.closed),
            "total_sent": self.total_sent,
            "total_dropped": self.total_dropped,
        }


def parse_kinds(raw: Optional[str]):
    """``kinds=emerging,dying`` query string → frozenset of EventKind."""
    if not raw:
        return None
    kinds = set()
    for name in raw.split(","):
        name = name.strip()
        if not name:
            continue
        try:
            kinds.add(EventKind(name))
        except ValueError:
            valid = ", ".join(k.value for k in EventKind)
            from repro.errors import ServeError

            raise ServeError(
                f"unknown event kind {name!r} (valid: {valid})"
            ) from None
    return frozenset(kinds) if kinds else None


__all__ = [
    "FanoutHub",
    "FanoutSubscriber",
    "event_record",
    "parse_kinds",
]
