"""The asyncio front door: HTTP + WebSocket routes over a SessionManager.

Routes (all JSON; DESIGN.md Section 11):

=========  ===============================  ===================================
Method     Path                             Meaning
=========  ===============================  ===================================
GET        ``/healthz``                     liveness probe
GET        ``/metrics``                     uptime, per-tenant stats, committed
                                            bench baselines served live
GET        ``/v1``                          tenant listing
PUT        ``/v1/{tenant}``                 create/resume a tenant
                                            (body ``{"config": {...}}`` or
                                            ``{"resume": true}``)
DELETE     ``/v1/{tenant}``                 close (``?drain=0`` sheds the queue)
POST       ``/v1/{tenant}/ingest``          batch ingest: JSONL body (or one
                                            JSON array); ``?wait=1`` blocks
                                            until the tenant's queue drains
GET        ``/v1/{tenant}/stats``           live per-tenant counters + timings
POST       ``/v1/{tenant}/checkpoint``      monolithic snapshot to a path
GET        ``/v1/{tenant}/events``          WebSocket: subscription fan-out
                                            (``?kinds=...&top_k=...&buffer=...``)
GET        ``/v1/{tenant}/stream``          WebSocket: frame-per-batch ingest
=========  ===============================  ===================================

The server owns one event loop; detector work runs on the manager's shared
executor so tenants' quanta interleave.  :class:`ServerThread` runs the
whole thing on a daemon thread for tests, benches and examples.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import threading
from typing import Optional, Tuple

from repro.errors import ServeError, StreamError
from repro.serve import wire
from repro.serve.hub import parse_kinds
from repro.serve.manager import SessionManager
from repro.stream.sources import message_from_record


def _error_status(exc: ServeError) -> int:
    text = str(exc)
    if text.startswith("no such tenant") or "no state to resume" in text:
        return 404
    if "already exists" in text or "existing state" in text:
        return 409
    return 400


def parse_ingest_body(body: bytes) -> list:
    """Decode an ingest payload: JSONL lines, or one JSON array of records."""
    try:
        text = body.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ServeError(f"ingest body is not UTF-8: {exc}") from exc
    stripped = text.lstrip()
    try:
        if stripped.startswith("["):
            records = json.loads(text)
        else:
            records = [
                json.loads(line)
                for line in text.splitlines()
                if line.strip()
            ]
    except json.JSONDecodeError as exc:
        raise ServeError(f"ingest body is not valid JSON(L): {exc}") from exc
    try:
        return [message_from_record(record) for record in records]
    except StreamError as exc:
        raise ServeError(f"bad ingest record: {exc}") from exc


class ReproServer:
    """One listening socket multiplexing many tenants."""

    def __init__(
        self,
        manager: SessionManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ws_write_limit: Optional[int] = None,
        ws_sndbuf: Optional[int] = None,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        # Test/bench knobs: shrink the transport's write buffer and the
        # kernel send buffer so slow-consumer stalls surface at small
        # event counts instead of hiding behind megabytes of buffering.
        self.ws_write_limit = ws_write_limit
        self.ws_sndbuf = ws_sndbuf
        self._server: Optional[asyncio.AbstractServer] = None

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self, *, graceful: bool = True) -> None:
        """Stop listening and shut the manager down.

        Graceful: drain every tenant's queue and checkpoint persistent ones.
        Non-graceful: drop everything on the floor — the crash path tests
        lean on (durability then rests on the per-quantum delta logs).
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.manager.shutdown(graceful=graceful)

    # ------------------------------------------------------------- routing

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await wire.read_request(reader)
            except ServeError as exc:
                writer.write(
                    wire.http_response(400, {"error": str(exc)})
                )
                await writer.drain()
                return
            if request is None:
                return
            if request.wants_websocket:
                await self._route_websocket(request, reader, writer)
                return
            try:
                status, payload = await self._route(request)
            except ServeError as exc:
                status, payload = _error_status(exc), {"error": str(exc)}
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }
                print(
                    f"repro serve: internal error on {request.method} "
                    f"{request.path}: {exc!r}",
                    file=sys.stderr,
                )
            writer.write(wire.http_response(status, payload))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _route(self, request: wire.Request) -> Tuple[int, dict]:
        method, path = request.method, request.path
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "tenants": len(self.manager.tenants)}
        if path == "/metrics" and method == "GET":
            return 200, self.manager.metrics()
        if path in ("/v1", "/v1/") and method == "GET":
            return 200, {"tenants": sorted(self.manager.tenants)}
        parts = [p for p in path.split("/") if p]
        if len(parts) >= 2 and parts[0] == "v1":
            name = parts[1]
            action = parts[2] if len(parts) == 3 else None
            if len(parts) > 3:
                return 404, {"error": f"unknown path: {path}"}
            return await self._route_tenant(request, name, action)
        return 404, {"error": f"unknown path: {path}"}

    async def _route_tenant(
        self, request: wire.Request, name: str, action: Optional[str]
    ) -> Tuple[int, dict]:
        method = request.method
        manager = self.manager
        if action is None:
            if method == "PUT":
                body = request.json() or {}
                if not isinstance(body, dict):
                    raise ServeError("tenant body must be a JSON object")
                tenant = await manager.create(
                    name,
                    config=body.get("config"),
                    resume=bool(body.get("resume", False)),
                    persist=body.get("persist"),
                )
                return 200, {
                    "tenant": name,
                    "quantum": tenant.session.current_quantum,
                    "pending": tenant.session.batcher.pending,
                    "resumed": bool(body.get("resume", False)),
                }
            if method == "DELETE":
                drain = request.query.get("drain", "1") not in ("0", "false")
                return 200, await manager.close_tenant(name, drain=drain)
            if method == "GET":
                return 200, manager.get(name).stats()
            return 405, {"error": f"{method} not allowed on /v1/{name}"}
        tenant = manager.get(name)
        if action == "ingest" and method == "POST":
            messages = parse_ingest_body(request.body)
            result = tenant.enqueue(messages)
            if request.query.get("wait") in ("1", "true"):
                await tenant.wait_idle()
                result = dict(result)
                result["queued"] = 0
            result["quantum"] = tenant.session.current_quantum
            return 200, result
        if action == "stats" and method == "GET":
            return 200, tenant.stats()
        if action == "checkpoint" and method == "POST":
            body = request.json() or {}
            path = body.get("path")
            if not path:
                raise ServeError('checkpoint body needs {"path": ...}')
            await tenant.wait_idle()
            await tenant.snapshot(path)
            return 200, {
                "checkpoint": str(path),
                "quantum": tenant.session.current_quantum,
            }
        return 404, {
            "error": f"unknown action {action!r} for {method} /v1/{name}"
        }

    # ----------------------------------------------------------- websocket

    async def _route_websocket(
        self,
        request: wire.Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = [p for p in request.path.split("/") if p]
        key = request.headers.get("sec-websocket-key")
        if (
            key is None
            or len(parts) != 3
            or parts[0] != "v1"
            or parts[2] not in ("events", "stream")
        ):
            writer.write(
                wire.http_response(
                    400, {"error": f"not a WebSocket endpoint: {request.path}"}
                )
            )
            await writer.drain()
            return
        try:
            tenant = self.manager.get(parts[1])
            if parts[2] == "events":
                kinds = parse_kinds(request.query.get("kinds"))
                top_k = self._int_query(request, "top_k")
                buffer = self._int_query(request, "buffer")
            else:
                kinds = top_k = buffer = None
        except ServeError as exc:
            writer.write(
                wire.http_response(_error_status(exc), {"error": str(exc)})
            )
            await writer.drain()
            return
        writer.write(wire.websocket_upgrade_response(key))
        await writer.drain()
        if parts[2] == "events":
            self._shrink_buffers(writer)
            await self._serve_events(tenant, reader, writer, kinds, top_k, buffer)
        else:
            await self._serve_stream(tenant, reader, writer)

    @staticmethod
    def _int_query(request: wire.Request, name: str) -> Optional[int]:
        raw = request.query.get(name)
        if raw is None:
            return None
        try:
            value = int(raw)
        except ValueError:
            raise ServeError(f"{name} must be an integer, got {raw!r}") from None
        if value < 0:
            raise ServeError(f"{name} must be >= 0, got {value}")
        return value

    def _shrink_buffers(self, writer: asyncio.StreamWriter) -> None:
        if self.ws_write_limit is not None:
            writer.transport.set_write_buffer_limits(
                high=self.ws_write_limit
            )
        if self.ws_sndbuf is not None:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_SNDBUF, self.ws_sndbuf
                )

    async def _serve_events(
        self, tenant, reader, writer, kinds, top_k, buffer
    ) -> None:
        """Fan-out leg: one subscriber riding the tenant's hub."""
        subscriber = tenant.hub.attach(
            tenant.session, kinds=kinds, top_k=top_k, buffer=buffer
        )
        pump = asyncio.create_task(tenant.hub.pump(subscriber, writer))
        control = asyncio.create_task(self._ws_control(reader, writer))
        done, pending = await asyncio.wait(
            {pump, control}, return_when=asyncio.FIRST_COMPLETED
        )
        tenant.hub.detach(subscriber, "client disconnected")
        for task in pending:
            task.cancel()
        await asyncio.gather(pump, control, return_exceptions=True)
        try:
            writer.close()
        except Exception:
            pass

    async def _ws_control(self, reader, writer) -> None:
        """Read client frames on a fan-out socket: pings and close only."""
        try:
            while True:
                opcode, payload = await wire.read_frame(reader)
                if opcode == wire.OP_CLOSE:
                    return
                if opcode == wire.OP_PING:
                    writer.write(wire.encode_frame(wire.OP_PONG, payload))
                    await writer.drain()
        except (
            ServeError,
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            return

    async def _serve_stream(self, tenant, reader, writer) -> None:
        """Ingest leg: each text frame is one record or an array of them."""
        try:
            while True:
                opcode, payload = await wire.read_frame(reader)
                if opcode == wire.OP_CLOSE:
                    writer.write(wire.encode_frame(wire.OP_CLOSE, b""))
                    await writer.drain()
                    return
                if opcode == wire.OP_PING:
                    writer.write(wire.encode_frame(wire.OP_PONG, payload))
                    await writer.drain()
                    continue
                if opcode != wire.OP_TEXT:
                    continue
                try:
                    messages = parse_ingest_body(payload)
                    result = tenant.enqueue(messages)
                    result["quantum"] = tenant.session.current_quantum
                except ServeError as exc:
                    result = {"error": str(exc)}
                writer.write(
                    wire.encode_frame(
                        wire.OP_TEXT,
                        json.dumps(result, sort_keys=True).encode("utf-8"),
                    )
                )
                await writer.drain()
        except (
            ServeError,
            ConnectionError,
            asyncio.IncompleteReadError,
            OSError,
        ):
            return


async def serve_forever(
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    ready=None,
    **manager_kwargs,
) -> None:
    """Run a server until cancelled (the CLI entry point's core).

    On cancellation the manager shuts down gracefully: queues drain and
    persistent tenants are checkpointed (``final.ckpt`` next to their delta
    logs).  ``ready`` is an optional callable invoked with the bound
    ``(host, port)`` once listening.
    """
    loop = asyncio.get_running_loop()
    manager = SessionManager(loop, **manager_kwargs)
    server = ReproServer(manager, host=host, port=port)
    bound = await server.start()
    if ready is not None:
        ready(bound)
    try:
        await asyncio.Event().wait()  # until cancelled
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop(graceful=True)


class ServerThread:
    """A server on a daemon thread — the test/bench/example harness.

    ``start()`` returns the bound port.  ``stop(graceful=True)`` drains and
    checkpoints; ``stop(graceful=False)`` tears the loop down without
    closing tenants — the in-process stand-in for ``kill -9`` (per-quantum
    delta-log durability is what makes the subsequent resume correct).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ws_write_limit: Optional[int] = None,
        ws_sndbuf: Optional[int] = None,
        **manager_kwargs,
    ) -> None:
        self._host = host
        self._port = port
        self._ws_write_limit = ws_write_limit
        self._ws_sndbuf = ws_sndbuf
        self._manager_kwargs = manager_kwargs
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ReproServer] = None
        self._ready = threading.Event()
        self._done = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def start(self) -> int:
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("server thread did not start within 30s")
        if self._startup_error is not None:
            raise ServeError(
                f"server failed to start: {self._startup_error!r}"
            )
        return self.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        stop = loop.create_future()
        self._stop_future = stop

        async def main() -> None:
            manager = SessionManager(loop, **self._manager_kwargs)
            server = ReproServer(
                manager,
                host=self._host,
                port=self._port,
                ws_write_limit=self._ws_write_limit,
                ws_sndbuf=self._ws_sndbuf,
            )
            try:
                self.host, self.port = await server.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self._server = server
            self._ready.set()
            graceful = await stop
            await server.stop(graceful=graceful)

        try:
            loop.run_until_complete(main())
        finally:
            try:
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                loop.close()
                self._done.set()

    def stop(self, *, graceful: bool = True, timeout: float = 60.0) -> None:
        if self._loop is None or self._done.is_set():
            return

        def _signal() -> None:
            if not self._stop_future.done():
                self._stop_future.set_result(graceful)

        try:
            self._loop.call_soon_threadsafe(_signal)
        except RuntimeError:
            return
        if not self._done.wait(timeout=timeout):
            raise ServeError(f"server thread did not stop within {timeout}s")


__all__ = ["ReproServer", "ServerThread", "parse_ingest_body", "serve_forever"]
