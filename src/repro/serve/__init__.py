"""``repro.serve`` — the async multi-tenant serving layer (DESIGN.md §11).

One ``repro serve`` process multiplexes many named detector sessions
("tenants") over a shared worker budget: an asyncio front door (HTTP +
WebSocket, stdlib only) routes ingest batches onto per-tenant bounded
queues, a thread-pool executor runs the synchronous detector quanta, and a
fan-out hub bridges each tenant's subscription sinks to N WebSocket
subscribers with per-subscriber bounded buffers and a drop-oldest
slow-consumer policy.  Results per tenant are bit-identical to a
library-only run of the same stream.
"""

from repro.serve.client import ServeClient, WebSocketClient
from repro.serve.hub import FanoutHub, FanoutSubscriber, event_record
from repro.serve.manager import SessionManager, Tenant
from repro.serve.server import ReproServer, ServerThread, serve_forever

__all__ = [
    "FanoutHub",
    "FanoutSubscriber",
    "ReproServer",
    "ServeClient",
    "ServerThread",
    "SessionManager",
    "Tenant",
    "WebSocketClient",
    "event_record",
    "serve_forever",
]
