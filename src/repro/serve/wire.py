"""Wire primitives of the serving layer: HTTP/1.1 parsing + WebSocket frames.

Everything here is stdlib-only (DESIGN.md Section 11): the front door must
run on a bare python install, so instead of depending on an HTTP framework
the server speaks the small subset of HTTP/1.1 and RFC 6455 it needs —
request line + headers + ``Content-Length`` bodies on the REST side, and
unfragmented text/close/ping/pong frames on the WebSocket side.  The frame
codec is pure functions over bytes so the asyncio server and the blocking
:mod:`repro.serve.client` share one implementation (and one set of tests).
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import os
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ServeError

# RFC 6455 Section 1.3: the fixed GUID concatenated to the client key.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

# Frame opcodes (the subset the serving layer speaks).
OP_TEXT = 0x1
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 256 * 1024 * 1024  # a 256 MB cap, not a promise
MAX_FRAME_BYTES = 64 * 1024 * 1024


@dataclass
class Request:
    """One parsed HTTP request (REST call or WebSocket upgrade)."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body decoded as JSON (``None`` for an empty body)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc

    @property
    def wants_websocket(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        upgrade = self.headers.get("upgrade", "").lower()
        return "upgrade" in connection and upgrade == "websocket"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one HTTP request from the stream (None on clean EOF)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ServeError("truncated HTTP request") from exc
    except asyncio.LimitOverrunError as exc:
        raise ServeError("HTTP header section too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise ServeError("HTTP header section too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise ServeError(f"malformed request line: {lines[0]!r}") from exc
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(parts.query, keep_blank_values=True).items()
    }
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError as exc:
            raise ServeError(f"bad Content-Length: {length!r}") from exc
        if n < 0 or n > MAX_BODY_BYTES:
            raise ServeError(f"unreasonable Content-Length: {n}")
        body = await reader.readexactly(n)
    return Request(method.upper(), parts.path, query, headers, body)


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def http_response(status: int, payload, *, content_type: str = "application/json") -> bytes:
    """Serialize one ``Connection: close`` HTTP response."""
    if isinstance(payload, (dict, list)):
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    elif isinstance(payload, str):
        body = payload.encode("utf-8")
    else:
        body = payload
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def websocket_accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key (RFC 6455)."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def websocket_upgrade_response(client_key: str) -> bytes:
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {websocket_accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def encode_frame(opcode: int, payload: bytes, *, mask: bool = False) -> bytes:
    """Encode one unfragmented WebSocket frame.

    Servers send unmasked frames; clients MUST mask (RFC 6455 Section 5.3),
    so the blocking client passes ``mask=True``.
    """
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        key = os.urandom(4)
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def decode_frame_header(first_two: bytes) -> Tuple[int, bool, bool, int]:
    """Split the fixed 2-byte header: (opcode, fin, masked, length-code)."""
    fin = bool(first_two[0] & 0x80)
    opcode = first_two[0] & 0x0F
    masked = bool(first_two[1] & 0x80)
    length = first_two[1] & 0x7F
    return opcode, fin, masked, length


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame from an asyncio stream; returns (opcode, payload).

    Raises :class:`~repro.errors.ServeError` on protocol violations and
    :class:`asyncio.IncompleteReadError` on EOF mid-frame.
    """
    first_two = await reader.readexactly(2)
    opcode, fin, masked, length = decode_frame_header(first_two)
    if not fin:
        raise ServeError("fragmented WebSocket frames are not supported")
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_FRAME_BYTES:
        raise ServeError(f"WebSocket frame too large: {length} bytes")
    key = await reader.readexactly(4) if masked else None
    payload = await reader.readexactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


def read_frame_blocking(rfile) -> Tuple[int, bytes]:
    """Blocking twin of :func:`read_frame` over a ``makefile('rb')`` object."""

    def exactly(n: int) -> bytes:
        data = rfile.read(n)
        if data is None or len(data) != n:
            raise ServeError("WebSocket connection closed mid-frame")
        return data

    first_two = exactly(2)
    opcode, fin, masked, length = decode_frame_header(first_two)
    if not fin:
        raise ServeError("fragmented WebSocket frames are not supported")
    if length == 126:
        (length,) = struct.unpack(">H", exactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", exactly(8))
    if length > MAX_FRAME_BYTES:
        raise ServeError(f"WebSocket frame too large: {length} bytes")
    key = exactly(4) if masked else None
    payload = exactly(length) if length else b""
    if key is not None:
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return opcode, payload


__all__ = [
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "Request",
    "encode_frame",
    "http_response",
    "read_frame",
    "read_frame_blocking",
    "read_request",
    "websocket_accept_key",
    "websocket_upgrade_response",
]
