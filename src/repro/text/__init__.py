"""Lightweight text processing: tokenisation, stop words, noun tagging."""

from repro.text.tokenize import tokenize
from repro.text.stopwords import STOP_WORDS, is_stop_word
from repro.text.pos import NounTagger
from repro.text.synonyms import SynonymNormalizer

__all__ = [
    "tokenize",
    "STOP_WORDS",
    "is_stop_word",
    "NounTagger",
    "SynonymNormalizer",
]
