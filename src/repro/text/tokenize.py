"""Tokenisation of microblog text into CKG keywords.

Keywords are lower-cased; stop words, URLs and one-character fragments are
dropped.  Numeric tokens with a decimal point survive intact — the paper's
Figure 1 example depends on "5.9" (the earthquake magnitude) becoming a
graph node.  Hashtags keep their ``#`` prefix because ``#jobs`` and ``jobs``
are distinct trending signals on microblogs.
"""

from __future__ import annotations

import re
from typing import List

from repro.text.stopwords import STOP_WORDS

_URL_RE = re.compile(r"https?://\S+|www\.\S+")
_TOKEN_RE = re.compile(r"[#@]?[a-z][a-z0-9_'\-]*|\d+(?:\.\d+)?")


def tokenize(text: str) -> List[str]:
    """Extract keyword tokens from raw message text.

    >>> tokenize("Earthquake of 5.9 struck Eastern Turkey! http://t.co/x")
    ['earthquake', '5.9', 'struck', 'eastern', 'turkey']
    """
    cleaned = _URL_RE.sub(" ", text.lower())
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(cleaned):
        token = match.group().strip("'-")
        if len(token) < 2:
            continue
        if token in STOP_WORDS:
            continue
        tokens.append(token)
    return tokens


__all__ = ["tokenize"]
