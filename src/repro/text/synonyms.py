"""Keyword normalisation: the paper's pre-processing hook (Section 1.1).

Two clusters describing one event can fail to merge when users pick
synonymous keywords ("quake" / "earthquake") or post in different languages.
The paper proposes dictionary/thesaurus pre-processing as the remedy and
leaves it as future work; this module supplies that hook: a
:class:`SynonymNormalizer` maps every token to a canonical representative
before it reaches the CKG, so synonymous keywords become one node.

The normaliser is intentionally dictionary-driven (no embedded linguistics):
callers supply synonym groups — from a thesaurus, a translation table, or
domain knowledge — and the normaliser canonicalises deterministically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.errors import ConfigError


class SynonymNormalizer:
    """Token canonicaliser over user-supplied synonym groups."""

    def __init__(self, groups: Iterable[Sequence[str]] = ()) -> None:
        """``groups``: iterables of synonymous words; the first word of each
        group (lower-cased) becomes the canonical representative."""
        self._canonical: Dict[str, str] = {}
        for group in groups:
            self.add_group(group)

    def add_group(self, group: Sequence[str]) -> None:
        words = [w.lower() for w in group]
        if len(words) < 2:
            raise ConfigError(f"synonym group needs >= 2 words: {group!r}")
        head = self._canonical.get(words[0], words[0])
        for word in words:
            existing = self._canonical.get(word)
            if existing is not None and existing != head:
                # merging two previously separate groups: repoint the old head
                for key, value in list(self._canonical.items()):
                    if value == existing:
                        self._canonical[key] = head
                self._canonical[existing] = head
            self._canonical[word] = head

    def canonical(self, token: str) -> str:
        """The canonical representative of ``token`` (itself if unmapped)."""
        return self._canonical.get(token, token)

    def normalize(self, tokens: Iterable[str]) -> List[str]:
        """Canonicalise a token sequence, deduplicating collapsed synonyms
        while preserving first-occurrence order."""
        seen: set = set()
        out: List[str] = []
        for token in tokens:
            canon = self.canonical(token)
            if canon not in seen:
                seen.add(canon)
                out.append(canon)
        return out

    def __len__(self) -> int:
        return len(self._canonical)

    def wrap_tokenizer(self, tokenizer):
        """A tokenizer that normalises its output — drop-in for the engine."""

        def tokenize_normalized(text: str) -> List[str]:
            return self.normalize(tokenizer(text))

        return tokenize_normalized


__all__ = ["SynonymNormalizer"]
