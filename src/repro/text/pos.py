"""Noun identification for the spurious-event filter (Section 7.2.2).

The paper drops clusters containing no noun keyword ("there must be at least
one noun keyword in real world events") using the Stanford POS tagger.  A
full statistical tagger is out of scope offline, so this module substitutes:

* an optional **lexicon** (word -> part-of-speech) — the synthetic dataset
  generator supplies ground-truth tags for its whole vocabulary, making the
  filter exact on synthetic traces;
* a **suffix heuristic** fallback for out-of-lexicon words, tuned for the
  precision filter's actual question ("could this possibly be a noun?").

DESIGN.md records this substitution.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

_NON_NOUN_SUFFIXES = (
    "ly",       # adverbs
    "ing",      # gerunds/participles (often verbs in microblog text)
    "ed",       # past participles
    "ful", "ous", "ive", "able", "ible", "ish",  # adjectives
)

_CLOSED_CLASS_NON_NOUNS = frozenset(
    """
    very really quite almost maybe perhaps soon later never always often
    said says going gonna wanna watch watching breaking live massive huge
    moderate awesome amazing terrible horrible great good bad big small
    many much says today tonight tomorrow yesterday now
    """.split()
)


class NounTagger:
    """Binary noun/non-noun classifier with lexicon override."""

    def __init__(self, lexicon: Optional[Mapping[str, str]] = None) -> None:
        """``lexicon`` maps word -> POS tag; any tag starting with "n"
        (case-insensitive: "n", "noun", "NN", "NNP"...) counts as a noun."""
        self._lexicon = dict(lexicon) if lexicon else {}

    def extend_lexicon(self, lexicon: Mapping[str, str]) -> None:
        self._lexicon.update(lexicon)

    def is_noun(self, word: str) -> bool:
        token = word.lower().lstrip("#@")
        tag = self._lexicon.get(token)
        if tag is not None:
            return tag.lower().startswith("n")
        if not token:
            return False
        if token[0].isdigit():
            # Bare numerals ("5.9") qualify an event cluster only together
            # with a real noun, so they do not count as nouns themselves.
            return False
        if token in _CLOSED_CLASS_NON_NOUNS:
            return False
        return not token.endswith(_NON_NOUN_SUFFIXES)

    def has_noun(self, words: Iterable[str]) -> bool:
        """True iff at least one word is (possibly) a noun — the filter the
        precision analysis applies to whole clusters."""
        return any(self.is_noun(word) for word in words)


__all__ = ["NounTagger"]
