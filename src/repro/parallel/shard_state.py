"""Shard-local window state and the per-quantum shard update message.

A :class:`ShardState` owns, for one keyword hash range, exactly the window
indexes the serial :class:`~repro.akg.builder.AkgBuilder` owns globally: an
:class:`~repro.akg.idsets.IdSetIndex` (with its bounded per-shard MinHash
memo) and a :class:`~repro.akg.minhash.WindowedSketchIndex`.  Because every
index is keyed by keyword and keywords never move between shards, running
the same slice sequence through a shard produces byte-for-byte the state the
serial index would hold restricted to that range — which is what makes the
merged checkpoint identical to a serial one.

Per quantum a shard performs the *keyword-local* work — the id-set slide,
hash-memo eviction, mini-sketch hashing, the ``count >= theta`` burst test —
and ships a :class:`ShardUpdate` up to the merge: its slice of the
:class:`~repro.akg.idsets.SlideDelta`, its bursty keywords with their
merged sketches, and the window id sets the merge requested (the
cross-shard exchange: active keywords, their graph neighbours, and burst
candidates, so the parent can evaluate exact ECs that span shard
boundaries).  Everything cross-keyword — candidate pairing, EC thresholds,
graph mutation, cluster maintenance — happens in the deterministic merge
(:mod:`repro.parallel.frontend`), never here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

from repro.akg.idsets import IdSetIndex
from repro.akg.minhash import MinHasher, Sketch, WindowedSketchIndex

Keyword = str
UserId = Hashable


@dataclass(frozen=True)
class ShardParams:
    """Constructor bundle shipped to workers at pool start (picklable)."""

    window_quanta: int
    minhash_size: int
    seed: int
    theta: int
    use_minhash: bool


@dataclass
class ShardUpdate:
    """One shard's contribution to one quantum's merge (picklable).

    ``support_deltas``/``appeared``/``expired``/``emptied`` are the shard's
    slice of the global ``SlideDelta`` (keyword-disjoint across shards, so
    the merged delta is their plain union).  ``bursty`` are the slice
    keywords that cleared theta this quantum; ``sketches`` their merged
    window sketches; ``id_sets`` the requested window id sets for the
    cross-shard EC exchange.
    """

    shard: int
    appeared: FrozenSet[Keyword] = frozenset()
    expired: FrozenSet[Keyword] = frozenset()
    emptied: FrozenSet[Keyword] = frozenset()
    support_deltas: Dict[Keyword, Tuple[int, int]] = field(default_factory=dict)
    bursty: FrozenSet[Keyword] = frozenset()
    sketches: Dict[Keyword, Sketch] = field(default_factory=dict)
    id_sets: Dict[Keyword, FrozenSet[UserId]] = field(default_factory=dict)


class ShardState:
    """The window state of one keyword hash range."""

    def __init__(self, shard: int, params: ShardParams) -> None:
        self.shard = shard
        self.params = params
        self.idsets = IdSetIndex(params.window_quanta)
        self.hasher = MinHasher(params.minhash_size, seed=params.seed)
        self.sketches = WindowedSketchIndex(self.hasher, params.window_quanta)

    def ingest(
        self,
        quantum: int,
        keyword_users: Mapping[Keyword, Set[UserId]],
        extra_ids: Iterable[Keyword],
    ) -> ShardUpdate:
        """Apply one quantum's shard slice; return the merge contribution.

        ``extra_ids`` are the keywords (already routed to this shard) whose
        window id sets the merge's exact-EC evaluations will read: the
        quantum's active *graph* keywords and their graph neighbours (the
        incident-edge refresh).  Bursty keywords (new-edge candidates) are
        added shard-side.  Restricting the exchange to this set matters: a
        quantum's long-tail vocabulary is mostly sub-threshold non-graph
        keywords whose id sets no EC will ever read — shipping them would
        dominate the scatter/gather cost for nothing.
        """
        params = self.params
        delta = self.idsets.add_quantum(quantum, keyword_users)
        if delta.vanished_users:
            self.hasher.evict(delta.vanished_users)
        if params.use_minhash:
            self.sketches.add_quantum(quantum, keyword_users)
        bursty = frozenset(
            kw
            for kw, users in keyword_users.items()
            if len(users) >= params.theta
        )
        sketches: Dict[Keyword, Sketch] = {}
        if params.use_minhash:
            sketches = {kw: self.sketches.sketch(kw) for kw in bursty}
        id_sets: Dict[Keyword, FrozenSet[UserId]] = {}
        wanted = (
            extra_ids | bursty
            if isinstance(extra_ids, (set, frozenset))
            else set(extra_ids) | bursty
        )
        for kw in wanted:
            users = self.idsets.id_set(kw)
            if users:
                id_sets[kw] = users
        return ShardUpdate(
            shard=self.shard,
            appeared=delta.appeared,
            expired=delta.expired,
            emptied=delta.emptied,
            support_deltas=dict(delta.support_deltas),
            bursty=bursty,
            sketches=sketches,
            id_sets=id_sets,
        )

    # ---------------------------------------------------------- persistence

    def export_state(self) -> Tuple[int, dict, dict]:
        """``(shard, idsets_state, sketches_state)`` — this shard's slice of
        the serial checkpoint layout (each already in sorted keyword
        order)."""
        return (self.shard, self.idsets.to_state(), self.sketches.to_state())

    def load_state(self, idsets_state: dict, sketches_state: dict) -> None:
        self.idsets.from_state(idsets_state)
        self.sketches.from_state(sketches_state)
        self.hasher.clear()


__all__ = ["ShardParams", "ShardState", "ShardUpdate"]
