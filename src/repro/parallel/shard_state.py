"""Shard-local window state and the per-quantum shard update message.

A :class:`ShardState` owns, for one keyword hash range, exactly the window
indexes the serial :class:`~repro.akg.builder.AkgBuilder` owns globally: an
:class:`~repro.akg.idsets.IdSetIndex` (with its bounded per-shard MinHash
memo) and a :class:`~repro.akg.minhash.WindowedSketchIndex`.  Because every
index is keyed by keyword and keywords never move between shards, running
the same slice sequence through a shard produces byte-for-byte the state the
serial index would hold restricted to that range — which is what makes the
merged checkpoint identical to a serial one.

A shard serves two phases per quantum.  Phase one (:meth:`ShardState.
ingest`) is the *keyword-local* work — the id-set slide, hash-memo
eviction, mini-sketch hashing, the ``count >= theta`` burst test — shipping
a :class:`ShardUpdate` up to the merge: its slice of the
:class:`~repro.akg.idsets.SlideDelta` plus its bursty keywords with their
merged sketches.  Phase two (:meth:`ShardState.exchange`) answers the
merge's EC requests once the parent has classified the quantum's candidate
and refresh pairs against the graph: pairs whose *both* members live on
this shard are answered as finished exact ECs (computed here, against the
local window id sets, with the very jaccard the merge would run), and only
the id sets of keywords in *cross-shard* pairs ride the wire — the
long-tail vocabulary never travels at all.  Everything cross-keyword —
candidate pairing, EC thresholds, graph mutation, cluster maintenance —
happens in the deterministic merge (:mod:`repro.parallel.frontend`), never
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Set, Tuple

from repro.akg.idsets import IdSetIndex
from repro.akg.minhash import MinHasher, Sketch, WindowedSketchIndex

Keyword = str
UserId = Hashable


@dataclass(frozen=True)
class ShardParams:
    """Constructor bundle shipped to workers at pool start (picklable)."""

    window_quanta: int
    minhash_size: int
    seed: int
    theta: int
    use_minhash: bool


@dataclass
class ShardUpdate:
    """One shard's contribution to one quantum's merge (picklable).

    ``support_deltas``/``appeared``/``expired``/``emptied`` are the shard's
    slice of the global ``SlideDelta`` (keyword-disjoint across shards, so
    the merged delta is their plain union).  ``bursty`` are the slice
    keywords that cleared theta this quantum; ``sketches`` their merged
    window sketches.  ``id_sets`` is unused by the two-phase flow (the EC
    exchange ships them in phase two, see :meth:`ShardState.exchange`) and
    kept for wire/struct compatibility.
    """

    shard: int
    appeared: FrozenSet[Keyword] = frozenset()
    expired: FrozenSet[Keyword] = frozenset()
    emptied: FrozenSet[Keyword] = frozenset()
    support_deltas: Dict[Keyword, Tuple[int, int]] = field(default_factory=dict)
    bursty: FrozenSet[Keyword] = frozenset()
    sketches: Dict[Keyword, Sketch] = field(default_factory=dict)
    id_sets: Dict[Keyword, FrozenSet[UserId]] = field(default_factory=dict)


class ShardState:
    """The window state of one keyword hash range."""

    def __init__(self, shard: int, params: ShardParams) -> None:
        self.shard = shard
        self.params = params
        self.idsets = IdSetIndex(params.window_quanta)
        self.hasher = MinHasher(params.minhash_size, seed=params.seed)
        self.sketches = WindowedSketchIndex(self.hasher, params.window_quanta)

    def ingest(
        self,
        quantum: int,
        keyword_users: Mapping[Keyword, Set[UserId]],
    ) -> ShardUpdate:
        """Phase one: apply a quantum's shard slice, report the window delta.

        Pure window slide plus the burst test — graph-independent, so the
        parent can scatter it before (or while) the previous quantum's
        serial tail is still running.  No id sets ship here: which sets the
        merge actually needs depends on the graph, and the phase-two
        :meth:`exchange` answers exactly that request.
        """
        params = self.params
        delta = self.idsets.add_quantum(quantum, keyword_users)
        if delta.vanished_users:
            self.hasher.evict(delta.vanished_users)
        if params.use_minhash:
            self.sketches.add_quantum(quantum, keyword_users)
        bursty = frozenset(
            kw
            for kw, users in keyword_users.items()
            if len(users) >= params.theta
        )
        sketches: Dict[Keyword, Sketch] = {}
        if params.use_minhash:
            sketches = {kw: self.sketches.sketch(kw) for kw in bursty}
        return ShardUpdate(
            shard=self.shard,
            appeared=delta.appeared,
            expired=delta.expired,
            emptied=delta.emptied,
            support_deltas=dict(delta.support_deltas),
            bursty=bursty,
            sketches=sketches,
        )

    def exchange(
        self,
        pairs: Iterable[Tuple[Keyword, Keyword]],
        want_ids: Iterable[Keyword],
    ) -> Tuple[int, Dict[Tuple[Keyword, Keyword], float], Dict[Keyword, FrozenSet[UserId]]]:
        """Phase two: answer the merge's EC requests for this quantum.

        ``pairs`` are candidate/refresh pairs whose members *both* live on
        this shard — their exact ECs are computed here, against the local
        window id sets, with the identical arithmetic the merge's jaccard
        closure runs (same empty-set shortcut, same ``len``-based
        intersection/union division), so the parent-applied edge weights
        are bit-for-bit what a serial builder computes.  ``want_ids`` are
        the keywords (routed to this shard) appearing in cross-shard pairs;
        their window id sets ship back for the parent to evaluate.  Empty
        id sets are elided, matching the merge closure's ``.get``-miss
        semantics.
        """
        id_set = self.idsets.id_set
        ecs: Dict[Tuple[Keyword, Keyword], float] = {}
        for kw1, kw2 in pairs:
            set1 = id_set(kw1)
            set2 = id_set(kw2)
            if not set1 or not set2:
                ecs[(kw1, kw2)] = 0.0
                continue
            intersection = len(set1 & set2)
            union = len(set1) + len(set2) - intersection
            ecs[(kw1, kw2)] = intersection / union if union else 0.0
        id_sets: Dict[Keyword, FrozenSet[UserId]] = {}
        for kw in want_ids:
            users = id_set(kw)
            if users:
                id_sets[kw] = users
        return (self.shard, ecs, id_sets)

    # ---------------------------------------------------------- persistence

    def export_state(self) -> Tuple[int, dict, dict]:
        """``(shard, idsets_state, sketches_state)`` — this shard's slice of
        the serial checkpoint layout (each already in sorted keyword
        order)."""
        return (self.shard, self.idsets.to_state(), self.sketches.to_state())

    def load_state(self, idsets_state: dict, sketches_state: dict) -> None:
        self.idsets.from_state(idsets_state)
        self.sketches.from_state(sketches_state)
        self.hasher.clear()


__all__ = ["ShardParams", "ShardState", "ShardUpdate"]
