"""Entity-range sharded front-end for the extract + AKG-update stages.

The per-quantum entity work — id-set slides, sketch hashing, burst
transition tests — is embarrassingly parallel *per entity*: every window
index keyed by entity token decomposes into independent partitions.  This
package exploits that (the ROADMAP scale-out item); "keyword" in the shard
internals below means "entity token" — the keyword workload is the paper's
instantiation:

* :class:`~repro.parallel.router.ShardRouter` splits the keyword space into
  ``shard_count`` contiguous 64-bit hash ranges (stable blake2b, so the
  partition is identical across processes and runs);
* each shard owns a shard-local ``IdSetIndex`` + ``WindowedSketchIndex``
  (:mod:`repro.parallel.shard_state`), hosted by a worker — a forked
  process, a thread, or the caller itself (:mod:`repro.parallel.pool`);
* a deterministic merge (:mod:`repro.parallel.frontend`) combines the
  per-shard outputs in global sorted-keyword order and applies every graph
  and cluster mutation to the single authoritative
  ``DynamicGraph``/``ClusterMaintainer`` — including the *cross-shard*
  candidate edges, whose sketch collisions and exact ECs are evaluated on
  data the workers shipped up (the exchange protocol of DESIGN.md S7);
* :class:`~repro.parallel.stages.ShardedExtractStage` and
  :class:`~repro.parallel.stages.ShardedAkgUpdateStage` slot the whole
  thing behind the existing :class:`repro.pipeline.stages.Stage` protocol;
* workers may live in *other processes on other machines*: the
  :class:`~repro.parallel.transport.ShardTransport` seam
  (:mod:`repro.parallel.transport`) abstracts the wire, and
  :mod:`repro.parallel.remote` hosts shards behind a length-prefixed,
  CRC-framed TCP daemon (``repro shard-worker``) the ``remote`` backend
  scatters to (DESIGN.md Section 12).

The headline invariant: **results are bit-identical for any worker count,
any shard count, and any transport** — reports, sink events, histories,
and checkpoints (checkpoints use the serial layout, merged across
shards), proven by ``tests/test_parallel_shard_invariance.py`` and
``tests/test_distributed_transport.py``.
"""

from repro.parallel.frontend import PendingQuantum, ShardedAkgFrontend
from repro.parallel.pool import WorkerPool, default_backend, make_pool
from repro.parallel.remote import ShardWorkerServer, serve_shard_worker
from repro.parallel.router import ShardRouter
from repro.parallel.shard_state import ShardParams, ShardState, ShardUpdate
from repro.parallel.stages import (
    BatchedShardedExtractStage,
    ShardedAkgUpdateStage,
    ShardedExtractStage,
)
from repro.parallel.transport import (
    ProcessShardTransport,
    RemoteShardTransport,
    SerialShardTransport,
    ShardTransport,
    ThreadShardTransport,
    TransportError,
)

__all__ = [
    "BatchedShardedExtractStage",
    "PendingQuantum",
    "ProcessShardTransport",
    "RemoteShardTransport",
    "SerialShardTransport",
    "ShardParams",
    "ShardRouter",
    "ShardState",
    "ShardTransport",
    "ShardUpdate",
    "ShardWorkerServer",
    "ShardedAkgFrontend",
    "ShardedAkgUpdateStage",
    "ShardedExtractStage",
    "ThreadShardTransport",
    "TransportError",
    "WorkerPool",
    "default_backend",
    "make_pool",
    "serve_shard_worker",
]
