"""The ``repro shard-worker`` daemon: shard states hosted over TCP.

One daemon serves one parent session at a time (shard workers are
stateful peers of a single pipeline, not a shared service): it accepts a
connection, checks the :data:`~repro.parallel.transport.PROTOCOL_MAGIC`
preamble, builds the shard states the parent's ``init`` message names, and
then loops the same :func:`~repro.parallel.transport.dispatch_op` the fork
and thread backends run — which is precisely why a remote run is
bit-identical to a local one.  When the parent says ``bye`` (or just goes
away) the connection's states are dropped and the daemon returns to
``accept``, ready for the next session.

Operation errors are answered in-band (``{"ok": false, "error": ...}``) so
a bad request fails one quantum loudly without killing the daemon; framing
errors (bad magic, CRC mismatch) drop the connection, because a corrupt
stream has no trustworthy resync point.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict

from repro.api.checkpoint import decode_state, encode_state
from repro.parallel.shard_state import ShardState
from repro.parallel.transport import (
    PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
    TransportError,
    _recv_exact,
    dispatch_op,
    params_from_wire,
    recv_frame,
    send_frame,
    update_to_wire,
)


class ShardWorkerServer:
    """A bound, not-yet-serving shard worker daemon.

    Binding in the constructor (with ``port=0`` allocating a free port)
    lets a launcher read :attr:`port` before entering
    :meth:`serve_forever` — the CLI prints it for operators, and tests
    host the server on a thread without racing the client's connect.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self._stopped = threading.Event()
        self.host, self.port = self._listener.getsockname()[:2]

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------ lifecycle

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` (or fatal error)."""
        self._listener.settimeout(0.2)  # poll the stop flag between accepts
        try:
            while not self._stopped.is_set():
                try:
                    conn, _ = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us
                try:
                    self._serve_connection(conn)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def stop(self) -> None:
        """Ask :meth:`serve_forever` to exit; safe from another thread."""
        self._stopped.set()

    # ----------------------------------------------------------- connection

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            magic = _recv_exact(conn, len(PROTOCOL_MAGIC))
        except (ConnectionError, OSError):
            return
        if magic != PROTOCOL_MAGIC:
            return  # not a shard-worker client; drop silently
        states: Dict[int, ShardState] = {}
        while True:
            try:
                message = recv_frame(conn)
            except (ConnectionError, OSError):
                return  # parent went away; drop its states
            except TransportError as exc:
                self._answer(conn, {"ok": False, "error": str(exc)})
                return  # corrupt stream: no resync point
            op = message.get("op")
            if op == "bye":
                return
            if op == "ping":
                self._answer(conn, {"ok": True})
                continue
            if op == "init":
                reply = self._handle_init(message, states)
            else:
                reply = self._handle_op(message, states)
            if not self._answer(conn, reply):
                return

    def _handle_init(
        self, message: dict, states: Dict[int, ShardState]
    ) -> dict:
        if message.get("protocol") != PROTOCOL_VERSION:
            # Answer with our version anyway — the client raises the
            # readable mismatch error on its side.
            return {"ok": True, "protocol": PROTOCOL_VERSION}
        try:
            params = params_from_wire(message["params"])
            shards = [int(s) for s in message["shards"]]
        except (KeyError, TypeError, ValueError) as exc:
            return {"ok": False, "error": f"malformed init: {exc}"}
        states.clear()
        states.update({s: ShardState(s, params) for s in shards})
        return {"ok": True, "protocol": PROTOCOL_VERSION, "shards": shards}

    def _handle_op(
        self, message: dict, states: Dict[int, ShardState]
    ) -> dict:
        op = message.get("op")
        try:
            args = tuple(decode_state(message.get("args")))
            result = dispatch_op(states, op, args)
            if op == "ingest":
                result = [update_to_wire(update) for update in result]
            return {"ok": True, "result": encode_state(result)}
        except Exception as exc:  # answered in-band; daemon survives
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }

    @staticmethod
    def _answer(conn: socket.socket, reply: dict) -> bool:
        try:
            send_frame(conn, reply)
            return True
        except (ConnectionError, OSError, TransportError):
            return False


def serve_shard_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    announce=None,
) -> None:
    """Blocking entry point behind ``repro shard-worker``.

    ``announce(server)`` is called once the socket is bound (the CLI prints
    ``listening on HOST:PORT`` there, which launchers — and the CI smoke
    test — parse to learn an auto-allocated port).
    """
    server = ShardWorkerServer(host, port)
    if announce is not None:
        announce(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()


__all__ = ["ShardWorkerServer", "serve_shard_worker"]
