"""Shard worker transports: the wire seam under :class:`~repro.parallel.pool.WorkerPool`.

The pool's protocol has always been value-shaped — entity slices out,
:class:`~repro.parallel.shard_state.ShardUpdate` back — which is exactly a
wire format.  This module names it: a :class:`ShardTransport` carries the
five worker operations (``ingest`` / ``exchange`` / ``extract`` /
``export`` / ``load``) to wherever the shard states physically live, and
four implementations cover the deployment spectrum:

:class:`SerialShardTransport`
    States live in the caller; ``finish()`` executes in place (the ``W=1``
    baseline).
:class:`ThreadShardTransport`
    States live in the process; operations run on a shared thread pool.
:class:`ProcessShardTransport`
    States live in a forked single-process executor pinned to the worker's
    shard run (the multi-core backend).
:class:`RemoteShardTransport`
    States live in a ``repro shard-worker`` daemon reached over TCP
    (:mod:`repro.parallel.remote`), with connect retry, per-operation
    timeouts, and a readable :class:`~repro.errors.PipelineError` when the
    worker dies mid-quantum.

Every transport exposes the same split API — ``begin(op, args)`` scatters
one request, ``finish()`` gathers its reply — so the pool can write to all
workers before reading from any: that is what makes W sockets (or W
executors) advance in parallel rather than lock-step.

The socket wire format reuses the repo's framing discipline
(``serve/wire.py`` / ``deltalog``): a 4-byte connection magic, then
length-prefixed CRC-framed JSON messages.  Payload values travel through
:func:`repro.api.checkpoint.encode_state` — the canonical tagged codec that
round-trips tuples, (frozen)sets, non-string dict keys and floats exactly —
never pickle, so a daemon only ever evaluates data, not code, and gathered
id sets / sketches / ECs are bit-identical to the fork path's.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import struct
import time
import zlib
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.api.checkpoint import decode_state, encode_state
from repro.errors import PipelineError
from repro.parallel.shard_state import ShardParams, ShardState, ShardUpdate

Keyword = str
UserId = Hashable

#: Connection preamble a client sends before its first frame; the daemon
#: refuses anything else (a browser or stray scanner poking the port fails
#: fast instead of hanging in the frame reader).
PROTOCOL_MAGIC = b"RSW1"

#: Bumped on any incompatible message-schema change; the init handshake
#: refuses a mismatch so a stale daemon fails loudly, not subtly.
PROTOCOL_VERSION = 1

_FRAME_HEADER = struct.Struct(">II")  # (payload length, CRC32) — as deltalog
_MAX_FRAME = 1 << 31


class TransportError(PipelineError):
    """A shard transport failed (connect, frame, or worker death)."""


# --------------------------------------------------------------- frame codec


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, message: dict) -> None:
    """Write one length-prefixed, CRC-framed JSON message."""
    payload = json.dumps(
        message, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(payload) > _MAX_FRAME:
        raise TransportError(
            f"frame of {len(payload)} bytes exceeds the {_MAX_FRAME}-byte "
            f"transport bound"
        )
    sock.sendall(
        _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
    )


def recv_frame(sock: socket.socket) -> dict:
    """Read one frame; raises ``ConnectionError``/``TransportError``."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    length, crc = _FRAME_HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(
            f"frame header announces {length} bytes (> {_MAX_FRAME}); "
            f"stream is corrupt or not a shard-worker peer"
        )
    payload = _recv_exact(sock, length)
    if zlib.crc32(payload) != crc:
        raise TransportError("frame CRC mismatch; stream is corrupt")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"frame payload is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise TransportError(
            f"frame payload must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


# ----------------------------------------------------------- value wire form


def update_to_wire(update: ShardUpdate) -> dict:
    """A ``ShardUpdate`` as a plain field dict (the value the generic
    :func:`~repro.api.checkpoint.encode_state` pass then makes JSON-safe,
    with exact float/set/tuple round trip)."""
    return {
        "shard": update.shard,
        "appeared": update.appeared,
        "expired": update.expired,
        "emptied": update.emptied,
        "support_deltas": update.support_deltas,
        "bursty": update.bursty,
        "sketches": update.sketches,
        "id_sets": update.id_sets,
    }


def update_from_wire(data: dict) -> ShardUpdate:
    return ShardUpdate(**data)


def params_to_wire(params: ShardParams) -> dict:
    return {
        "window_quanta": params.window_quanta,
        "minhash_size": params.minhash_size,
        "seed": params.seed,
        "theta": params.theta,
        "use_minhash": params.use_minhash,
    }


def params_from_wire(wire: dict) -> ShardParams:
    return ShardParams(**wire)


# --------------------------------------------------------------- worker side
#
# One dispatch function shared by every physical host of shard states: the
# forked process entry point, the thread/serial transports, and the remote
# daemon all run the same code over their own ``{shard: ShardState}`` map,
# which is what keeps the backends interchangeable to the bit.


def extract_chunk(
    messages: Sequence, max_entities: int, shard_count: int, spec: dict
) -> List[dict]:
    """Extract one record chunk into per-shard ``entity -> actors`` maps.

    Inversion and shard routing happen *here*, in the worker, so the parent
    merge is a dict union over distinct entities instead of per-token set
    inserts — the difference between a ~50% and a ~90% parallel fraction of
    the front-end wall.  Per-quantum spatial-correlation semantics are
    preserved exactly: an actor counts once per entity per quantum (set
    dedupe across records and chunks), and the ``max_entities`` cap applies
    per record, as in ``actor_entities_of_quantum``.

    ``spec`` is the extractor's ``{"name", "options"}`` registry spec:
    workers rebuild the extractor by value, which is why only
    reconstructible extractors ride the sharded extract stage (custom
    callables neither pickle nor checkpoint — the session keeps the serial
    stage for those).
    """
    # Imported here (not at module top) so forked workers resolve them in
    # their own interpreter.
    from repro.extract import make_extractor
    from repro.parallel.router import ShardRouter
    from repro.stream.messages import Message

    extractor = make_extractor(spec["name"], spec["options"])
    shard_of = ShardRouter(shard_count).shard_of
    shard_memo: Dict[str, int] = {}
    slices: List[dict] = [{} for _ in range(shard_count)]
    for item in messages:
        if type(item) is tuple:  # wire form: (user_id, text, tokens, fields)
            user = item[0]
            message = Message(
                user, tokens=item[2], text=item[1], fields=item[3]
            )
        else:
            user = item.user_id
            message = item
        entities = extractor.entities(message)
        if not entities:
            continue
        if max_entities is not None:
            entities = entities[:max_entities]
        for kw in entities:
            shard = shard_memo.get(kw)
            if shard is None:
                shard = shard_memo[kw] = shard_of(kw)
            piece = slices[shard]
            users = piece.get(kw)
            if users is None:
                piece[kw] = {user}
            else:
                users.add(user)
    return slices


def dispatch_op(
    states: Dict[int, ShardState], op: str, args: tuple
) -> Any:
    """Run one worker operation against a ``{shard: ShardState}`` map."""
    if op == "ingest":
        quantum, requests = args
        return [
            states[shard].ingest(quantum, keyword_users)
            for shard, keyword_users in requests
        ]
    if op == "exchange":
        (requests,) = args
        return [
            states[shard].exchange(pairs, want_ids)
            for shard, pairs, want_ids in requests
        ]
    if op == "extract":
        return extract_chunk(*args)
    if op == "export":
        return [states[shard].export_state() for shard in sorted(states)]
    if op == "load":
        (payload,) = args
        for shard, idsets_state, sketches_state in payload:
            states[shard].load_state(idsets_state, sketches_state)
        return None
    raise PipelineError(f"unknown shard worker operation: {op!r}")


# Per-process registry for forked workers: the initializer builds this
# process's shard states once; every task submitted to its single-process
# executor finds them in place.
_WORKER_STATES: Dict[int, ShardState] = {}


def _init_worker(shard_ids: Sequence[int], params: ShardParams) -> None:
    global _WORKER_STATES
    _WORKER_STATES = {s: ShardState(s, params) for s in shard_ids}


def _worker_op(op: str, args: tuple) -> Any:
    return dispatch_op(_WORKER_STATES, op, args)


# ----------------------------------------------------------- the transports


@runtime_checkable
class ShardTransport(Protocol):
    """One worker endpoint hosting a contiguous shard run.

    ``begin(op, args)`` scatters one request; ``finish()`` gathers its
    reply (at most one request may be in flight per transport).  The pool
    begins on every transport before finishing any, so W workers execute
    concurrently whatever the physical backend.
    """

    shards: Tuple[int, ...]

    def begin(self, op: str, args: tuple) -> None: ...

    def finish(self) -> Any: ...

    def close(self) -> None: ...


class SerialShardTransport:
    """In-caller execution: ``finish()`` runs the deferred operation."""

    def __init__(self, shards: Sequence[int], params: ShardParams) -> None:
        self.shards = tuple(shards)
        self.states = {s: ShardState(s, params) for s in self.shards}
        self._pending: Optional[Tuple[str, tuple]] = None

    def begin(self, op: str, args: tuple) -> None:
        assert self._pending is None, "one in-flight request per transport"
        self._pending = (op, args)

    def finish(self) -> Any:
        op, args = self._pending
        self._pending = None
        return dispatch_op(self.states, op, args)

    def close(self) -> None:
        pass


class ThreadShardTransport:
    """In-process states driven from a shared thread pool (no-fork fallback)."""

    def __init__(
        self,
        shards: Sequence[int],
        params: ShardParams,
        executor: ThreadPoolExecutor,
    ) -> None:
        self.shards = tuple(shards)
        self.states = {s: ShardState(s, params) for s in self.shards}
        self._executor = executor
        self._future: Optional[Future] = None

    def begin(self, op: str, args: tuple) -> None:
        assert self._future is None, "one in-flight request per transport"
        self._future = self._executor.submit(
            dispatch_op, self.states, op, args
        )

    def finish(self) -> Any:
        future = self._future
        self._future = None
        return future.result()

    def close(self) -> None:  # the pool owns the shared executor
        pass


class ProcessShardTransport:
    """A forked single-process executor pinned to this worker's shards.

    A dedicated executor (rather than one shared pool) is what pins each
    shard's window state to the process that owns it — a shared pool routes
    tasks to arbitrary idle workers, which would scatter the state.
    """

    def __init__(self, shards: Sequence[int], params: ShardParams) -> None:
        self.shards = tuple(shards)
        context = multiprocessing.get_context("fork")
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=_init_worker,
            initargs=(self.shards, params),
        )
        self._future: Optional[Future] = None
        self._op: Optional[str] = None

    def begin(self, op: str, args: tuple) -> None:
        assert self._future is None, "one in-flight request per transport"
        self._op = op
        try:
            self._future = self._executor.submit(_worker_op, op, args)
        except (BrokenProcessPool, RuntimeError) as exc:
            raise TransportError(
                f"shard worker process for shards {list(self.shards)} is "
                f"gone; cannot submit {op!r}: {exc}"
            ) from exc

    def finish(self) -> Any:
        future = self._future
        self._future = None
        try:
            return future.result()
        except (BrokenProcessPool, EOFError, OSError) as exc:
            raise TransportError(
                f"shard worker process for shards {list(self.shards)} died "
                f"during {self._op!r} (between scatter and gather); the "
                f"quantum cannot complete — close the session and resume "
                f"from its last checkpoint"
            ) from exc

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


class RemoteShardTransport:
    """A ``repro shard-worker`` daemon reached over framed TCP."""

    def __init__(
        self,
        endpoint: str,
        shards: Sequence[int],
        params: ShardParams,
        *,
        connect_timeout: float = 10.0,
        op_timeout: float = 60.0,
        retry_interval: float = 0.1,
    ) -> None:
        self.endpoint = endpoint
        self.shards = tuple(shards)
        self.params = params
        self.connect_timeout = connect_timeout
        self.op_timeout = op_timeout
        self.retry_interval = retry_interval
        host, _, port_text = endpoint.rpartition(":")
        try:
            self._address = (host, int(port_text))
            if not host:
                raise ValueError("missing host")
        except ValueError as exc:
            raise PipelineError(
                f"invalid shard worker endpoint {endpoint!r}; expected "
                f"'host:port'"
            ) from exc
        self._sock: Optional[socket.socket] = None
        self._op: Optional[str] = None

    # -- connection lifecycle -------------------------------------------

    def connect(self) -> None:
        """Dial the daemon (retrying until ``connect_timeout``) and init it."""
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection(
                    self._address, timeout=max(0.1, self.connect_timeout)
                )
                break
            except OSError as exc:
                if time.monotonic() >= deadline:
                    raise TransportError(
                        f"cannot connect to shard worker {self.endpoint} "
                        f"within {self.connect_timeout:.1f}s: {exc} — is "
                        f"'repro shard-worker' running there?"
                    ) from exc
                time.sleep(self.retry_interval)
        sock.settimeout(self.op_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._sock = sock
        reply = self._request(
            {
                "op": "init",
                "protocol": PROTOCOL_VERSION,
                "shards": list(self.shards),
                "params": params_to_wire(self.params),
            }
        )
        if reply.get("protocol") != PROTOCOL_VERSION:
            self.close()
            raise TransportError(
                f"shard worker {self.endpoint} speaks protocol "
                f"{reply.get('protocol')!r}, this client speaks "
                f"{PROTOCOL_VERSION} — upgrade one of them"
            )

    def _die(self, action: str, exc: Exception) -> TransportError:
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._sock = None
        return TransportError(
            f"shard worker at {self.endpoint} died mid-quantum "
            f"(connection lost during {action!r}: {exc}); the quantum "
            f"cannot complete — close the session and resume from its "
            f"last checkpoint"
        )

    def _send(self, message: dict, action: str) -> None:
        if self._sock is None:
            raise TransportError(
                f"shard worker transport to {self.endpoint} is closed"
            )
        try:
            if action == "init":
                self._sock.sendall(PROTOCOL_MAGIC)
            send_frame(self._sock, message)
        except (OSError, ConnectionError) as exc:
            raise self._die(action, exc) from exc

    def _recv(self, action: str) -> dict:
        try:
            reply = recv_frame(self._sock)
        except socket.timeout as exc:
            raise self._die(
                action, Exception(f"no reply within {self.op_timeout:.1f}s")
            ) from exc
        except (OSError, ConnectionError) as exc:
            raise self._die(action, exc) from exc
        if not reply.get("ok"):
            raise TransportError(
                f"shard worker {self.endpoint} failed {action!r}: "
                f"{reply.get('error', 'unknown error')}"
            )
        return reply

    def _request(self, message: dict) -> dict:
        self._send(message, message["op"])
        return self._recv(message["op"])

    # -- the transport protocol -----------------------------------------

    def begin(self, op: str, args: tuple) -> None:
        assert self._op is None, "one in-flight request per transport"
        if op == "extract":
            raise PipelineError(
                "remote shard workers host window state, not extraction; "
                "the session extracts parent-side for remote pools"
            )
        self._op = op
        self._send({"op": op, "args": encode_state(list(args))}, op)

    def finish(self) -> Any:
        op = self._op
        self._op = None
        reply = self._recv(op)
        result = decode_state(reply.get("result"))
        if op == "ingest":
            return [update_from_wire(data) for data in result]
        return result

    def close(self) -> None:
        sock = self._sock
        self._sock = None
        if sock is None:
            return
        try:
            send_frame(sock, {"op": "bye"})
        except (OSError, ConnectionError, TransportError):
            pass
        try:
            sock.close()
        except OSError:
            pass


__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "ProcessShardTransport",
    "RemoteShardTransport",
    "SerialShardTransport",
    "ShardTransport",
    "ThreadShardTransport",
    "TransportError",
    "dispatch_op",
    "extract_chunk",
    "params_from_wire",
    "params_to_wire",
    "recv_frame",
    "send_frame",
    "update_from_wire",
    "update_to_wire",
]
