"""Sharded stage objects behind the :class:`repro.pipeline.stages.Stage`
protocol.

These are the drop-in replacements the session installs when
``config.sharded`` — same stage ``name``\\ s, same ``QuantumContext``
traffic, same timing slots, so everything downstream (maintain accounting,
propagate, rank, report, ``detect --timing``) is untouched.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.extract.keyword import KeywordExtractor
from repro.interning import Interner
from repro.parallel.frontend import ShardedAkgFrontend
from repro.parallel.router import keyword_hash, shards_of_hashes
from repro.pipeline.stages import AkgUpdateStage, QuantumContext


class ShardedExtractStage:
    """Stage 1, fanned out: contiguous record chunks extract in parallel.

    Workers return per-shard ``entity -> actors`` partials — extraction,
    per-record truncation, inversion *and* shard routing all happen
    worker-side — so the parent's merge is a union over distinct entities,
    not per-token work.  Chunks are contiguous and merged in stream order,
    and an actor's id lands in an entity's set exactly once per quantum
    regardless of chunking, so the merged mapping is identical to the
    serial stage's (set semantics; nothing downstream depends on set
    iteration order, DESIGN.md Section 6).

    The merged per-shard slices ride ``ctx.scratch`` to
    :class:`ShardedAkgUpdateStage`, which hands them to the front-end
    pre-partitioned.  ``ctx.actor_entities`` (the actor -> entities view)
    is not materialised — its only consumer is the optional CKG-stats
    tracker, and the session keeps the serial extract stage when that is
    enabled.  Likewise non-reconstructible (``custom``) extractors keep the
    serial stage (worker processes rebuild the extractor from its registry
    spec; callables neither pickle nor checkpoint).
    """

    name = "extract"

    def __init__(
        self,
        frontend: ShardedAkgFrontend,
        max_entities_per_record: int,
        extractor_spec: dict,
    ) -> None:
        self.frontend = frontend
        self.max_entities_per_record = max_entities_per_record
        self.extractor_spec = extractor_spec

    def _chunks(self, messages: Sequence) -> List[Sequence]:
        workers = max(1, self.frontend.pool.workers)
        if workers == 1 or len(messages) < 2 * workers:
            return [messages]
        size = -(-len(messages) // workers)
        return [
            messages[i : i + size] for i in range(0, len(messages), size)
        ]

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        partials = self.frontend.pool.extract_chunks(
            self._chunks(ctx.messages),
            self.max_entities_per_record,
            self.extractor_spec,
        )
        shard_count = self.frontend.router.shard_count
        slices: List[dict] = list(partials[0])
        for partial in partials[1:]:  # chunk order == stream order
            for shard in range(shard_count):
                target = slices[shard]
                for kw, users in partial[shard].items():
                    existing = target.get(kw)
                    if existing is None:
                        target[kw] = users
                    else:
                        existing |= users
        merged: dict = {}
        for piece in slices:  # shard keys are disjoint: plain dict unions
            merged.update(piece)
        ctx.entity_actors = merged
        ctx.actor_entities = None
        ctx.scratch["shard_slices"] = slices
        ctx.timings.extract = time.perf_counter() - t


class BatchedShardedExtractStage:
    """Stage 1 for sharded sessions under the batched backend.

    Builds the merged ``entity -> actors`` mapping parent-side in one tight
    loop (no per-chunk worker round trip, no per-shard dict merge) and
    routes it from an interned keyword hash column: each keyword's 64-bit
    routing hash is computed once per vocabulary lifetime and the per-shard
    slices come from one vectorized :func:`~repro.parallel.router
    .shards_of_hashes` pass.  Set semantics make the merged mapping
    identical to both the serial and the fanned-out extract stages', and
    hash-range routing is a pure keyword function, so downstream shard
    state is bit-identical too.

    Unlike :class:`ShardedExtractStage` this never pickles the extractor,
    so it also serves custom (non-reconstructible) extractors.  The
    CKG-stats tracker still needs the serial stage (its actor -> entities
    view is not materialised here).
    """

    name = "extract"

    # The routing interner memoises hashes for the whole stream; unlike the
    # window interners nothing ever releases its slots, so reset it outright
    # if an adversarially wide vocabulary ever grows it past this bound.
    _MAX_INTERNED = 1 << 20

    def __init__(
        self,
        frontend: ShardedAkgFrontend,
        extractor,
        max_entities_per_record: int,
    ) -> None:
        self.frontend = frontend
        self.extractor = extractor
        self.max_entities_per_record = max_entities_per_record
        self._ents = Interner(hash_fn=keyword_hash)
        self._keyword_fast = type(extractor) is KeywordExtractor

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        extract = self.extractor.entities
        keyword_fast = self._keyword_fast
        cap = self.max_entities_per_record
        merged: dict = {}
        for message in ctx.messages:
            if keyword_fast:
                entities = message.tokens
                if entities is None:
                    entities = extract(message)
            else:
                entities = extract(message)
            if not entities:
                continue
            if cap is not None and len(entities) > cap:
                entities = entities[:cap]
            user = message.user_id
            for token in entities:
                users = merged.get(token)
                if users is None:
                    merged[token] = {user}
                else:
                    users.add(user)
        shard_count = self.frontend.router.shard_count
        if shard_count == 1:
            slices: List[dict] = [dict(merged)]
        else:
            ents = self._ents
            if ents.capacity > self._MAX_INTERNED:
                ents.clear()
            ids = ents.ids
            intern = ents.intern
            hashes = ents.hashes
            hash_col: List[int] = []
            for kw in merged:
                iid = ids.get(kw)
                if iid is None:
                    iid = intern(kw)
                hash_col.append(hashes[iid])
            slices = [{} for _ in range(shard_count)]
            for (kw, users), shard in zip(
                merged.items(), shards_of_hashes(hash_col, shard_count)
            ):
                slices[shard][kw] = users
        ctx.entity_actors = merged
        ctx.actor_entities = None
        ctx.scratch["shard_slices"] = slices
        ctx.timings.extract = time.perf_counter() - t


class ShardedAkgUpdateStage(AkgUpdateStage):
    """Stages 2+3 over the sharded front-end.

    Inherits the fused-execution accounting of
    :class:`~repro.pipeline.stages.AkgUpdateStage`; additionally forwards
    the pre-partitioned shard slices the sharded extract stage left in
    ``ctx.scratch`` so the front-end skips re-routing the quantum's
    entities.

    The stage is split at the front-end's phase boundary —
    :meth:`scatter` fans the quantum out (graph-free), :meth:`complete`
    exchanges and merges — so the pipelined session can run quantum
    *q+1*'s scatter while quantum *q*'s tail still runs.  Plain ``run``
    is the two back to back; both paths report identical timing slots
    (``scatter``/``exchange`` are sub-spans of ``akg_update``, never
    added to the stage total twice).
    """

    def __init__(self, frontend: ShardedAkgFrontend, maintainer) -> None:
        super().__init__(frontend, maintainer)
        self.frontend = frontend

    def scatter(self, ctx: QuantumContext) -> None:
        """Phase one: fan the quantum out to the shard workers."""
        t = time.perf_counter()
        slices = ctx.scratch.pop("shard_slices", None)
        ctx.scratch["akg_pending"] = self.frontend.scatter(
            ctx.quantum, ctx.entity_actors, slices=slices
        )
        elapsed = time.perf_counter() - t
        ctx.timings.scatter = elapsed
        ctx.timings.akg_update = elapsed

    def complete(self, ctx: QuantumContext, exchange_done=None) -> None:
        """Phase two + merge; ``exchange_done`` fires at the last worker
        round trip of the quantum (the pipelined session's barrier)."""
        t = time.perf_counter()
        maintain_before = self.maintainer.clustering_seconds
        pending = ctx.scratch.pop("akg_pending")
        ctx.akg_stats = self.frontend.complete(
            pending, on_exchange_done=exchange_done
        )
        ctx.timings.exchange = self.frontend.last_exchange_seconds
        ctx.scratch["maintain_seconds"] = (
            self.maintainer.clustering_seconds - maintain_before
        )
        ctx.timings.akg_update += time.perf_counter() - t

    def run(self, ctx: QuantumContext) -> None:
        self.scatter(ctx)
        self.complete(ctx)


__all__ = [
    "BatchedShardedExtractStage",
    "ShardedAkgUpdateStage",
    "ShardedExtractStage",
]
