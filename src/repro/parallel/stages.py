"""Sharded stage objects behind the :class:`repro.pipeline.stages.Stage`
protocol.

These are the drop-in replacements the session installs when
``config.sharded`` — same stage ``name``\\ s, same ``QuantumContext``
traffic, same timing slots, so everything downstream (maintain accounting,
propagate, rank, report, ``detect --timing``) is untouched.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.parallel.frontend import ShardedAkgFrontend
from repro.pipeline.stages import AkgUpdateStage, QuantumContext


class ShardedTokenizeStage:
    """Stage 1, fanned out: contiguous message chunks tokenize in parallel.

    Workers return per-shard ``keyword -> users`` partials — tokenisation,
    per-message truncation, inversion *and* shard routing all happen
    worker-side — so the parent's merge is a union over distinct keywords,
    not per-token work.  Chunks are contiguous and merged in stream order,
    and a user's id lands in a keyword's set exactly once per quantum
    regardless of chunking, so the merged mapping is identical to the
    serial stage's (set semantics; nothing downstream depends on set
    iteration order, DESIGN.md Section 6).

    The merged per-shard slices ride ``ctx.scratch`` to
    :class:`ShardedAkgUpdateStage`, which hands them to the front-end
    pre-partitioned.  ``ctx.user_keywords`` (the user -> keywords view) is
    not materialised — its only consumer is the optional CKG-stats tracker,
    and the session keeps the serial tokenize stage when that is enabled.
    Likewise custom tokenizers keep the serial stage (worker processes
    import the default tokenizer by name; callables neither pickle nor
    checkpoint).
    """

    name = "tokenize"

    def __init__(
        self,
        frontend: ShardedAkgFrontend,
        max_tokens_per_message: int,
    ) -> None:
        self.frontend = frontend
        self.max_tokens_per_message = max_tokens_per_message

    def _chunks(self, messages: Sequence) -> List[Sequence]:
        workers = max(1, self.frontend.pool.workers)
        if workers == 1 or len(messages) < 2 * workers:
            return [messages]
        size = -(-len(messages) // workers)
        return [
            messages[i : i + size] for i in range(0, len(messages), size)
        ]

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        partials = self.frontend.pool.tokenize_chunks(
            self._chunks(ctx.messages), self.max_tokens_per_message
        )
        shard_count = self.frontend.router.shard_count
        slices: List[dict] = list(partials[0])
        for partial in partials[1:]:  # chunk order == stream order
            for shard in range(shard_count):
                target = slices[shard]
                for kw, users in partial[shard].items():
                    existing = target.get(kw)
                    if existing is None:
                        target[kw] = users
                    else:
                        existing |= users
        merged: dict = {}
        for piece in slices:  # shard keys are disjoint: plain dict unions
            merged.update(piece)
        ctx.keyword_users = merged
        ctx.user_keywords = None
        ctx.scratch["shard_slices"] = slices
        ctx.timings.tokenize = time.perf_counter() - t


class ShardedAkgUpdateStage(AkgUpdateStage):
    """Stages 2+3 over the sharded front-end.

    Inherits the fused-execution accounting of
    :class:`~repro.pipeline.stages.AkgUpdateStage`; additionally forwards
    the pre-partitioned shard slices the sharded tokenize stage left in
    ``ctx.scratch`` so the front-end skips re-routing the quantum's
    keywords.
    """

    def __init__(self, frontend: ShardedAkgFrontend, maintainer) -> None:
        super().__init__(frontend, maintainer)
        self.frontend = frontend

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        maintain_before = self.maintainer.clustering_seconds
        slices = ctx.scratch.pop("shard_slices", None)
        ctx.akg_stats = self.frontend.process_quantum(
            ctx.quantum, ctx.keyword_users, slices=slices
        )
        ctx.scratch["maintain_seconds"] = (
            self.maintainer.clustering_seconds - maintain_before
        )
        ctx.timings.akg_update = time.perf_counter() - t


__all__ = ["ShardedAkgUpdateStage", "ShardedTokenizeStage"]
