"""Sharded stage objects behind the :class:`repro.pipeline.stages.Stage`
protocol.

These are the drop-in replacements the session installs when
``config.sharded`` — same stage ``name``\\ s, same ``QuantumContext``
traffic, same timing slots, so everything downstream (maintain accounting,
propagate, rank, report, ``detect --timing``) is untouched.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from repro.parallel.frontend import ShardedAkgFrontend
from repro.pipeline.stages import AkgUpdateStage, QuantumContext


class ShardedExtractStage:
    """Stage 1, fanned out: contiguous record chunks extract in parallel.

    Workers return per-shard ``entity -> actors`` partials — extraction,
    per-record truncation, inversion *and* shard routing all happen
    worker-side — so the parent's merge is a union over distinct entities,
    not per-token work.  Chunks are contiguous and merged in stream order,
    and an actor's id lands in an entity's set exactly once per quantum
    regardless of chunking, so the merged mapping is identical to the
    serial stage's (set semantics; nothing downstream depends on set
    iteration order, DESIGN.md Section 6).

    The merged per-shard slices ride ``ctx.scratch`` to
    :class:`ShardedAkgUpdateStage`, which hands them to the front-end
    pre-partitioned.  ``ctx.actor_entities`` (the actor -> entities view)
    is not materialised — its only consumer is the optional CKG-stats
    tracker, and the session keeps the serial extract stage when that is
    enabled.  Likewise non-reconstructible (``custom``) extractors keep the
    serial stage (worker processes rebuild the extractor from its registry
    spec; callables neither pickle nor checkpoint).
    """

    name = "extract"

    def __init__(
        self,
        frontend: ShardedAkgFrontend,
        max_entities_per_record: int,
        extractor_spec: dict,
    ) -> None:
        self.frontend = frontend
        self.max_entities_per_record = max_entities_per_record
        self.extractor_spec = extractor_spec

    def _chunks(self, messages: Sequence) -> List[Sequence]:
        workers = max(1, self.frontend.pool.workers)
        if workers == 1 or len(messages) < 2 * workers:
            return [messages]
        size = -(-len(messages) // workers)
        return [
            messages[i : i + size] for i in range(0, len(messages), size)
        ]

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        partials = self.frontend.pool.extract_chunks(
            self._chunks(ctx.messages),
            self.max_entities_per_record,
            self.extractor_spec,
        )
        shard_count = self.frontend.router.shard_count
        slices: List[dict] = list(partials[0])
        for partial in partials[1:]:  # chunk order == stream order
            for shard in range(shard_count):
                target = slices[shard]
                for kw, users in partial[shard].items():
                    existing = target.get(kw)
                    if existing is None:
                        target[kw] = users
                    else:
                        existing |= users
        merged: dict = {}
        for piece in slices:  # shard keys are disjoint: plain dict unions
            merged.update(piece)
        ctx.entity_actors = merged
        ctx.actor_entities = None
        ctx.scratch["shard_slices"] = slices
        ctx.timings.extract = time.perf_counter() - t


class ShardedAkgUpdateStage(AkgUpdateStage):
    """Stages 2+3 over the sharded front-end.

    Inherits the fused-execution accounting of
    :class:`~repro.pipeline.stages.AkgUpdateStage`; additionally forwards
    the pre-partitioned shard slices the sharded extract stage left in
    ``ctx.scratch`` so the front-end skips re-routing the quantum's
    entities.
    """

    def __init__(self, frontend: ShardedAkgFrontend, maintainer) -> None:
        super().__init__(frontend, maintainer)
        self.frontend = frontend

    def run(self, ctx: QuantumContext) -> None:
        t = time.perf_counter()
        maintain_before = self.maintainer.clustering_seconds
        slices = ctx.scratch.pop("shard_slices", None)
        ctx.akg_stats = self.frontend.process_quantum(
            ctx.quantum, ctx.entity_actors, slices=slices
        )
        ctx.scratch["maintain_seconds"] = (
            self.maintainer.clustering_seconds - maintain_before
        )
        ctx.timings.akg_update = time.perf_counter() - t


__all__ = ["ShardedAkgUpdateStage", "ShardedExtractStage"]
