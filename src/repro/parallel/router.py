"""Stable keyword-range routing for the sharded AKG front-end.

A keyword's shard is a pure function of the keyword string: the top 64 bits
of a salted-free blake2b digest, scaled into ``shard_count`` contiguous
ranges.  Using a cryptographic digest (not ``hash()``) keeps the partition
identical across processes, interpreter runs and ``PYTHONHASHSEED`` values —
a checkpoint written under one worker count must re-partition identically
when resumed under another.

Shards are assigned to workers in contiguous runs (worker *w* of *W* owns
shards ``[w*S//W, (w+1)*S//W)``), so with the default ``S == W`` each worker
owns exactly one contiguous hash range, as the shard contract specifies.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Set

from repro.arrays import get_numpy
from repro.errors import ConfigError

Keyword = str
UserId = Hashable

_RANGE = 1 << 64


def keyword_hash(keyword: Keyword) -> int:
    """Stable 64-bit hash of a keyword (process-independent)."""
    digest = blake2b(keyword.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_of_hash(hash_value: int, shard_count: int) -> int:
    """Shard of a precomputed :func:`keyword_hash` value (range scaling)."""
    return (hash_value * shard_count) >> 64


def shards_of_hashes(
    hashes: Sequence[int], shard_count: int
) -> List[int]:
    """Vectorized :func:`shard_of_hash` over a hash column.

    The batched backend keeps each keyword's 64-bit hash in its interner
    table, so routing a quantum is one pass over precomputed values rather
    than one blake2b digest per keyword.  The numpy kernel splits each hash
    into 32-bit halves to evaluate the exact 128-bit product shift
    ``(h * S) >> 64`` as ``(hi*S + ((lo*S) >> 32)) >> 32`` — floor-exact
    (nested floored right-shifts compose), so it is bit-identical to the
    arbitrary-precision pure path for any ``shard_count`` below 2**31.
    """
    np = get_numpy()
    if np is None or len(hashes) < 32:
        return [(h * shard_count) >> 64 for h in hashes]
    h = np.asarray(hashes, dtype=np.uint64)
    hi = h >> np.uint64(32)
    lo = h & np.uint64(0xFFFFFFFF)
    s = np.uint64(shard_count)
    out = (hi * s + ((lo * s) >> np.uint64(32))) >> np.uint64(32)
    return out.astype(np.int64).tolist()


class ShardRouter:
    """Maps keywords to ``shard_count`` contiguous 64-bit hash ranges."""

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ConfigError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count

    def shard_of(self, keyword: Keyword) -> int:
        """The shard owning ``keyword`` — range index, not a modulus, so
        neighbouring hash values land in the same shard (contiguous
        ranges).  Single-shard routing skips the digest entirely (the W=1
        overhead gate counts every cycle here)."""
        if self.shard_count == 1:
            return 0
        return (keyword_hash(keyword) * self.shard_count) >> 64

    def range_of(self, shard: int) -> tuple:
        """The half-open hash interval ``[lo, hi)`` shard ``shard`` owns."""
        lo = -(-shard * _RANGE // self.shard_count) if shard else 0
        hi = -(-(shard + 1) * _RANGE // self.shard_count)
        return (lo, min(hi, _RANGE))

    def partition(
        self, keyword_users: Mapping[Keyword, Set[UserId]]
    ) -> List[Dict[Keyword, Set[UserId]]]:
        """Split one quantum's ``keyword -> users`` mapping by shard."""
        if self.shard_count == 1:
            return [dict(keyword_users)]
        slices: List[Dict[Keyword, Set[UserId]]] = [
            {} for _ in range(self.shard_count)
        ]
        shard_of = self.shard_of
        for kw, users in keyword_users.items():
            slices[shard_of(kw)][kw] = users
        return slices

    def partition_keywords(
        self, keywords: Iterable[Keyword]
    ) -> List[Set[Keyword]]:
        """Split a keyword iterable into per-shard sets."""
        out: List[Set[Keyword]] = [set() for _ in range(self.shard_count)]
        for kw in keywords:
            out[self.shard_of(kw)].add(kw)
        return out


def worker_assignments(shard_count: int, workers: int) -> List[List[int]]:
    """Contiguous shard runs per worker: worker w owns ``[wS//W, (w+1)S//W)``.

    Workers beyond ``shard_count`` receive empty assignments (they are never
    spawned; ``make_pool`` clamps the worker count first).
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    return [
        list(range(w * shard_count // workers, (w + 1) * shard_count // workers))
        for w in range(workers)
    ]


__all__ = [
    "ShardRouter",
    "keyword_hash",
    "shard_of_hash",
    "shards_of_hashes",
    "worker_assignments",
]
