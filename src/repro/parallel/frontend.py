"""The merge side of the sharded AKG stage: deterministic, shard-order fusion.

:class:`ShardedAkgFrontend` is the sharded counterpart of
:class:`~repro.akg.builder.AkgBuilder` — same constructor role, same
``process_quantum`` / ``node_weights`` / ``to_state`` / ``from_state``
surface, so the session and the pipeline stages cannot tell them apart.
Per quantum it runs two worker phases around one merge:

1. **scatter** (:meth:`ShardedAkgFrontend.scatter`): partitions the
   quantum's ``keyword -> users`` mapping by shard and fans the slices out
   to the shard workers (:mod:`repro.parallel.pool`), which do the
   keyword-local window slide in parallel.  This phase reads *no* graph
   state, which is what lets the pipelined session overlap it with the
   previous quantum's serial tail.
2. **exchange + merge** (:meth:`ShardedAkgFrontend.complete`): merges the
   returned :class:`~repro.parallel.shard_state.ShardUpdate`\\ s, then
   classifies the quantum's candidate and refresh pairs against the
   (pre-mutation) graph: pairs whose members share a shard are answered by
   that worker as finished exact ECs; only the id sets of keywords in
   *cross-shard* pairs ride the exchange.  With the gathered answers it
   drives the *identical* update sequence the serial builder drives — the
   shared primitives of :mod:`repro.akg.builder` (candidate pairing, EC
   qualification, incident refresh, the dead-node predicate) are called
   with lookups over the gathered data instead of over live indexes.

Because every mutation applied to the authoritative
``DynamicGraph``/``ClusterMaintainer`` is ordered by keyword (never by
shard arrival, set iteration, or worker count), the resulting graph,
clusters, change events, reports and checkpoints are bit-identical for any
``workers``/``shard_count`` — including ``W=1`` against the serial builder
itself (DESIGN.md Section 7).

Merge-side mirrors: the frontend keeps two parent-side derived maps — the
window support per keyword (fed by the merged support deltas) and the burst
automaton (fed by the merged bursty sets).  Both are O(churn) to maintain
and let the rank stage's ``node_weights`` and the dead-node predicate run
without a worker round-trip; both are reconstructed exactly on restore.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.akg.builder import (
    AkgQuantumStats,
    candidate_edge_pairs,
    drain_removal_candidates,
    qualify_new_edges,
    refresh_incident_edges,
    select_dead_nodes,
)
from repro.akg.burstiness import BurstinessTracker
from repro.config import DetectorConfig
from repro.core.changelog import NodeWeightChanged
from repro.core.maintenance import ClusterMaintainer
from repro.errors import GraphError
from repro.parallel.pool import WorkerPool, make_pool
from repro.parallel.router import ShardRouter
from repro.parallel.shard_state import ShardParams, ShardUpdate

Keyword = str
UserId = Hashable


@dataclass
class PendingQuantum:
    """A scattered-but-not-merged quantum (phase one in flight/landed).

    Produced by :meth:`ShardedAkgFrontend.scatter`, consumed exactly once
    by :meth:`ShardedAkgFrontend.complete`.  Holding the phase-one updates
    here (instead of frontend attributes) is what lets the pipelined
    session keep quantum *q+1*'s scatter result parked while quantum *q*'s
    tail still runs.
    """

    quantum: int
    keyword_users: Mapping[Keyword, Set[UserId]]
    updates: List[ShardUpdate] = field(default_factory=list)


class ShardedAkgFrontend:
    """Keyword-range-sharded drop-in for the serial ``AkgBuilder``."""

    #: duck-typed parity with ``AkgBuilder`` — the sharded front-end has no
    #: oracle mode (the oracle is the *serial* verification baseline).
    oracle = False

    def __init__(
        self,
        config: DetectorConfig,
        maintainer: ClusterMaintainer,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.maintainer = maintainer
        self.router = ShardRouter(config.effective_shard_count)
        self.pool: WorkerPool = make_pool(
            config.effective_shard_count,
            config.worker_count,
            ShardParams(
                window_quanta=config.window_quanta,
                minhash_size=config.effective_minhash_size,
                seed=config.seed,
                theta=config.high_state_threshold,
                use_minhash=config.use_minhash_filter,
            ),
            backend=backend,
            endpoints=config.worker_endpoints,
        )
        #: wall seconds the last quantum's phase-two exchange round trip
        #: took (scatter-to-gather over all workers); surfaced as
        #: ``StageTimings.exchange``.
        self.last_exchange_seconds = 0.0
        self.burstiness = BurstinessTracker(config.high_state_threshold)
        # Parent-side support mirror: keyword -> window support, maintained
        # from the merged support deltas (exactly IdSetIndex.support).
        self._support: Dict[Keyword, int] = {}
        self._grace_deadlines: Dict[int, Set[Keyword]] = {}
        self._newly_unclustered: Set[Keyword] = set()
        self._last_quantum: Optional[int] = None
        maintainer.registry.add_unclustered_listener(self._on_node_unclustered)

    def _on_node_unclustered(self, node: Keyword) -> None:
        self._newly_unclustered.add(node)

    # ----------------------------------------------------------- main loop

    def scatter(
        self,
        quantum: int,
        keyword_users: Mapping[Keyword, Set[UserId]],
        slices: Optional[List[Dict[Keyword, Set[UserId]]]] = None,
    ) -> PendingQuantum:
        """Phase one: fan the quantum's slices out to the shard workers.

        ``slices`` may carry the quantum's mapping already partitioned by
        shard (the sharded extract stage routes worker-side); otherwise it
        is partitioned here.  Reads nothing from the graph or maintainer —
        the pipelined session calls this for quantum *q+1* while quantum
        *q*'s serial tail is still mutating them on another thread.
        """
        if slices is None:
            slices = self.router.partition(keyword_users)
        updates = self.pool.ingest(quantum, slices)
        return PendingQuantum(
            quantum=quantum, keyword_users=keyword_users, updates=updates
        )

    def complete(
        self,
        pending: PendingQuantum,
        on_exchange_done=None,
    ) -> AkgQuantumStats:
        """Phase two + merge: exchange ECs, then apply deterministically.

        ``on_exchange_done`` (if given) fires the moment the last worker
        round trip of this quantum has returned — after it the frontend
        makes no further pool calls for this quantum, so the pipelined
        session uses it as the barrier behind which the *next* quantum's
        scatter may start.

        Every mutation applied to the authoritative graph/maintainer is
        ordered by keyword exactly as in the serial builder; where the EC
        came from (worker-local intra-shard computation vs. a parent-side
        evaluation over gathered id sets) never changes its value or the
        order it is consumed in.
        """
        quantum = pending.quantum
        keyword_users = pending.keyword_users
        stats = AkgQuantumStats(quantum=quantum)
        graph = self.maintainer.graph
        self.maintainer.current_quantum = quantum
        self._last_quantum = quantum

        # -- merge the keyword-disjoint phase-one outputs -----------------
        support_deltas: Dict[Keyword, tuple] = {}
        emptied: Set[Keyword] = set()
        bursty: Set[Keyword] = set()
        sketches: Dict[Keyword, tuple] = {}
        for update in pending.updates:  # shard order; keys disjoint
            support_deltas.update(update.support_deltas)
            emptied |= update.emptied
            bursty |= update.bursty
            sketches.update(update.sketches)

        # -- classify this quantum's EC pairs against the pre-mutation ----
        # graph.  Valid because nothing below mutates edges before the
        # closure runs: node adds don't change ``has_edge``/``neighbors``
        # of *existing* nodes, and the only edges unknown at classification
        # time are the ones qualified this quantum — whose ECs are already
        # in hand from their candidate-pair classification.
        pairs = list(
            candidate_edge_pairs(
                sorted(bursty),
                self.config.use_minhash_filter,
                lambda kw: sketches.get(kw, ()),
            )
        )
        shard_of = self.router.shard_of
        intra: Dict[int, Set[Tuple[Keyword, Keyword]]] = {}
        want: Dict[int, Set[Keyword]] = {}

        def classify(kw1: Keyword, kw2: Keyword) -> None:
            shard1 = shard_of(kw1)
            shard2 = shard_of(kw2)
            if shard1 == shard2:
                intra.setdefault(shard1, set()).add((kw1, kw2))
            else:
                want.setdefault(shard1, set()).add(kw1)
                want.setdefault(shard2, set()).add(kw2)

        for kw1, kw2 in pairs:
            if not graph.has_edge(kw1, kw2):  # mirrors qualify_new_edges
                classify(kw1, kw2)
        for kw in keyword_users:  # the refresh set (paper set (2)),
            if not graph.has_node(kw):  # normalised as in the refresher
                continue
            for nbr in graph.neighbors(kw):
                if kw <= nbr:
                    classify(kw, nbr)
                else:
                    classify(nbr, kw)

        # -- phase two: the EC exchange -----------------------------------
        requests = [
            (
                shard,
                sorted(intra.get(shard, ())),
                sorted(want.get(shard, ())),
            )
            for shard in sorted(intra.keys() | want.keys())
        ]
        exchange_started = time.perf_counter()
        answers = self.pool.exchange(requests)
        self.last_exchange_seconds = time.perf_counter() - exchange_started
        if on_exchange_done is not None:
            on_exchange_done()
        intra_ecs: Dict[Tuple[Keyword, Keyword], float] = {}
        id_sets: Dict[Keyword, FrozenSet[UserId]] = {}
        for _, ecs, answer_sets in answers:  # shard order; keys disjoint
            intra_ecs.update(ecs)
            id_sets.update(answer_sets)

        # Iteration order here is shard-then-slice order: deterministic for
        # a fixed shard count, and changelog event *order* is semantically
        # free (consumers build sets/maps; the property tests compare event
        # multisets) — so no canonical re-sort is spent on the hot path.
        changelog = self.maintainer.changelog
        support = self._support
        for kw, (old, new) in support_deltas.items():
            if new:
                support[kw] = new
            else:
                support.pop(kw, None)
            if graph.has_node(kw):
                changelog.record(NodeWeightChanged(kw, old, new))
                stats.node_weight_deltas += 1

        self.burstiness.observe_bursty(quantum, bursty)
        stats.bursty_keywords = len(bursty)

        # -- nodes: newly bursty keywords enter the AKG -------------------
        grace = self.config.node_grace_quanta
        deadline = quantum + grace + 1  # == first_droppable after a burst
        for kw in sorted(bursty):
            if not graph.has_node(kw):
                self.maintainer.add_node(kw)
                stats.nodes_added += 1
            self._grace_deadlines.setdefault(deadline, set()).add(kw)

        # -- edges: candidates + refresh over the gathered exchange data --
        def jaccard(kw1: Keyword, kw2: Keyword) -> float:
            ec = intra_ecs.get((kw1, kw2))
            if ec is not None:
                return ec
            set1 = id_sets.get(kw1)
            set2 = id_sets.get(kw2)
            if not set1 or not set2:
                return 0.0
            intersection = len(set1 & set2)
            union = len(set1) + len(set2) - intersection
            return intersection / union if union else 0.0

        new_edges = qualify_new_edges(
            pairs, graph, self.config.ec_threshold, jaccard, stats
        )
        for kw1, kw2, ec in new_edges:
            self.maintainer.add_edge(kw1, kw2, ec)
            stats.edges_added += 1

        refresh_incident_edges(
            keyword_users.keys(),
            self.maintainer,
            self.config.ec_threshold,
            jaccard,
            stats,
        )

        # -- nodes: stale and lazy removal --------------------------------
        due = drain_removal_candidates(quantum, emptied, self._grace_deadlines)
        due |= self._newly_unclustered
        self._newly_unclustered = set()
        stale, lazy = select_dead_nodes(
            due,
            self.maintainer,
            lambda kw: self._support.get(kw, 0),
            lambda kw: self.burstiness.aged_out(kw, quantum, grace),
            stats,
        )
        stats.nodes_removed_stale = len(stale)
        stats.nodes_removed_lazy = len(lazy)
        if stale or lazy:
            self.maintainer.remove_nodes(stale + lazy)
            self.burstiness.forget(stale + lazy)

        stats.akg_nodes = graph.num_nodes
        stats.akg_edges = graph.num_edges
        return stats

    def process_quantum(
        self,
        quantum: int,
        keyword_users: Mapping[Keyword, Set[UserId]],
        slices: Optional[List[Dict[Keyword, Set[UserId]]]] = None,
    ) -> AkgQuantumStats:
        """One quantum, unpipelined: scatter then complete back to back
        (the ``AkgBuilder``-parity surface)."""
        return self.complete(self.scatter(quantum, keyword_users, slices))

    # ---------------------------------------------------------- persistence

    def to_state(self) -> dict:
        """Serial-layout checkpoint state, merged across shards.

        The shards' id-set/sketch states are keyword-disjoint and each is
        already sorted, so concatenating them in shard-range order and
        re-sorting globally reproduces the serial indexes' sorted snapshots
        byte for byte — a checkpoint written under any ``workers`` /
        ``shard_count`` is indistinguishable from a serial one, and restores
        under any other (DESIGN.md Section 7).
        """
        entries: list = []
        minis: list = []
        for _, idsets_state, sketches_state in self.pool.export_states():
            entries.extend(idsets_state["entries"])
            minis.extend(sketches_state["minis"])
        entries.sort(key=lambda item: item[0])
        minis.sort(key=lambda item: item[0])
        return {
            "oracle": False,
            "idsets": {"last_quantum": self._last_quantum, "entries": entries},
            "sketches": {"minis": minis},
            "burstiness": self.burstiness.to_state(),
            "grace_deadlines": [
                [deadline, sorted(kws)]
                for deadline, kws in sorted(self._grace_deadlines.items())
            ],
            "newly_unclustered": sorted(self._newly_unclustered),
        }

    def from_state(self, state: dict) -> None:
        """Restore from a serial-layout snapshot (any origin W/S)."""
        if state["oracle"]:
            raise GraphError(
                "checkpoint was taken with oracle=True; the sharded "
                "front-end has no oracle mode — resume a serial session"
            )
        self._last_quantum = state["idsets"]["last_quantum"]
        shard_entries: List[list] = [
            [] for _ in range(self.router.shard_count)
        ]
        support: Dict[Keyword, int] = {}
        for kw, kw_entries in state["idsets"]["entries"]:
            shard_entries[self.router.shard_of(kw)].append([kw, kw_entries])
            users: Set[UserId] = set()
            for _, entry_users in kw_entries:
                users.update(entry_users)
            support[kw] = len(users)
        shard_minis: List[list] = [[] for _ in range(self.router.shard_count)]
        for kw, kw_minis in state["sketches"]["minis"]:
            shard_minis[self.router.shard_of(kw)].append([kw, kw_minis])
        self.pool.load_states(
            [
                (
                    shard,
                    {
                        "last_quantum": self._last_quantum,
                        "entries": shard_entries[shard],
                    },
                    {"minis": shard_minis[shard]},
                )
                for shard in range(self.router.shard_count)
            ]
        )
        self._support = support
        self.burstiness.from_state(state["burstiness"])
        self._grace_deadlines = {
            deadline: set(kws) for deadline, kws in state["grace_deadlines"]
        }
        self._newly_unclustered = set(state["newly_unclustered"])

    # ------------------------------------------------------------- access

    def node_weights(self, nodes: Iterable[Keyword]) -> Dict[Keyword, int]:
        """Window support per node, served from the merge-side mirror."""
        return {kw: self._support.get(kw, 0) for kw in nodes}

    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self.pool.close()


__all__ = ["ShardedAkgFrontend"]
