"""Worker pools hosting shard states behind pluggable transports.

The pool owns ``W`` workers; worker *w* hosts the shard states of its
contiguous shard run (:func:`repro.parallel.router.worker_assignments`) for
the whole session, so window state never moves between workers.  Each
worker is one :class:`~repro.parallel.transport.ShardTransport`; four
backends share one interface:

``process``
    :class:`~repro.parallel.transport.ProcessShardTransport` — one forked
    single-process executor per worker.  This is the backend that actually
    buys multi-core parallelism on one machine.
``thread``
    :class:`~repro.parallel.transport.ThreadShardTransport` over one shared
    thread pool — the fallback for platforms without ``fork`` (correct,
    but GIL-bound).
``serial``
    :class:`~repro.parallel.transport.SerialShardTransport`, direct
    in-caller execution for ``workers == 1``; the sharded pipeline with
    this backend is the ``W=1`` baseline the overhead gate measures.
``remote``
    :class:`~repro.parallel.transport.RemoteShardTransport` — each worker
    is a ``repro shard-worker`` daemon at a ``host:port`` endpoint,
    reached over length-prefixed CRC-framed TCP.  Selected by passing
    ``endpoints``; the worker count *is* the endpoint count.

Every phase scatters by calling ``begin`` on all participating transports
before ``finish`` on any — W sockets (or executors) advance concurrently —
and gathers into a deterministic shard-sorted merge, so the front-end
upstairs never knows which backend ran (bit-identical results, DESIGN.md
Section 7/12).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.parallel.router import worker_assignments
from repro.parallel.shard_state import ShardParams, ShardUpdate
from repro.parallel.transport import (
    ProcessShardTransport,
    RemoteShardTransport,
    SerialShardTransport,
    ShardTransport,
    ThreadShardTransport,
)

Keyword = str
UserId = Hashable

_BACKENDS = ("process", "thread", "serial", "remote")


class WorkerPool:
    """Shard-affine execution of the per-quantum worker phases."""

    def __init__(
        self,
        shard_count: int,
        workers: int,
        params: ShardParams,
        backend: str,
        endpoints: Optional[Sequence[str]] = None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ConfigError(f"unknown worker backend: {backend!r}")
        if backend == "remote":
            if not endpoints:
                raise ConfigError(
                    "the remote backend needs shard worker endpoints "
                    "(workers='host:port,...')"
                )
            workers = len(endpoints)
        elif endpoints:
            raise ConfigError(
                f"shard worker endpoints given but backend is {backend!r}; "
                f"endpoints imply the remote backend"
            )
        self.shard_count = shard_count
        self.workers = min(workers, shard_count)
        self.params = params
        self.backend = backend
        self.assignments = worker_assignments(shard_count, self.workers)
        self._owner = {
            shard: w
            for w, shards in enumerate(self.assignments)
            for shard in shards
        }
        self._closed = False
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self.transports: List[ShardTransport]
        if backend == "process":
            self.transports = [
                ProcessShardTransport(shards, params)
                for shards in self.assignments
            ]
        elif backend == "thread":
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
            self.transports = [
                ThreadShardTransport(shards, params, self._thread_pool)
                for shards in self.assignments
            ]
        elif backend == "remote":
            self.transports = [
                RemoteShardTransport(endpoints[w], shards, params)
                for w, shards in enumerate(self.assignments)
            ]
            connected = []
            try:
                for transport in self.transports:
                    transport.connect()
                    connected.append(transport)
            except Exception:
                for transport in connected:
                    transport.close()
                raise
        else:
            self.transports = [
                SerialShardTransport(shards, params)
                for shards in self.assignments
            ]

    @property
    def can_extract(self) -> bool:
        """Whether workers also serve the extract fan-out.

        Remote daemons host *window state*; shipping every raw record over
        TCP just to tokenize it would cost more than the tokenizing — the
        session keeps extraction parent-side for remote pools.
        """
        return self.backend != "remote"

    # ------------------------------------------------------------- dispatch

    def _scatter(self, op: str, arg_lists: List[tuple]) -> List:
        """Begin ``op`` on the first ``len(arg_lists)`` transports, then
        gather; results in worker order."""
        assert len(arg_lists) <= self.workers, (
            f"{len(arg_lists)} work items for {self.workers} workers — "
            f"callers must fan out at most one item per worker"
        )
        active = list(zip(self.transports, arg_lists))
        for transport, args in active:
            transport.begin(op, args)
        return [transport.finish() for transport, _ in active]

    # -------------------------------------------------------------- phases

    def ingest(
        self, quantum: int, shard_slices: List[dict]
    ) -> List[ShardUpdate]:
        """Phase one of a quantum; updates returned in shard order.

        Every shard is advanced every quantum (an empty slice still expires
        window entries), so the request fan-out is exactly ``W`` messages.
        """
        arg_lists = [
            (
                quantum,
                [(shard, shard_slices[shard]) for shard in shards],
            )
            for shards in self.assignments
        ]
        results = self._scatter("ingest", arg_lists)
        updates = [
            update for worker_updates in results for update in worker_updates
        ]
        updates.sort(key=lambda update: update.shard)
        return updates

    def exchange(
        self,
        shard_requests: List[Tuple[int, list, list]],
    ) -> List[Tuple[int, dict, dict]]:
        """Phase two of a quantum: per-shard ``(shard, pairs, want_ids)``
        EC requests in, ``(shard, ecs, id_sets)`` answers out (shard
        order).

        Dispatched to *every* worker each quantum — workers with no
        requests answer an empty list — keeping the request/reply rhythm
        uniform across quanta and backends (one frame per worker per
        phase, whatever the graph did).
        """
        by_worker: List[List[Tuple[int, list, list]]] = [
            [] for _ in self.assignments
        ]
        for request in shard_requests:
            by_worker[self._owner[request[0]]].append(request)
        results = self._scatter(
            "exchange", [(requests,) for requests in by_worker]
        )
        answers = [
            answer for worker_answers in results for answer in worker_answers
        ]
        answers.sort(key=lambda answer: answer[0])
        return answers

    def extract_chunks(
        self, chunks: List[Sequence], max_entities: int, spec: dict
    ) -> List[List[dict]]:
        """Extract record chunks in parallel (extractor rebuilt from
        ``spec`` worker-side).

        Returns, per chunk (in chunk order), the chunk's per-shard
        ``entity -> actors`` partial maps — inverted and shard-routed
        worker-side.  For the process backend, records cross the wire as
        plain ``(user_id, text, tokens, fields)`` tuples: an order of
        magnitude cheaper to pickle than dataclass instances, and the
        pickling runs in the executor's feeder thread, overlapping worker
        compute."""
        if self.backend == "process":
            chunks = [
                [(m.user_id, m.text, m.tokens, m.fields) for m in chunk]
                for chunk in chunks
            ]
        arg_lists = [
            (chunk, max_entities, self.shard_count, spec) for chunk in chunks
        ]
        return self._scatter("extract", arg_lists)

    # ---------------------------------------------------------- persistence

    def export_states(self) -> List[Tuple[int, dict, dict]]:
        """Every shard's ``(shard, idsets, sketches)`` state, shard order."""
        results = self._scatter("export", [() for _ in self.transports])
        states = [
            state for worker_states in results for state in worker_states
        ]
        states.sort(key=lambda item: item[0])
        return states

    def load_states(self, states: List[Tuple[int, dict, dict]]) -> None:
        """Install per-shard states (checkpoint restore)."""
        by_worker: List[List[Tuple[int, dict, dict]]] = [
            [] for _ in self.assignments
        ]
        for state in states:
            by_worker[self._owner[state[0]]].append(state)
        self._scatter(
            "load", [(worker_states,) for worker_states in by_worker]
        )

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Shut down transports; idempotent."""
        if self._closed:
            return
        self._closed = True
        for transport in self.transports:
            try:
                transport.close()
            except Exception:
                pass  # best-effort: a dead worker must not block the rest
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self) -> None:  # backstop; explicit close() is the contract
        try:
            self.close()
        except Exception:
            pass


def default_backend(workers: int) -> str:
    """Auto-selected backend: serial for one worker, processes where the
    platform can fork, threads otherwise."""
    if workers <= 1:
        return "serial"
    if "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


def make_pool(
    shard_count: int,
    workers: int,
    params: ShardParams,
    backend: Optional[str] = None,
    endpoints: Optional[Sequence[str]] = None,
) -> WorkerPool:
    """Build the pool for a sharded session.

    ``endpoints`` selects the remote backend (the worker count is the
    endpoint count); otherwise ``backend=None`` auto-selects a local one.
    """
    if endpoints:
        if backend not in (None, "remote"):
            raise ConfigError(
                f"workers='host:port,...' selects the remote backend, but "
                f"worker_backend={backend!r} was also given"
            )
        backend = "remote"
    elif backend is None:
        backend = default_backend(workers)
    return WorkerPool(shard_count, workers, params, backend, endpoints=endpoints)


__all__ = ["WorkerPool", "default_backend", "make_pool"]
