"""Worker pools hosting shard states: process, thread, or in-caller serial.

The pool owns ``W`` workers; worker *w* hosts the shard states of its
contiguous shard run (:func:`repro.parallel.router.worker_assignments`) for
the whole session, so window state never moves between workers.  Three
backends share one interface:

``process``
    One single-process ``ProcessPoolExecutor`` per worker, using the
    ``fork`` start method.  Dedicated executors (rather than one shared
    pool) pin each shard's state to the process that owns it — a plain
    shared pool routes tasks to arbitrary idle workers, which would scatter
    the state.  This is the backend that actually buys multi-core
    parallelism.
``thread``
    The same dispatch over a thread pool with in-process states — the
    fallback for platforms without ``fork`` (correct, but GIL-bound).
``serial``
    Direct in-caller execution, used for ``workers == 1``; the sharded
    pipeline with this backend is the ``W=1`` baseline the overhead gate
    measures.

Every method takes and returns *values* (slices in, :class:`ShardUpdate`
out) so the three backends are interchangeable and the merge upstairs never
knows which one ran.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.parallel.router import worker_assignments
from repro.parallel.shard_state import ShardParams, ShardState, ShardUpdate

Keyword = str
UserId = Hashable

# ---------------------------------------------------------------- worker side
#
# Module-level entry points + per-process state registry: a forked worker
# process initialises its own ``_WORKER_STATES`` and every subsequent task
# submitted to its (single-process) executor finds the states in place.

_WORKER_STATES: Dict[int, ShardState] = {}


def _init_worker(shard_ids: Sequence[int], params: ShardParams) -> None:
    global _WORKER_STATES
    _WORKER_STATES = {s: ShardState(s, params) for s in shard_ids}


def _worker_ingest(
    quantum: int,
    requests: List[Tuple[int, dict, Set[Keyword]]],
) -> List[ShardUpdate]:
    return [
        _WORKER_STATES[shard].ingest(quantum, keyword_users, extra)
        for shard, keyword_users, extra in requests
    ]


def _worker_extract(
    messages: Sequence, max_entities: int, shard_count: int, spec: dict
) -> List[dict]:
    """Extract one record chunk into per-shard ``entity -> actors`` maps.

    Inversion and shard routing happen *here*, in the worker, so the parent
    merge is a dict union over distinct entities instead of per-token set
    inserts — the difference between a ~50% and a ~90% parallel fraction of
    the front-end wall.  Per-quantum spatial-correlation semantics are
    preserved exactly: an actor counts once per entity per quantum (set
    dedupe across records and chunks), and the ``max_entities`` cap applies
    per record, as in ``actor_entities_of_quantum``.

    ``spec`` is the extractor's ``{"name", "options"}`` registry spec:
    workers rebuild the extractor by value, which is why only
    reconstructible extractors ride the sharded extract stage (custom
    callables neither pickle nor checkpoint — the session keeps the serial
    stage for those).
    """
    # Imported here (not at module top) so forked workers resolve them in
    # their own interpreter.
    from repro.extract import make_extractor
    from repro.parallel.router import ShardRouter
    from repro.stream.messages import Message

    extractor = make_extractor(spec["name"], spec["options"])
    shard_of = ShardRouter(shard_count).shard_of
    shard_memo: Dict[str, int] = {}
    slices: List[dict] = [{} for _ in range(shard_count)]
    for item in messages:
        if type(item) is tuple:  # wire form: (user_id, text, tokens, fields)
            user = item[0]
            message = Message(
                user, tokens=item[2], text=item[1], fields=item[3]
            )
        else:
            user = item.user_id
            message = item
        entities = extractor.entities(message)
        if not entities:
            continue
        if max_entities is not None:
            entities = entities[:max_entities]
        for kw in entities:
            shard = shard_memo.get(kw)
            if shard is None:
                shard = shard_memo[kw] = shard_of(kw)
            piece = slices[shard]
            users = piece.get(kw)
            if users is None:
                piece[kw] = {user}
            else:
                users.add(user)
    return slices


def _worker_export() -> List[Tuple[int, dict, dict]]:
    return [
        _WORKER_STATES[shard].export_state()
        for shard in sorted(_WORKER_STATES)
    ]


def _worker_load(states: List[Tuple[int, dict, dict]]) -> None:
    for shard, idsets_state, sketches_state in states:
        _WORKER_STATES[shard].load_state(idsets_state, sketches_state)


# ----------------------------------------------------------------- pool side


class WorkerPool:
    """Shard-affine execution of the per-quantum worker phases."""

    def __init__(
        self,
        shard_count: int,
        workers: int,
        params: ShardParams,
        backend: str,
    ) -> None:
        if backend not in ("process", "thread", "serial"):
            raise ConfigError(f"unknown worker backend: {backend!r}")
        self.shard_count = shard_count
        self.workers = min(workers, shard_count)
        self.params = params
        self.backend = backend
        self.assignments = worker_assignments(shard_count, self.workers)
        self._closed = False
        self._local_states: Dict[int, ShardState] = {}
        self._executors: List[ProcessPoolExecutor] = []
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        if backend == "process":
            context = multiprocessing.get_context("fork")
            self._executors = [
                ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=context,
                    initializer=_init_worker,
                    initargs=(tuple(shards), params),
                )
                for shards in self.assignments
            ]
        else:
            self._local_states = {
                shard: ShardState(shard, params)
                for shard in range(shard_count)
            }
            if backend == "thread":
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard",
                )

    # ------------------------------------------------------------- dispatch

    def _run_per_worker(self, fn, arg_lists: List) -> List:
        """Run ``fn(*args)`` once per worker; results in worker order."""
        assert len(arg_lists) <= self.workers, (
            f"{len(arg_lists)} work items for {self.workers} workers — "
            f"callers must fan out at most one item per worker"
        )
        if self.backend == "process":
            futures = [
                executor.submit(fn, *args)
                for executor, args in zip(self._executors, arg_lists)
            ]
            return [future.result() for future in futures]
        if self._thread_pool is not None:
            futures = [
                self._thread_pool.submit(fn, *args) for args in arg_lists
            ]
            return [future.result() for future in futures]
        return [fn(*args) for args in arg_lists]

    def _local_ingest(
        self, quantum: int, requests: List[Tuple[int, dict, Set[Keyword]]]
    ) -> List[ShardUpdate]:
        return [
            self._local_states[shard].ingest(quantum, keyword_users, extra)
            for shard, keyword_users, extra in requests
        ]

    # -------------------------------------------------------------- phases

    def ingest(
        self,
        quantum: int,
        shard_slices: List[dict],
        shard_extras: List[Set[Keyword]],
    ) -> List[ShardUpdate]:
        """Run one quantum's shard phase; updates returned in shard order.

        Every shard is advanced every quantum (an empty slice still expires
        window entries), so the request fan-out is exactly ``W`` messages.
        """
        arg_lists = [
            (
                quantum,
                [
                    (shard, shard_slices[shard], shard_extras[shard])
                    for shard in shards
                ],
            )
            for shards in self.assignments
        ]
        if self.backend == "process":
            results = self._run_per_worker(_worker_ingest, arg_lists)
        else:
            results = self._run_per_worker(self._local_ingest, arg_lists)
        updates = [update for worker_updates in results for update in worker_updates]
        updates.sort(key=lambda update: update.shard)
        return updates

    def extract_chunks(
        self, chunks: List[Sequence], max_entities: int, spec: dict
    ) -> List[List[dict]]:
        """Extract record chunks in parallel (extractor rebuilt from
        ``spec`` worker-side).

        Returns, per chunk (in chunk order), the chunk's per-shard
        ``entity -> actors`` partial maps — inverted and shard-routed
        worker-side.  For the process backend, records cross the wire as
        plain ``(user_id, text, tokens, fields)`` tuples: an order of
        magnitude cheaper to pickle than dataclass instances, and the
        pickling runs in the executor's feeder thread, overlapping worker
        compute."""
        if self.backend == "process":
            chunks = [
                [(m.user_id, m.text, m.tokens, m.fields) for m in chunk]
                for chunk in chunks
            ]
        arg_lists = [
            (chunk, max_entities, self.shard_count, spec) for chunk in chunks
        ]
        return self._run_per_worker(_worker_extract, arg_lists)

    # ---------------------------------------------------------- persistence

    def export_states(self) -> List[Tuple[int, dict, dict]]:
        """Every shard's ``(shard, idsets, sketches)`` state, shard order."""
        if self.backend == "process":
            results = self._run_per_worker(
                _worker_export, [() for _ in self.assignments]
            )
            states = [state for worker_states in results for state in worker_states]
        else:
            states = [
                self._local_states[shard].export_state()
                for shard in sorted(self._local_states)
            ]
        states.sort(key=lambda item: item[0])
        return states

    def load_states(self, states: List[Tuple[int, dict, dict]]) -> None:
        """Install per-shard states (checkpoint restore)."""
        if self.backend == "process":
            by_worker: List[List[Tuple[int, dict, dict]]] = [
                [] for _ in self.assignments
            ]
            owner = {
                shard: w
                for w, shards in enumerate(self.assignments)
                for shard in shards
            }
            for state in states:
                by_worker[owner[state[0]]].append(state)
            self._run_per_worker(
                _worker_load, [(worker_states,) for worker_states in by_worker]
            )
        else:
            for shard, idsets_state, sketches_state in states:
                self._local_states[shard].load_state(
                    idsets_state, sketches_state
                )

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Shut down executors; idempotent."""
        if self._closed:
            return
        self._closed = True
        for executor in self._executors:
            executor.shutdown(wait=True, cancel_futures=True)
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self) -> None:  # backstop; explicit close() is the contract
        try:
            self.close()
        except Exception:
            pass


def default_backend(workers: int) -> str:
    """Auto-selected backend: serial for one worker, processes where the
    platform can fork, threads otherwise."""
    if workers <= 1:
        return "serial"
    if "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


def make_pool(
    shard_count: int,
    workers: int,
    params: ShardParams,
    backend: Optional[str] = None,
) -> WorkerPool:
    """Build the pool for a sharded session (``backend=None`` auto-selects)."""
    if backend is None:
        backend = default_backend(workers)
    return WorkerPool(shard_count, workers, params, backend)


__all__ = ["WorkerPool", "default_backend", "make_pool"]
