"""Synthetic non-text workloads: actor–entity interaction streams.

The engine's generality claim needs streams that are *not* microblog text.
This module generates two:

* **edge streams** (:func:`build_edge_stream_trace`) — raw actor–entity
  interaction records in the co-purchase/citation shape: each record is one
  actor touching a small set of entities (``fields={"entities": [...]}``,
  consumed by :class:`~repro.extract.edges.EdgeStreamAdapter`).  Background
  traffic draws baskets from a Zipf-popular catalog; planted events are
  bundles of fresh entities a dedicated actor cohort interacts with over a
  bounded interval — the same burst-together / co-occur-across-actors
  structure the paper's keyword events have, so the identical dense-cluster
  machinery discovers them.

* **structured-field streams** (:func:`build_structured_trace`) — JSONL-log
  style records with a categorical ``tags`` field (consumed by
  :class:`~repro.extract.structured.FieldExtractor`); the ground-truth
  entity names carry the extractor's ``tags:`` namespace so evaluation
  matches what the detector reports.

Both generators work in message-index space (replayable under any quantum
size, like :mod:`repro.datasets.traces`), are deterministic given the seed,
and intensity-calibrate against ``REFERENCE_QUANTUM`` so the default
Table 2 parameters discover the planted events.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from repro.datasets.events import GroundTruthEvent
from repro.datasets.synthetic import Trace
from repro.datasets.traces import REFERENCE_QUANTUM
from repro.errors import ConfigError
from repro.stream.messages import Message


def _zipf_catalog(prefix: str, size: int, exponent: float = 1.1):
    """(entity names, cumulative popularity weights) for background draws."""
    names = [f"{prefix}{i:04d}" for i in range(size)]
    weights = [(i + 1) ** (-exponent) for i in range(size)]
    return names, weights


def _planted_interactions(
    rng: random.Random,
    total_messages: int,
    n_events: int,
    n_actors: int,
    entity_pool: Callable[[int, int], List[str]],
    peak_supports: Tuple[float, ...],
) -> Tuple[List[Tuple[float, str, List[str]]], List[GroundTruthEvent]]:
    """Event slots ``(position, actor, entities)`` plus their ground truth.

    Volume is derived from the target per-entity peak support exactly like
    the keyword trace presets: ``peak_support`` distinct-actor interactions
    per pool entity per ``REFERENCE_QUANTUM`` stream messages (uniform
    intensity profile, so peak == mean).
    """
    slots: List[Tuple[float, str, List[str]]] = []
    truth: List[GroundTruthEvent] = []
    for index in range(n_events):
        pool_size = rng.randint(4, 6)
        pool = entity_pool(index, pool_size)
        duration = rng.randint(
            int(total_messages * 0.10), int(total_messages * 0.25)
        )
        start = rng.randint(
            int(total_messages * 0.05), int(total_messages * 0.70)
        )
        per_record = (2, min(3, pool_size))
        mean_per_record = (per_record[0] + per_record[1]) / 2.0
        peak_support = rng.choice(peak_supports)
        rate = peak_support / REFERENCE_QUANTUM  # per entity per message
        volume = max(12, int(rate * duration * pool_size / mean_per_record))
        cohort_size = max(20, volume // 2)
        cohort = rng.sample(range(n_actors), min(cohort_size, n_actors))
        for _ in range(volume):
            position = start + rng.random() * duration
            actor = f"a{cohort[rng.randrange(len(cohort))]}"
            k = rng.randint(*per_record)
            slots.append((position, actor, rng.sample(pool, k)))
        truth.append(
            GroundTruthEvent(
                event_id=f"entity-{index:03d}",
                keywords=tuple(pool),
                start_message=start,
                end_message=start + duration,
                total_messages=volume,
                n_users=len(cohort),
                headlined=False,
                headline_message=None,
                peak_keyword_rate=volume
                * mean_per_record
                / (duration * pool_size),
            )
        )
    return slots, truth


def _assemble(
    name: str,
    rng: random.Random,
    total_messages: int,
    n_actors: int,
    event_slots: List[Tuple[float, str, List[str]]],
    truth: List[GroundTruthEvent],
    catalog_prefix: str,
    catalog_size: int,
    payload: Callable[[List[str]], dict],
) -> Trace:
    """Interleave event slots with Zipf background baskets; build Messages."""
    catalog, weights = _zipf_catalog(catalog_prefix, catalog_size)
    n_background = max(0, total_messages - len(event_slots))
    slots = list(event_slots)
    for _ in range(n_background):
        basket_size = rng.randint(1, 4)
        basket = rng.choices(catalog, weights=weights, k=basket_size)
        slots.append(
            (
                rng.random() * total_messages,
                f"a{rng.randrange(n_actors)}",
                sorted(set(basket)),
            )
        )
    slots.sort(key=lambda s: s[0])
    messages = [
        Message(user_id=actor, fields=payload(entities))
        for _, actor, entities in slots
    ]
    truth = sorted(truth, key=lambda e: e.start_message)
    return Trace(
        name=name,
        messages=messages,
        ground_truth=truth,
        lexicon={},  # non-textual entities carry no part of speech
        spec=None,
    )


def build_edge_stream_trace(
    total_messages: int = 20_000,
    n_events: int = 8,
    n_actors: int = 2_000,
    catalog_size: int = 1_200,
    seed: int = 13,
) -> Trace:
    """A co-purchase-style actor–entity interaction stream.

    Records carry ``fields={"entities": [...]}`` — run with
    ``DetectorConfig(extractor="edges", require_noun=False)`` or
    ``detect --extractor edges``.  Ground-truth events are fresh entity
    bundles (``bundle<i>-<j>``) a dedicated actor cohort co-interacts
    with; the background is Zipf-popular catalog traffic.
    """
    if total_messages < 1_000:
        raise ConfigError(
            f"total_messages must be >= 1000, got {total_messages}"
        )
    rng = random.Random(seed)
    slots, truth = _planted_interactions(
        rng,
        total_messages,
        n_events,
        n_actors,
        entity_pool=lambda i, k: [f"bundle{i:02d}-{j}" for j in range(k)],
        peak_supports=(6.0, 9.0, 12.0, 16.0),
    )
    return _assemble(
        "edge-stream",
        rng,
        total_messages,
        n_actors,
        slots,
        truth,
        catalog_prefix="sku",
        catalog_size=catalog_size,
        payload=lambda entities: {"entities": list(entities)},
    )


def build_structured_trace(
    total_messages: int = 20_000,
    n_events: int = 8,
    n_actors: int = 2_000,
    catalog_size: int = 1_200,
    seed: int = 29,
) -> Trace:
    """A structured-log stream with a categorical ``tags`` field.

    Records carry ``fields={"tags": [...], "channel": ...}`` — run with
    ``DetectorConfig(extractor="fields", extractor_options={"fields":
    ["tags"]}, require_noun=False)`` or ``detect --extractor fields``.
    Ground-truth entity names are pre-namespaced ``tags:<value>`` to match
    the field extractor's default output.
    """
    if total_messages < 1_000:
        raise ConfigError(
            f"total_messages must be >= 1000, got {total_messages}"
        )
    rng = random.Random(seed)
    channels = [f"ch{i}" for i in range(8)]
    slots, truth = _planted_interactions(
        rng,
        total_messages,
        n_events,
        n_actors,
        # ground truth names what the "fields" extractor will report
        entity_pool=lambda i, k: [f"tags:topic{i:02d}-{j}" for j in range(k)],
        peak_supports=(6.0, 9.0, 12.0, 16.0),
    )
    def payload(entities: List[str]) -> dict:
        return {
            # strip the namespace back off: the *record* holds raw values,
            # the extractor re-applies the "tags:" prefix on extraction
            "tags": [e.split(":", 1)[1] if ":" in e else e for e in entities],
            "channel": channels[rng.randrange(len(channels))],
        }
    return _assemble(
        "structured-fields",
        rng,
        total_messages,
        n_actors,
        slots,
        truth,
        catalog_prefix="tags:item",
        catalog_size=catalog_size,
        payload=payload,
    )


__all__ = ["build_edge_stream_trace", "build_structured_trace"]
