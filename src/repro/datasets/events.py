"""Event scripts: the planted ground truth of the synthetic traces.

A real-world event in a microblog stream, as the paper characterises it,
is a set of keywords that (a) burst together in time, (b) co-occur across
messages of the same users, (c) build up, peak and wind down, and (d) evolve
— keywords join and leave while the event unfolds.  :class:`EventScript`
encodes exactly these degrees of freedom; :class:`SpuriousScript` encodes
the opposite profile (one sudden burst, monotone decay, no evolution) the
paper attributes to advertisements and rumours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class GroundTruthEvent:
    """What the evaluator knows about one planted event."""

    event_id: str
    keywords: Tuple[str, ...]
    start_message: int
    end_message: int
    total_messages: int
    n_users: int
    headlined: bool
    headline_message: Optional[int]
    spurious: bool = False
    late_keywords: Tuple[str, ...] = ()
    peak_keyword_rate: float = 0.0
    """Expected occurrences of a single event keyword per message of stream
    at the event's intensity peak.  ``peak_keyword_rate * quantum_size`` is
    the expected per-quantum user support of a keyword at peak."""

    @property
    def all_keywords(self) -> Tuple[str, ...]:
        return self.keywords + self.late_keywords

    def discoverable(self, quantum_size: int, theta: int) -> bool:
        """Would the event's keywords ever clear the burstiness threshold?

        Mirrors the paper's Table 1 methodology: 27 of 60 headline events had
        too few tweets to be considered emerging events and are excluded from
        recall.  An event is discoverable when its expected peak per-quantum
        keyword support reaches theta.
        """
        return self.peak_keyword_rate * quantum_size >= theta


@dataclass
class EventScript:
    """Generator-side description of one planted event.

    Parameters
    ----------
    event_id:
        Stable identifier used in ground truth and headlines.
    keywords:
        The event's keyword pool (nouns, minted by the vocabulary).
    start_message / duration_messages:
        Active interval in message-index space — the trace is therefore
        independent of the quantum size a detector later chooses.
    total_messages:
        How many messages the event contributes overall; with ``profile``
        this determines per-quantum intensity and hence burstiness.
    n_users:
        Size of the event's dedicated user pool.  Users are drawn from the
        global pool by the stream assembler.
    keywords_per_message:
        (lo, hi) inclusive range of event keywords per message.  High values
        make a *tight* event (high pairwise EC); low values a *loose* one
        that a strict gamma threshold prunes — the knob behind the
        Figures 7–10 gamma sensitivity.
    profile:
        "triangular" (build-up, peak, wind-down — real events) or "burst"
        (all mass at the start, then nothing — spurious shape).
    late_keywords:
        Keywords that only appear in the second half of the event, modelling
        evolution (the "5.9" of Figure 1).
    headlined / headline_lag_messages:
        Whether a news headline exists for this event and how many messages
        after the event's start it is published (Google News lag).
    """

    event_id: str
    keywords: List[str]
    start_message: int
    duration_messages: int
    total_messages: int
    n_users: int
    keywords_per_message: Tuple[int, int] = (2, 4)
    profile: str = "triangular"
    late_keywords: List[str] = field(default_factory=list)
    headlined: bool = False
    headline_lag_messages: int = 0
    spurious: bool = False
    """True for injected non-events (advertisement bursts, ongoing chatter)
    that should count against precision when reported."""

    def __post_init__(self) -> None:
        if not self.keywords:
            raise ConfigError(f"event {self.event_id}: needs keywords")
        if self.duration_messages < 1:
            raise ConfigError(f"event {self.event_id}: empty duration")
        if self.total_messages < 0:
            raise ConfigError(f"event {self.event_id}: negative volume")
        if self.n_users < 1:
            raise ConfigError(f"event {self.event_id}: needs users")
        lo, hi = self.keywords_per_message
        if not 1 <= lo <= hi:
            raise ConfigError(
                f"event {self.event_id}: bad keywords_per_message {lo, hi}"
            )
        if self.profile not in ("triangular", "burst", "uniform"):
            raise ConfigError(
                f"event {self.event_id}: unknown profile {self.profile!r}"
            )

    @property
    def end_message(self) -> int:
        return self.start_message + self.duration_messages

    def message_positions(self, rng: np.random.Generator) -> np.ndarray:
        """Message-index positions of this event's messages.

        Triangular: density ramps to a peak at 40% of the duration then
        decays — the build-up/wind-down shape of Section 7.2.2.  Burst: all
        positions packed into the first 10% (then silence), the spurious
        signature.  Uniform: flat.
        """
        n = self.total_messages
        if n == 0:
            return np.empty(0)
        if self.profile == "triangular":
            offsets = rng.triangular(0.0, 0.4, 1.0, size=n)
        elif self.profile == "burst":
            offsets = rng.random(size=n) * 0.1
        else:
            offsets = rng.random(size=n)
        return self.start_message + offsets * self.duration_messages

    def peak_keyword_rate(self) -> float:
        """Expected single-keyword occurrences per stream message at peak."""
        peak_factor = {"triangular": 2.0, "burst": 10.0, "uniform": 1.0}[
            self.profile
        ]
        lo, hi = self.keywords_per_message
        mean_keywords = (lo + hi) / 2.0
        per_message_rate = self.total_messages / self.duration_messages
        return per_message_rate * (mean_keywords / len(self.keywords)) * peak_factor

    def ground_truth(self) -> GroundTruthEvent:
        headline_message = (
            self.start_message + self.headline_lag_messages
            if self.headlined
            else None
        )
        return GroundTruthEvent(
            event_id=self.event_id,
            keywords=tuple(self.keywords),
            start_message=self.start_message,
            end_message=self.end_message,
            total_messages=self.total_messages,
            n_users=self.n_users,
            headlined=self.headlined,
            headline_message=headline_message,
            spurious=self.spurious,
            late_keywords=tuple(self.late_keywords),
            peak_keyword_rate=self.peak_keyword_rate(),
        )


@dataclass
class SpuriousScript:
    """A spurious burst: advertisement, meme or rumour.

    Structurally it is an event with a "burst" profile, no keyword
    evolution, and (optionally) an all-non-noun keyword set — the three
    signatures the paper's precision filters key on.
    """

    event_id: str
    keywords: List[str]
    start_message: int
    duration_messages: int
    total_messages: int
    n_users: int
    keywords_per_message: Tuple[int, int] = (2, 4)

    def to_event_script(self) -> EventScript:
        return EventScript(
            event_id=self.event_id,
            keywords=self.keywords,
            start_message=self.start_message,
            duration_messages=self.duration_messages,
            total_messages=self.total_messages,
            n_users=self.n_users,
            keywords_per_message=self.keywords_per_message,
            profile="burst",
            spurious=True,
        )

    def ground_truth(self) -> GroundTruthEvent:
        return self.to_event_script().ground_truth()


@dataclass
class BridgeScript:
    """A weak keyword *chain* between two concurrent events.

    Real CKGs connect event clusters through chains of generic words
    ("police", "dead", "city"): each chain edge is strongly correlated for
    its own small user group, but the chain as a whole contains no short
    cycle.  Two such chains between the same pair of events make their union
    **biconnected** — so the offline method of Section 7.3 merges the two
    real events into one cluster (its recall/precision loss mechanism) —
    while SCP clusters stay separate because no cycle of length <= 4 crosses
    the chains.

    ``links`` lists the consecutive keyword pairs of the path, e.g.
    ``[(a_host, x), (x, b_host)]``.  Each link gets a dedicated user group
    posting exactly that pair, which keeps the link's edge correlation high.
    """

    event_id: str
    links: List[Tuple[str, str]]
    start_message: int
    duration_messages: int
    messages_per_link: int
    n_users_per_link: int
    link_user_sources: List[Optional[str]] = field(default_factory=list)
    """Per link, the event id whose user pool supplies the link's users
    (None = fresh users from the global pool).  Drawing bridge users from
    the host event's own pool keeps the host keyword's id set undiluted, so
    the host stays correlated with its own cluster — bridge users in real
    streams are exactly such event participants who also use the generic
    connecting word."""

    def __post_init__(self) -> None:
        if not self.links:
            raise ConfigError(f"bridge {self.event_id}: needs links")
        if self.duration_messages < 1:
            raise ConfigError(f"bridge {self.event_id}: empty duration")
        if self.messages_per_link < 1 or self.n_users_per_link < 1:
            raise ConfigError(f"bridge {self.event_id}: needs volume and users")
        if self.link_user_sources and len(self.link_user_sources) != len(self.links):
            raise ConfigError(
                f"bridge {self.event_id}: link_user_sources must match links"
            )

    @property
    def end_message(self) -> int:
        return self.start_message + self.duration_messages

    @property
    def chain_keywords(self) -> List[str]:
        """The intermediate keywords introduced by the chain."""
        out: List[str] = []
        for a, b in self.links:
            for word in (a, b):
                if word not in out:
                    out.append(word)
        return out


def chatter_pair_script(
    event_id: str,
    words: Sequence[str],
    total_stream_messages: int,
    messages: int,
    n_users: int,
) -> EventScript:
    """An *ongoing discussion*: a keyword pair steadily co-used by many users.

    Chatter pairs never form short cycles (two nodes), so the SCP method
    ignores them — but they are exactly the stray AKG edges that the offline
    "+Edges" scheme reports as size-2 clusters, crashing its precision in
    Table 3.  Marked spurious in ground truth: they are not real events.
    """
    if len(words) != 2:
        raise ConfigError("a chatter pair needs exactly 2 words")
    return EventScript(
        event_id=event_id,
        keywords=list(words),
        start_message=0,
        duration_messages=total_stream_messages,
        total_messages=messages,
        n_users=n_users,
        keywords_per_message=(2, 2),
        profile="uniform",
        spurious=True,
    )


__all__ = ["EventScript", "SpuriousScript", "GroundTruthEvent"]
