"""The Figure 1 micro-example: six tweets about the Turkey earthquake.

The paper's running example: twelve keywords across six messages, of which
six burst; the cluster "earthquake struck eastern turkey" emerges, two bursty
but spatially-uncorrelated words ("massive", "moderate") stay out, and after
the window slides, "5.9" joins the cluster.  Used by the quickstart example
and by the paper-example tests.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.stream.messages import Message


def figure1_messages() -> Tuple[List[Message], List[Message]]:
    """(initial six messages, follow-up messages adding "5.9").

    The first batch induces the four-keyword cluster; replaying the second
    batch afterwards makes "5.9" join it — the evolution step of Figure 1.
    """
    initial = [
        Message("user1", tokens=("earthquake", "struck", "turkey")),
        Message("user2", tokens=("earthquake", "eastern", "turkey")),
        Message("user3", tokens=("massive", "earthquake", "struck")),
        Message("user4", tokens=("eastern", "turkey", "struck")),
        Message("user5", tokens=("moderate", "earthquake", "turkey")),
        Message("user6", tokens=("earthquake", "eastern", "struck", "turkey")),
    ]
    update = [
        Message("user7", tokens=("earthquake", "5.9", "turkey")),
        Message("user8", tokens=("5.9", "earthquake", "turkey")),
        Message("user9", tokens=("earthquake", "5.9", "eastern")),
        Message("user10", tokens=("turkey", "5.9", "struck")),
        Message("user11", tokens=("earthquake", "turkey", "struck")),
        Message("user12", tokens=("eastern", "turkey", "5.9")),
    ]
    return initial, update


__all__ = ["figure1_messages"]
