"""Synthetic news-headline feed — the Table 1 ground-truth comparator.

The paper collected Google News RSS headlines concurrently with the Twitter
stream and asked: which headline events does the detector find, and how much
earlier?  This module derives the equivalent feed from a trace's planted
ground truth: every headlined event yields a :class:`Headline` published
``headline_lag_messages`` after the event starts in the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.events import GroundTruthEvent
from repro.datasets.synthetic import Trace

PAPER_STREAM_RATE = 21.0
"""Messages per second of the paper's ground-truth download (Section 7.1),
used to convert message-index lead times into wall-clock terms."""


@dataclass(frozen=True)
class Headline:
    """One news headline with its publication position in stream time."""

    event_id: str
    text: str
    published_message: int
    keywords: tuple

    def lead_time_messages(self, detected_message: Optional[int]) -> Optional[int]:
        """How many messages before the headline the event was detected.

        Positive = the detector beat the headline (the paper's tornado
        warnings were up to six hours ahead); None = never detected.
        """
        if detected_message is None:
            return None
        return self.published_message - detected_message

    def lead_time_seconds(
        self, detected_message: Optional[int], rate: float = PAPER_STREAM_RATE
    ) -> Optional[float]:
        lead = self.lead_time_messages(detected_message)
        return None if lead is None else lead / rate


def headlines_for_trace(trace: Trace) -> List[Headline]:
    """The headline feed implied by a trace's ground truth."""
    out: List[Headline] = []
    for event in trace.ground_truth:
        if not event.headlined or event.headline_message is None:
            continue
        out.append(
            Headline(
                event_id=event.event_id,
                text=" ".join(event.keywords[:5]).capitalize(),
                published_message=event.headline_message,
                keywords=tuple(event.keywords),
            )
        )
    out.sort(key=lambda h: h.published_message)
    return out


__all__ = ["Headline", "headlines_for_trace", "PAPER_STREAM_RATE"]
