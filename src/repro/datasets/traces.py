"""Trace presets mirroring the paper's three experimental workloads.

* **TW** (time-window) trace — general stream, low event density;
* **ES** (event-specific) trace — same length, ≈3x the event density
  (Section 7.2.3 measures exactly this ratio between the two traces);
* **ground-truth** trace — the Section 7.1 setup: headline events (some too
  small to be discoverable, as 27 of the paper's 60 were), additional local
  events with no headline, and spurious bursts.

Event intensity, tightness (keywords per message → edge correlation) and
duration are drawn from calibrated ranges so that the paper's parameter
sensitivities reproduce: weak events become discoverable only at larger
quantum sizes, loose events only at lower EC thresholds.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.datasets.events import (
    BridgeScript,
    EventScript,
    SpuriousScript,
    chatter_pair_script,
)
from repro.datasets.synthetic import StreamSpec, Trace, generate_stream
from repro.datasets.vocab import Vocabulary

REFERENCE_QUANTUM = 160
"""Quantum size (messages) the intensity calibration refers to (Table 2)."""

# (keyword pool size, keywords-per-message range) per tightness class.
_TIGHTNESS = {
    "tight": (6, (3, 5)),    # pairwise EC ~ 0.40
    "medium": (7, (2, 4)),   # pairwise EC ~ 0.22
    "loose": (8, (2, 3)),    # pairwise EC ~ 0.13
}


def _make_event(
    rng: random.Random,
    vocab: Vocabulary,
    event_id: str,
    total_messages: int,
    *,
    tightness: str,
    peak_support: float,
    headlined: bool = False,
    evolving: bool = False,
) -> EventScript:
    """Build one event script from calibrated intensity parameters.

    ``peak_support`` is the target distinct-user support of one event keyword
    per REFERENCE_QUANTUM messages at the event's peak; the script's message
    volume is derived from it (triangular profiles peak at 2x their mean).
    """
    pool_size, kpm = _TIGHTNESS[tightness]
    keywords = vocab.make_event_keywords(pool_size, tag="noun")
    duration = rng.randint(2500, 7000)
    duration = min(duration, int(total_messages * 0.5))
    start = rng.randint(
        int(total_messages * 0.05), int(total_messages * 0.80)
    )
    mean_kpm = (kpm[0] + kpm[1]) / 2.0
    peak_rate = peak_support / REFERENCE_QUANTUM
    volume = int(peak_rate * duration * pool_size / (mean_kpm * 2.0))
    volume = max(volume, 8)
    late = (
        vocab.make_event_keywords(rng.randint(1, 2), tag="noun")
        if evolving
        else []
    )
    # A user pool as large as the volume keeps most users at one or two
    # messages, so pairwise edge correlation stays at the tightness class's
    # design point instead of being inflated by heavy reposters.
    return EventScript(
        event_id=event_id,
        keywords=keywords,
        start_message=start,
        duration_messages=duration,
        total_messages=volume,
        n_users=max(25, volume),
        keywords_per_message=kpm,
        profile="triangular",
        late_keywords=late,
        headlined=headlined,
        headline_lag_messages=rng.randint(500, 4000) if headlined else 0,
    )


def _make_spurious(
    rng: random.Random,
    vocab: Vocabulary,
    event_id: str,
    total_messages: int,
    *,
    all_non_noun: bool = False,
) -> SpuriousScript:
    """A burst-and-die cluster: advertisement / meme / rumour."""
    tag = "adj" if all_non_noun else "noun"
    keywords = vocab.make_event_keywords(rng.randint(4, 6), tag=tag)
    duration = rng.randint(1500, 3000)
    start = rng.randint(
        int(total_messages * 0.05), int(total_messages * 0.85)
    )
    volume = rng.randint(120, 260)
    return SpuriousScript(
        event_id=event_id,
        keywords=keywords,
        start_message=start,
        duration_messages=duration,
        total_messages=volume,
        n_users=max(20, volume // 3),
        keywords_per_message=(3, 4),
    )


def _make_chatter(
    rng: random.Random,
    vocab: Vocabulary,
    count: int,
    total_messages: int,
    prefix: str,
) -> List[EventScript]:
    """Ongoing-discussion keyword pairs: persistent stray AKG edges.

    Volume is calibrated so each pair clears the burstiness threshold in
    most quanta (5–8 co-mentions per reference quantum) while never forming
    a short cycle.
    """
    out = []
    for i in range(count):
        words = vocab.make_event_keywords(2, tag="noun")
        per_quantum = rng.uniform(5.0, 8.0)
        volume = int(per_quantum * total_messages / REFERENCE_QUANTUM)
        out.append(
            chatter_pair_script(
                f"{prefix}-chat-{i:02d}",
                words,
                total_messages,
                messages=volume,
                n_users=max(30, volume // 2),
            )
        )
    return out


def _event_mix(
    rng: random.Random,
    vocab: Vocabulary,
    count: int,
    total_messages: int,
    prefix: str,
    support_choices: Optional[List[float]] = None,
) -> List[EventScript]:
    """The calibrated mix: tightness 40/30/30, intensity log-spread.

    Intensities straddle the burstiness threshold so the quantum-size sweep
    of Figures 7–10 has something to resolve: strong events are found at
    every quantum size, weak ones only when the quantum is large enough.
    """
    events = []
    classes = ["tight", "medium", "loose"]
    weights = [0.4, 0.3, 0.3]
    if support_choices is None:
        support_choices = [3.0, 4.5, 6.0, 8.0, 12.0, 16.0]
    for i in range(count):
        tightness = rng.choices(classes, weights)[0]
        peak_support = rng.choice(support_choices)
        events.append(
            _make_event(
                rng,
                vocab,
                f"{prefix}-{i:03d}",
                total_messages,
                tightness=tightness,
                peak_support=peak_support,
                evolving=rng.random() < 0.5,
            )
        )
    return events


def _make_bridges(
    rng: random.Random,
    vocab: Vocabulary,
    events: List[EventScript],
    count: int,
    prefix: str,
) -> List[BridgeScript]:
    """Weak generic-word chains between temporally overlapping event pairs.

    Two chains per sibling pair make the union biconnected without creating
    any short cycle: distinct host keywords on both sides keep the shortest
    crossing cycle at length >= 5.  Hosts are drawn from *weaker* events so
    the chain edges' Jaccard correlation clears the nominal EC threshold
    (correlation with a very popular keyword is diluted by its large id
    set — true of real CKGs too).
    """
    def weak(event: EventScript) -> bool:
        # Detectable (its cluster must exist for a merge to mean anything)
        # yet unpopular enough that chain-edge Jaccard is not diluted.
        peak = event.peak_keyword_rate() * REFERENCE_QUANTUM
        return 5.0 <= peak <= 12.0

    candidates = [
        e
        for e in events
        if not e.spurious and len(e.keywords) >= 4 and e.profile == "triangular"
        and weak(e)
    ]
    # Nested pairs: B lives strictly inside A's active window, so the chains
    # can cover B's entire cluster lifetime — only then does the offline
    # method lose B entirely (the paper's recall-loss mechanism); a partial
    # overlap would leave B an unmerged phase in which it is still found.
    pairs = []
    for outer in candidates:
        for inner in candidates:
            if inner is outer:
                continue
            if (
                inner.start_message >= outer.start_message + 300
                and inner.end_message <= outer.end_message + 500
                and inner.duration_messages >= 1200
            ):
                pairs.append((outer, inner))
    rng.shuffle(pairs)
    bridges: List[BridgeScript] = []
    used: set = set()
    for outer, inner in pairs:
        if len(bridges) >= 2 * count:
            break
        if outer.event_id in used or inner.event_id in used:
            continue
        used.add(outer.event_id)
        used.add(inner.event_id)
        outer_hosts = rng.sample(outer.keywords, 2)
        inner_hosts = rng.sample(inner.keywords, 2)
        start = max(0, inner.start_message - 500)
        duration = inner.end_message + 1500 - start
        for chain in range(2):
            mid = vocab.make_event_keywords(1, tag="noun")[0]
            per_quantum = rng.uniform(6.0, 9.0)
            messages_per_link = max(6, int(per_quantum * duration / REFERENCE_QUANTUM))
            bridges.append(
                BridgeScript(
                    event_id=f"{prefix}-bridge-{len(bridges):02d}",
                    links=[(outer_hosts[chain], mid), (mid, inner_hosts[chain])],
                    start_message=start,
                    duration_messages=duration,
                    messages_per_link=messages_per_link,
                    n_users_per_link=max(20, messages_per_link // 3),
                    link_user_sources=[outer.event_id, inner.event_id],
                )
            )
    return bridges


def build_tw_trace(
    total_messages: int = 30_000,
    n_events: int = 10,
    n_spurious: int = 3,
    n_chatter_pairs: int = 6,
    n_bridge_pairs: int = 2,
    cross_event_noise: float = 0.04,
    seed: int = 7,
    n_users: int = 3000,
) -> Trace:
    """The Time-Window trace: general stream, low event density."""
    rng = random.Random(seed)
    vocab = Vocabulary(size=5000, seed=seed)
    events = _event_mix(rng, vocab, n_events, total_messages, "tw")
    bridges = _make_bridges(rng, vocab, events, n_bridge_pairs, "tw")
    events += _make_chatter(rng, vocab, n_chatter_pairs, total_messages, "tw")
    spurious = [
        _make_spurious(
            rng, vocab, f"tw-spur-{i}", total_messages, all_non_noun=(i % 3 == 2)
        )
        for i in range(n_spurious)
    ]
    spec = StreamSpec(
        total_messages=total_messages,
        vocabulary=vocab,
        events=events,
        spurious=spurious,
        bridges=bridges,
        n_users=n_users,
        cross_event_noise=cross_event_noise,
        seed=seed,
    )
    return generate_stream(spec, name="TW")


def build_es_trace(
    total_messages: int = 30_000,
    n_events: int = 30,
    n_spurious: int = 5,
    n_chatter_pairs: int = 6,
    n_bridge_pairs: int = 5,
    cross_event_noise: float = 0.05,
    seed: int = 11,
    n_users: int = 3000,
) -> Trace:
    """The Event-Specific trace: ≈3x the TW event density (Section 7.2.3).

    Besides having three times as many events, the ES trace is
    *event-dominated*: its intensity mix is shifted upward so that event
    messages form a large fraction of the stream, like the paper's
    topic-filtered download — which is why the paper processes ES several
    times slower than TW (Table 4).
    """
    rng = random.Random(seed)
    vocab = Vocabulary(size=5000, seed=seed)
    events = _event_mix(
        rng, vocab, n_events, total_messages, "es",
        support_choices=[3.0, 4.5, 6.0, 9.0, 14.0, 20.0, 28.0],
    )
    bridges = _make_bridges(rng, vocab, events, n_bridge_pairs, "es")
    events += _make_chatter(rng, vocab, n_chatter_pairs, total_messages, "es")
    spurious = [
        _make_spurious(
            rng, vocab, f"es-spur-{i}", total_messages, all_non_noun=(i % 3 == 2)
        )
        for i in range(n_spurious)
    ]
    spec = StreamSpec(
        total_messages=total_messages,
        vocabulary=vocab,
        events=events,
        spurious=spurious,
        bridges=bridges,
        n_users=n_users,
        cross_event_noise=cross_event_noise,
        seed=seed,
    )
    return generate_stream(spec, name="ES")


def build_ground_truth_trace(
    total_messages: int = 60_000,
    n_headline_discoverable: int = 33,
    n_headline_subthreshold: int = 27,
    n_local_events: int = 60,
    n_spurious: int = 6,
    n_chatter_pairs: int = 10,
    n_bridge_pairs: int = 6,
    cross_event_noise: float = 0.05,
    seed: int = 3,
    n_users: int = 5000,
) -> Trace:
    """The Section 7.1 ground-truth workload.

    * ``n_headline_discoverable`` headline events with enough stream volume
      to burst (the paper's 33);
    * ``n_headline_subthreshold`` headline events with almost no stream
      presence (the paper's 27 — e.g. one lone tweet);
    * ``n_local_events`` non-headlined local events (job alerts, weather
      advisories) — the "6x more events" the paper reports;
    * spurious bursts for the precision side.
    """
    rng = random.Random(seed)
    vocab = Vocabulary(size=5000, seed=seed)
    events: List[EventScript] = []
    for i in range(n_headline_discoverable):
        tightness = rng.choices(["tight", "medium", "loose"], [0.5, 0.3, 0.2])[0]
        events.append(
            _make_event(
                rng,
                vocab,
                f"gt-head-{i:03d}",
                total_messages,
                tightness=tightness,
                peak_support=rng.choice([5.0, 7.0, 10.0, 14.0]),
                headlined=True,
                evolving=rng.random() < 0.5,
            )
        )
    for i in range(n_headline_subthreshold):
        # A headline with barely any microblog echo: 1-3 messages total.
        keywords = vocab.make_event_keywords(5, tag="noun")
        start = rng.randint(
            int(total_messages * 0.05), int(total_messages * 0.9)
        )
        events.append(
            EventScript(
                event_id=f"gt-sub-{i:03d}",
                keywords=keywords,
                start_message=start,
                duration_messages=1200,
                total_messages=rng.randint(1, 3),
                n_users=3,
                keywords_per_message=(3, 4),
                profile="uniform",
                headlined=True,
                headline_lag_messages=rng.randint(200, 1500),
            )
        )
    for i in range(n_local_events):
        tightness = rng.choices(["tight", "medium", "loose"], [0.4, 0.3, 0.3])[0]
        events.append(
            _make_event(
                rng,
                vocab,
                f"gt-local-{i:03d}",
                total_messages,
                tightness=tightness,
                peak_support=rng.choice([4.5, 6.0, 8.0, 12.0]),
                headlined=False,
                evolving=rng.random() < 0.4,
            )
        )
    bridges = _make_bridges(rng, vocab, events, n_bridge_pairs, "gt")
    events += _make_chatter(rng, vocab, n_chatter_pairs, total_messages, "gt")
    spurious = [
        _make_spurious(
            rng, vocab, f"gt-spur-{i}", total_messages, all_non_noun=(i % 3 == 2)
        )
        for i in range(n_spurious)
    ]
    spec = StreamSpec(
        total_messages=total_messages,
        vocabulary=vocab,
        events=events,
        spurious=spurious,
        bridges=bridges,
        n_users=n_users,
        cross_event_noise=cross_event_noise,
        seed=seed,
    )
    return generate_stream(spec, name="ground-truth")


__all__ = [
    "REFERENCE_QUANTUM",
    "build_tw_trace",
    "build_es_trace",
    "build_ground_truth_trace",
]
