"""Stream assembly: interleave background chatter, events and spurious bursts.

The generator works entirely in *message-index space*, so a single trace can
be replayed under any quantum size — exactly how the paper sweeps the
quantum parameter over fixed Twitter traces.

Messages carry pre-extracted token tuples (the detector's fast path); the
vocabulary's POS lexicon accompanies the trace so the noun filter is exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.events import (
    BridgeScript,
    EventScript,
    GroundTruthEvent,
    SpuriousScript,
)
from repro.datasets.vocab import Vocabulary
from repro.errors import ConfigError
from repro.stream.messages import Message


@dataclass
class StreamSpec:
    """Everything needed to assemble one synthetic trace."""

    total_messages: int
    vocabulary: Vocabulary
    events: List[EventScript] = field(default_factory=list)
    spurious: List[SpuriousScript] = field(default_factory=list)
    bridges: List[BridgeScript] = field(default_factory=list)
    n_users: int = 3000
    background_words_per_message: Tuple[int, int] = (3, 6)
    event_background_words: Tuple[int, int] = (0, 2)
    cross_event_noise: float = 0.0
    """Probability that an event message also mentions keywords of another
    concurrently active event (bridge users).  These cross-event edges are
    what makes offline biconnected components merge distinct events
    (Section 7.3: "two real events get merged into one offline cluster");
    the SCP method only merges when a short cycle forms."""
    seed: int = 0

    def __post_init__(self) -> None:
        if self.total_messages < 1:
            raise ConfigError("total_messages must be >= 1")
        if self.n_users < 10:
            raise ConfigError("n_users must be >= 10")
        if not 0.0 <= self.cross_event_noise <= 1.0:
            raise ConfigError("cross_event_noise must be in [0, 1]")


@dataclass
class Trace:
    """A generated message stream plus its ground truth.

    ``spec`` is the generating :class:`StreamSpec` for token traces; the
    non-text generators (:mod:`repro.datasets.entity_streams`) assemble
    messages directly and leave it ``None``.
    """

    name: str
    messages: List[Message]
    ground_truth: List[GroundTruthEvent]
    lexicon: Dict[str, str]
    spec: Optional[StreamSpec] = None

    @property
    def total_messages(self) -> int:
        return len(self.messages)

    def real_events(self) -> List[GroundTruthEvent]:
        return [e for e in self.ground_truth if not e.spurious]

    def spurious_events(self) -> List[GroundTruthEvent]:
        return [e for e in self.ground_truth if e.spurious]


class _CrossEventSampler:
    """Coarse interval index: which real events are active at a position."""

    def __init__(self, events: Sequence[EventScript], total_messages: int) -> None:
        self._buckets: List[List[EventScript]] = [[] for _ in range(128)]
        self._width = max(1.0, total_messages / 128.0)
        for event in events:
            first = int(event.start_message / self._width)
            last = int((event.end_message - 1) / self._width)
            for b in range(max(0, first), min(127, last) + 1):
                self._buckets[b].append(event)

    def concurrent_other(
        self, script: EventScript, position: float, rng: random.Random
    ) -> Optional[EventScript]:
        bucket = self._buckets[min(127, int(position / self._width))]
        candidates = [
            e
            for e in bucket
            if e is not script and e.start_message <= position < e.end_message
        ]
        return rng.choice(candidates) if candidates else None


def generate_stream(spec: StreamSpec, name: str = "synthetic") -> Trace:
    """Assemble the trace: deterministic given ``spec.seed``.

    Event messages are placed by each script's intensity profile; the
    remaining volume is background chatter at uniformly random positions.
    The final stream is the position-sorted interleaving.
    """
    nprng = np.random.default_rng(spec.seed)
    pyrng = random.Random(spec.seed ^ 0x9E3779B9)

    # (position, user_index, event_keywords, n_background_words)
    slots: List[Tuple[float, int, List[str], int]] = []

    scripts = list(spec.events) + [s.to_event_script() for s in spec.spurious]
    contamination = _CrossEventSampler(
        [s for s in spec.events if not s.spurious and len(s.keywords) >= 3],
        spec.total_messages,
    )
    event_pools: Dict[str, List[int]] = {}
    for script in scripts:
        positions = script.message_positions(nprng)
        pool_size = min(script.n_users, spec.n_users)
        user_pool = pyrng.sample(range(spec.n_users), pool_size)
        event_pools[script.event_id] = user_pool
        evolution_point = script.start_message + 0.5 * script.duration_messages
        lo, hi = script.keywords_per_message
        base_pool = list(script.keywords)
        late_pool = base_pool + list(script.late_keywords)
        bg_lo, bg_hi = spec.event_background_words
        for pos in positions:
            user = user_pool[pyrng.randrange(pool_size)]
            pool = (
                late_pool
                if script.late_keywords and pos >= evolution_point
                else base_pool
            )
            k = min(pyrng.randint(lo, hi), len(pool))
            keywords = pyrng.sample(pool, k)
            if (
                spec.cross_event_noise
                and not script.spurious
                and pyrng.random() < spec.cross_event_noise
            ):
                other = contamination.concurrent_other(script, pos, pyrng)
                if other is not None:
                    keywords = keywords + pyrng.sample(
                        list(other.keywords), min(2, len(other.keywords))
                    )
            slots.append((float(pos), user, keywords, pyrng.randint(bg_lo, bg_hi)))

    for bridge in spec.bridges:
        sources = bridge.link_user_sources or [None] * len(bridge.links)
        for (w1, w2), source in zip(bridge.links, sources):
            source_pool = event_pools.get(source) if source else None
            if source_pool:
                pool_size = min(bridge.n_users_per_link, len(source_pool))
                link_users = pyrng.sample(source_pool, pool_size)
            else:
                pool_size = min(bridge.n_users_per_link, spec.n_users)
                link_users = pyrng.sample(range(spec.n_users), pool_size)
            for _ in range(bridge.messages_per_link):
                pos = bridge.start_message + pyrng.random() * bridge.duration_messages
                user = link_users[pyrng.randrange(pool_size)]
                slots.append((float(pos), user, [w1, w2], 0))

    n_event_messages = len(slots)
    n_background = max(0, spec.total_messages - n_event_messages)
    bg_positions = nprng.random(n_background) * spec.total_messages
    bg_users = nprng.integers(0, spec.n_users, size=n_background)
    word_lo, word_hi = spec.background_words_per_message
    bg_word_counts = nprng.integers(word_lo, word_hi + 1, size=n_background)
    for i in range(n_background):
        slots.append(
            (float(bg_positions[i]), int(bg_users[i]), [], int(bg_word_counts[i]))
        )

    # One vectorised Zipf draw covers every background word in the trace.
    total_bg_words = sum(s[3] for s in slots)
    bg_indexes = spec.vocabulary.sample_background_batch(nprng, total_bg_words)
    words = spec.vocabulary.words

    slots.sort(key=lambda s: s[0])
    messages: List[Message] = []
    cursor = 0
    for _, user, keywords, n_bg in slots:
        tokens = list(keywords)
        if n_bg:
            tokens.extend(
                words[idx] for idx in bg_indexes[cursor : cursor + n_bg]
            )
            cursor += n_bg
        if not tokens:  # guarantee non-empty messages
            tokens = [words[int(bg_indexes[cursor % total_bg_words])]]
        messages.append(Message(user_id=f"u{user}", tokens=tuple(tokens)))

    ground_truth = [s.ground_truth() for s in spec.events] + [
        s.ground_truth() for s in spec.spurious
    ]
    ground_truth.sort(key=lambda e: e.start_message)
    return Trace(
        name=name,
        messages=messages,
        ground_truth=ground_truth,
        lexicon=spec.vocabulary.lexicon(),
        spec=spec,
    )


__all__ = ["StreamSpec", "Trace", "generate_stream"]
