"""Synthetic vocabulary with ground-truth part-of-speech tags.

Words are pronounceable syllable compounds ("datorin", "velkun") so traces
are human-readable when debugging.  Background word frequencies follow a
Zipf law — the skew is what produces *accidental* keyword co-occurrence in
the CKG, which is exactly the noise source the paper's burstiness and EC
thresholds must reject.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigError

_ONSETS = "b d f g k l m n p r s t v z br dr gr kr pl st tr".split()
_NUCLEI = "a e i o u ai ea io ou".split()
_CODAS = ["", "n", "r", "s", "t", "l", "k"]


def _word_from_index(index: int) -> str:
    """Deterministic distinct pronounceable word for an integer index."""
    parts: List[str] = []
    i = index
    for _ in range(2):
        onset = _ONSETS[i % len(_ONSETS)]
        i //= len(_ONSETS)
        nucleus = _NUCLEI[i % len(_NUCLEI)]
        i //= len(_NUCLEI)
        parts.append(onset + nucleus)
    coda = _CODAS[i % len(_CODAS)]
    i //= len(_CODAS)
    suffix = str(i) if i else ""
    return "".join(parts) + coda + suffix


class Vocabulary:
    """Zipf-weighted background vocabulary plus reserved event words.

    Parameters
    ----------
    size:
        Number of background words.
    zipf_exponent:
        Skew of the background frequency law (1.0–1.3 is Twitter-like).
    noun_fraction / verb_fraction:
        POS mix; the remainder are adjectives.  Tags feed the
        :class:`repro.text.pos.NounTagger` lexicon, making the noun filter
        exact on synthetic traces.
    seed:
        Drives POS assignment only; word shapes are index-deterministic.
    """

    def __init__(
        self,
        size: int = 5000,
        zipf_exponent: float = 1.1,
        noun_fraction: float = 0.55,
        verb_fraction: float = 0.30,
        seed: int = 0,
    ) -> None:
        if size < 10:
            raise ConfigError(f"vocabulary size must be >= 10, got {size}")
        if not 0 < zipf_exponent:
            raise ConfigError(f"zipf_exponent must be > 0, got {zipf_exponent}")
        if noun_fraction + verb_fraction > 1.0:
            raise ConfigError("noun_fraction + verb_fraction must be <= 1")
        self.size = size
        rng = np.random.default_rng(seed)
        self.words: List[str] = [_word_from_index(i) for i in range(size)]
        ranks = np.arange(1, size + 1, dtype=float)
        weights = ranks ** (-zipf_exponent)
        self._probs = weights / weights.sum()
        tags = rng.choice(
            ["noun", "verb", "adj"],
            size=size,
            p=[
                noun_fraction,
                verb_fraction,
                1.0 - noun_fraction - verb_fraction,
            ],
        )
        self.pos_tags: Dict[str, str] = dict(zip(self.words, tags))
        self._event_word_count = 0

    # ----------------------------------------------------------- sampling

    def sample_background(
        self, rng: np.random.Generator, count: int
    ) -> List[str]:
        """Draw ``count`` background words by Zipf weight (with repetition)."""
        idx = rng.choice(self.size, size=count, p=self._probs)
        return [self.words[i] for i in idx]

    def sample_background_batch(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Vectorised index batch (callers map indexes to words lazily)."""
        return rng.choice(self.size, size=count, p=self._probs)

    def word_at(self, index: int) -> str:
        return self.words[index]

    # -------------------------------------------------------- event words

    def make_event_keywords(self, count: int, tag: str = "noun") -> List[str]:
        """Mint fresh event keywords disjoint from the background vocabulary.

        Event keywords get distinct shapes ("evt12kw3"-free: they reuse the
        syllable generator at offsets beyond the background range) so ground
        truth attribution is unambiguous.
        """
        words = []
        for _ in range(count):
            index = self.size + self._event_word_count
            self._event_word_count += 1
            word = _word_from_index(index * 7 + 3)  # decorrelate shapes
            while word in self.pos_tags:
                self._event_word_count += 1
                index = self.size + self._event_word_count
                word = _word_from_index(index * 7 + 3)
            self.pos_tags[word] = tag
            words.append(word)
        return words

    def lexicon(self) -> Dict[str, str]:
        """word -> POS tag for every word minted so far."""
        return dict(self.pos_tags)


__all__ = ["Vocabulary"]
