"""Synthetic microblog workloads substituting for the paper's Twitter traces.

The paper evaluates on live Twitter data (1.3M geo-filtered tweets for the
ground-truth study, 8M event-specific "ES" tweets, 10M time-window "TW"
tweets).  Those traces are not redistributable, so this subpackage generates
streams with the same *statistical structure* the algorithm consumes:

* Zipf-distributed background chatter over a generated vocabulary with
  ground-truth part-of-speech tags (:mod:`repro.datasets.vocab`);
* planted events with build-up / peak / wind-down intensity profiles, event
  keyword pools, dedicated user pools, and varying tightness (how many event
  keywords a single user mentions — this drives edge correlation)
  (:mod:`repro.datasets.events`);
* spurious bursts (advertisements / rumours) that spike once and decay
  monotonically (:mod:`repro.datasets.events`);
* trace presets matching the paper's setups (:mod:`repro.datasets.traces`):
  TW (low event density), ES (≈3x event density), and the ground-truth trace
  with a synthetic headline feed (:mod:`repro.datasets.headlines`);
* the Figure 1 micro-example (:mod:`repro.datasets.figure1`);
* non-text actor–entity workloads — co-purchase-style edge streams and
  structured-field logs — for the pluggable extractors
  (:mod:`repro.datasets.entity_streams`).

All generation is deterministic given a seed.
"""

from repro.datasets.vocab import Vocabulary
from repro.datasets.events import (
    BridgeScript,
    EventScript,
    GroundTruthEvent,
    SpuriousScript,
    chatter_pair_script,
)
from repro.datasets.synthetic import StreamSpec, generate_stream, Trace
from repro.datasets.traces import (
    build_tw_trace,
    build_es_trace,
    build_ground_truth_trace,
)
from repro.datasets.entity_streams import (
    build_edge_stream_trace,
    build_structured_trace,
)
from repro.datasets.headlines import Headline, headlines_for_trace
from repro.datasets.figure1 import figure1_messages

__all__ = [
    "Vocabulary",
    "EventScript",
    "SpuriousScript",
    "GroundTruthEvent",
    "BridgeScript",
    "chatter_pair_script",
    "StreamSpec",
    "generate_stream",
    "Trace",
    "build_tw_trace",
    "build_es_trace",
    "build_ground_truth_trace",
    "build_edge_stream_trace",
    "build_structured_trace",
    "Headline",
    "headlines_for_trace",
    "figure1_messages",
]
