"""Articulation points and biconnected components (iterative Hopcroft–Tarjan).

These classical algorithms serve three roles in the reproduction:

* the **offline baseline** of Section 7.3 ([2], Bansal et al.) computes
  biconnected components of the whole AKG after every quantum;
* property **P2** of Section 4.3 (every SCP cluster is biconnected) is
  verified against this implementation in the test suite;
* the paper's NodeDeletion articulation-check (Section 5.3) is validated
  against the articulation points computed here.

The implementations are iterative (explicit stack) so that large baseline
graphs do not hit Python's recursion limit.  They accept either a
:class:`~repro.graph.dynamic_graph.DynamicGraph` or a plain adjacency mapping
``{node: iterable-of-neighbours}``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Set, Tuple

from repro.graph.dynamic_graph import DynamicGraph, EdgeKey, edge_key

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]


def _as_adjacency(graph: "DynamicGraph | Adjacency") -> Adjacency:
    if isinstance(graph, DynamicGraph):
        return graph.adjacency()
    return graph


def articulation_points(graph: "DynamicGraph | Adjacency") -> Set[Node]:
    """Nodes whose removal disconnects their connected component."""
    adj = _as_adjacency(graph)
    visited: Set[Node] = set()
    disc: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Node | None] = {}
    points: Set[Node] = set()
    timer = 0

    for root in adj:
        if root in visited:
            continue
        root_children = 0
        stack: List[Tuple[Node, Iterable]] = [(root, iter(adj[root]))]
        visited.add(root)
        disc[root] = low[root] = timer
        parent[root] = None
        timer += 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nbr in it:
                if nbr == parent[node]:
                    continue
                if nbr in visited:
                    low[node] = min(low[node], disc[nbr])
                    continue
                visited.add(nbr)
                parent[nbr] = node
                disc[nbr] = low[nbr] = timer
                timer += 1
                if node == root:
                    root_children += 1
                stack.append((nbr, iter(adj[nbr])))
                advanced = True
                break
            if advanced:
                continue
            stack.pop()
            if stack:
                par = stack[-1][0]
                low[par] = min(low[par], low[node])
                if par != root and low[node] >= disc[par]:
                    points.add(par)
        if root_children > 1:
            points.add(root)
    return points


def biconnected_components(
    graph: "DynamicGraph | Adjacency",
) -> List[Set[EdgeKey]]:
    """Edge sets of the biconnected components, each edge in exactly one.

    Components are maximal edge sets such that any two edges lie on a common
    simple cycle; a bridge edge forms a singleton component.  Node sets can be
    recovered with :func:`component_nodes`.
    """
    adj = _as_adjacency(graph)
    visited: Set[Node] = set()
    disc: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Node | None] = {}
    components: List[Set[EdgeKey]] = []
    edge_stack: List[EdgeKey] = []
    timer = 0

    for root in adj:
        if root in visited:
            continue
        stack: List[Tuple[Node, Iterable]] = [(root, iter(adj[root]))]
        visited.add(root)
        disc[root] = low[root] = timer
        parent[root] = None
        timer += 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for nbr in it:
                if nbr == parent[node]:
                    continue
                if nbr in visited:
                    if disc[nbr] < disc[node]:  # back edge, push once
                        edge_stack.append(edge_key(node, nbr))
                        low[node] = min(low[node], disc[nbr])
                    continue
                visited.add(nbr)
                parent[nbr] = node
                disc[nbr] = low[nbr] = timer
                timer += 1
                edge_stack.append(edge_key(node, nbr))
                stack.append((nbr, iter(adj[nbr])))
                advanced = True
                break
            if advanced:
                continue
            stack.pop()
            if stack:
                par = stack[-1][0]
                low[par] = min(low[par], low[node])
                if low[node] >= disc[par]:
                    # par is an articulation point (or the root): pop the
                    # component containing the tree edge (par, node).
                    component: Set[EdgeKey] = set()
                    target = edge_key(par, node)
                    while edge_stack:
                        e = edge_stack.pop()
                        component.add(e)
                        if e == target:
                            break
                    if component:
                        components.append(component)
    return components


def component_nodes(component: Iterable[EdgeKey]) -> Set[Node]:
    """Node set spanned by a biconnected component's edge set."""
    nodes: Set[Node] = set()
    for u, v in component:
        nodes.add(u)
        nodes.add(v)
    return nodes


def bridge_edges(graph: "DynamicGraph | Adjacency") -> Set[EdgeKey]:
    """Edges that belong to no cycle (singleton biconnected components)."""
    return {
        next(iter(comp))
        for comp in biconnected_components(graph)
        if len(comp) == 1
    }


def is_biconnected(graph: "DynamicGraph | Adjacency") -> bool:
    """True iff the graph is connected, has >= 3 nodes, and no articulation
    point — i.e. any two nodes lie on a common simple cycle."""
    adj = _as_adjacency(graph)
    nodes = list(adj)
    if len(nodes) < 3:
        return False
    # connectivity check
    seen = {nodes[0]}
    frontier = [nodes[0]]
    while frontier:
        n = frontier.pop()
        for m in adj[n]:
            if m not in seen:
                seen.add(m)
                frontier.append(m)
    if len(seen) != len(nodes):
        return False
    return not articulation_points(adj)


__all__ = [
    "articulation_points",
    "biconnected_components",
    "component_nodes",
    "bridge_edges",
    "is_biconnected",
]
