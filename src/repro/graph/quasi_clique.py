"""Quasi-clique predicates from Section 1.1 and Theorem 1.

A cluster is a **gamma-quasi clique** if every node is adjacent to at least
``gamma * (N - 1)`` other cluster nodes.  ``gamma = 1`` gives a complete
clique; the paper's clusters of interest are **majority quasi cliques**
(MQCs), ``gamma >= 1/2``.  Theorem 1 shows every MQC satisfies the
short-cycle property, which the test suite verifies with these predicates.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sized
from typing import Dict, Hashable, Iterable, Mapping, Optional

from repro.graph.dynamic_graph import DynamicGraph

Node = Hashable
Adjacency = Mapping[Node, Iterable[Node]]


def _as_adjacency(graph: "DynamicGraph | Adjacency") -> Adjacency:
    if isinstance(graph, DynamicGraph):
        return graph.adjacency()
    return graph


def _degree(nbrs: Iterable[Node]) -> int:
    """Neighbour count without materialising a copy.

    ``DynamicGraph.adjacency()`` values are dicts and most ad-hoc test
    adjacencies are sets/lists — all ``Sized`` — so the common case is O(1);
    only a genuine one-shot iterator pays a consuming count.
    """
    if isinstance(nbrs, Sized):
        return len(nbrs)
    return sum(1 for _ in nbrs)


def gamma_density(graph: "DynamicGraph | Adjacency") -> float:
    """The largest gamma for which the graph is a gamma-quasi clique.

    Equals ``min_degree / (N - 1)``; 0.0 for graphs with < 2 nodes.
    """
    adj = _as_adjacency(graph)
    n = len(adj)
    if n < 2:
        return 0.0
    min_degree = min(_degree(nbrs) for nbrs in adj.values())
    return min_degree / (n - 1)


def is_quasi_clique(graph: "DynamicGraph | Adjacency", gamma: float) -> bool:
    """True iff every node has degree >= gamma * (N - 1)."""
    adj = _as_adjacency(graph)
    n = len(adj)
    if n < 2:
        return False
    need = gamma * (n - 1)
    return all(_degree(nbrs) >= need for nbrs in adj.values())


def is_majority_quasi_clique(graph: "DynamicGraph | Adjacency") -> bool:
    """True iff the graph is a 1/2-quasi clique (the paper's MQC)."""
    return is_quasi_clique(graph, 0.5)


def is_complete_clique(graph: "DynamicGraph | Adjacency") -> bool:
    """True iff every pair of nodes is adjacent (gamma = 1)."""
    return is_quasi_clique(graph, 1.0)


def graph_diameter(graph: "DynamicGraph | Adjacency") -> Optional[int]:
    """Exact diameter via BFS from every node; None when disconnected/empty.

    Definition 1 of the paper; used to check the [15] fact that gamma >= 1/2
    implies diameter <= 2, on which Theorem 1's proof rests.
    """
    adj = _as_adjacency(graph)
    nodes = list(adj)
    if not nodes:
        return None
    diameter = 0
    for source in nodes:
        dist: Dict[Node, int] = {source: 0}
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for v in adj[u]:
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        if len(dist) != len(nodes):
            return None
        diameter = max(diameter, max(dist.values()))
    return diameter


__all__ = [
    "gamma_density",
    "is_quasi_clique",
    "is_majority_quasi_clique",
    "is_complete_clique",
    "graph_diameter",
]
