"""Dynamic-graph substrate: adjacency structure and classic graph algorithms.

This subpackage is self-contained (no dependency on the streaming layers) and
provides:

* :class:`repro.graph.dynamic_graph.DynamicGraph` — the weighted undirected
  graph that backs the AKG;
* :mod:`repro.graph.biconnected` — articulation points and biconnected
  components (iterative Hopcroft–Tarjan), used by the offline baseline and by
  the correctness tests for property P2;
* :mod:`repro.graph.quasi_clique` — gamma-density, majority-quasi-clique and
  diameter predicates from Section 1.1 / Theorem 1;
* :mod:`repro.graph.generators` — deterministic random-graph builders for
  tests and benchmarks.
"""

from repro.graph.dynamic_graph import DynamicGraph, edge_key
from repro.graph.biconnected import (
    articulation_points,
    biconnected_components,
    bridge_edges,
    is_biconnected,
)
from repro.graph.quasi_clique import (
    gamma_density,
    graph_diameter,
    is_complete_clique,
    is_majority_quasi_clique,
    is_quasi_clique,
)

__all__ = [
    "DynamicGraph",
    "edge_key",
    "articulation_points",
    "biconnected_components",
    "bridge_edges",
    "is_biconnected",
    "gamma_density",
    "graph_diameter",
    "is_complete_clique",
    "is_majority_quasi_clique",
    "is_quasi_clique",
]
